"""Shim so that ``python setup.py develop`` works in offline environments.

The canonical metadata lives in ``pyproject.toml``; this file exists only
because editable installs with very old setuptools/pip combinations (and no
``wheel`` package available) fall back to the legacy code path.
"""

from setuptools import setup

setup()
