"""Control-plane protocol and run-spec serialisation for the runner.

Everything the coordinator tells a role process travels as a ``CONTROL``
frame (:mod:`repro.transport.frames`) whose body is one opcode byte plus an
op-specific payload.  Two payload styles are used:

* JSON (sorted keys, UTF-8) for structural data — peer maps, fault
  descriptions, recovery state.  Control messages are not parity
  instruments, so readability wins over compactness.
* The binary wire codecs of :mod:`repro.transport.codec` for the ``MIX``
  request/response, whose submission batches and chain outcomes already
  have canonical encodings that *are* parity instruments.

This module also serialises the run spec itself — the
:class:`~repro.coordinator.network.DeploymentConfig` and the
:class:`~repro.faults.plan.FaultPlan` — to JSON files the launch CLI hands
to each process, plus the config digest the TCP handshake compares so two
processes launched from different configs refuse to talk.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Tuple

from repro.coordinator.network import DeploymentConfig
from repro.errors import DecodingError
from repro.faults.plan import FaultPlan, ServerFault, UserFault
from repro.registry import (
    CryptoKernelKind,
    ExecutionBackendKind,
    PopulationKind,
    TransportKind,
)
from repro.transport.faulty import LinkFault

__all__ = [
    "OP_PING",
    "OP_PEERS",
    "OP_MIX",
    "OP_INSTALL_FAULT",
    "OP_RECOVER",
    "OP_SHUTDOWN",
    "encode_control",
    "split_control",
    "encode_json_control",
    "decode_json_payload",
    "encode_mix_request",
    "decode_mix_request",
    "config_to_dict",
    "config_from_dict",
    "config_digest",
    "plan_to_dict",
    "plan_from_dict",
    "scenario_summary",
]

#: Liveness probe; reply ``b"pong"``.
OP_PING = 1
#: Install the peer-address and node-ownership maps on a role's transport.
OP_PEERS = 2
#: Execute one chain's round on the owning mix role; binary payload.
OP_MIX = 3
#: Install a deterministic tampering server on every role replica.
OP_INSTALL_FAULT = 4
#: Mirror the coordinator's pending convictions and run recovery.
OP_RECOVER = 5
#: Leave the serve loop; the role process exits.
OP_SHUTDOWN = 6


def encode_control(op: int, payload: bytes = b"") -> bytes:
    return bytes([op]) + payload


def split_control(body: bytes) -> Tuple[int, bytes]:
    if not body:
        raise DecodingError("empty control body")
    return body[0], body[1:]


def encode_json_control(op: int, obj: object) -> bytes:
    return encode_control(op, json.dumps(obj, sort_keys=True).encode())


def decode_json_payload(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecodingError(f"malformed control JSON: {exc}") from exc


# -- the MIX request ------------------------------------------------------------
#
# ``chain_id (4B) || round (8B) || retry_after_blame (1B) || submission batch``
# where the batch is :func:`repro.transport.codec.encode_submission_batch`
# over the coordinator-assembled per-chain submissions.  The reply is
# :func:`repro.transport.codec.encode_chain_outcome` — the same bytes the
# multiprocess backend's forked workers ship to their parent.


def encode_mix_request(
    chain_id: int, round_number: int, retry_after_blame: bool, batch: bytes
) -> bytes:
    return b"".join(
        (
            chain_id.to_bytes(4, "big"),
            round_number.to_bytes(8, "big"),
            bytes([1 if retry_after_blame else 0]),
            batch,
        )
    )


def decode_mix_request(payload: bytes) -> Tuple[int, int, bool, bytes]:
    if len(payload) < 13:
        raise DecodingError("truncated mix request")
    chain_id = int.from_bytes(payload[:4], "big")
    round_number = int.from_bytes(payload[4:12], "big")
    retry_after_blame = bool(payload[12])
    return chain_id, round_number, retry_after_blame, payload[13:]


# -- config serialisation --------------------------------------------------------

_KNOB_ENUMS = {
    "execution_backend": ExecutionBackendKind,
    "transport": TransportKind,
    "population": PopulationKind,
    "crypto_kernel": CryptoKernelKind,
}


def config_to_dict(config: DeploymentConfig) -> Dict:
    """A JSON-serialisable dict of the config (enum knobs as their values)."""
    data = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, enum.Enum):
            value = value.value
        data[field.name] = value
    return data


def config_from_dict(data: Dict) -> DeploymentConfig:
    """Rebuild a config; knob strings become enum members where they can.

    Reconstructing the enum members here (instead of letting
    ``DeploymentConfig.__post_init__`` coerce the plain strings) keeps a
    role process from emitting the deprecation warning for a config the
    *coordinator* expressed with typed enums.
    """
    kwargs = dict(data)
    for name, kind in _KNOB_ENUMS.items():
        if name in kwargs and isinstance(kwargs[name], str):
            try:
                kwargs[name] = kind(kwargs[name])
            except ValueError:
                pass  # an externally-registered component name; leave as-is
    return DeploymentConfig(**kwargs)


def config_digest(config: DeploymentConfig) -> bytes:
    """The handshake digest: sha256 of the canonical config JSON."""
    canonical = json.dumps(config_to_dict(config), sort_keys=True).encode()
    return hashlib.sha256(canonical).digest()


# -- fault-plan serialisation ----------------------------------------------------


def plan_to_dict(plan: FaultPlan) -> Dict:
    def link_fault_dict(fault: LinkFault) -> Dict:
        data = dataclasses.asdict(fault)
        data["rounds"] = sorted(fault.rounds) if fault.rounds is not None else None
        return data

    return {
        "name": plan.name,
        "num_rounds": plan.num_rounds,
        "server_faults": [dataclasses.asdict(f) for f in plan.server_faults],
        "user_faults": [dataclasses.asdict(f) for f in plan.user_faults],
        "link_faults": [link_fault_dict(f) for f in plan.link_faults],
        "conversations": [list(pair) for pair in plan.conversations],
        "converse_on_chain": plan.converse_on_chain,
        "payloads": {
            str(round_number): {name: payload.hex() for name, payload in per_user.items()}
            for round_number, per_user in plan.payloads.items()
        },
        "offline": {
            str(round_number): sorted(names)
            for round_number, names in plan.offline.items()
        },
        "recover": plan.recover,
        "seed": plan.seed,
    }


def plan_from_dict(data: Dict) -> FaultPlan:
    def link_fault(entry: Dict) -> LinkFault:
        entry = dict(entry)
        if entry.get("rounds") is not None:
            entry["rounds"] = frozenset(entry["rounds"])
        return LinkFault(**entry)

    return FaultPlan(
        name=data["name"],
        num_rounds=data["num_rounds"],
        server_faults=tuple(ServerFault(**entry) for entry in data["server_faults"]),
        user_faults=tuple(UserFault(**entry) for entry in data["user_faults"]),
        link_faults=tuple(link_fault(entry) for entry in data["link_faults"]),
        conversations=tuple(tuple(pair) for pair in data["conversations"]),
        converse_on_chain=data["converse_on_chain"],
        payloads={
            int(round_number): {
                name: bytes.fromhex(payload) for name, payload in per_user.items()
            }
            for round_number, per_user in data["payloads"].items()
        },
        offline={
            int(round_number): frozenset(names)
            for round_number, names in data["offline"].items()
        },
        recover=data["recover"],
        seed=data["seed"],
    )


# -- report serialisation --------------------------------------------------------


def scenario_summary(report: Any) -> Dict:
    """A JSON-able summary of a :class:`~repro.faults.runner.ScenarioReport`.

    Carries the parity instruments — the per-round
    :meth:`~repro.engine.stages.RoundReport.canonical_bytes` fingerprints
    and the scenario's canonical digest, as hex — plus the human-readable
    outcome.  The distributed parity test compares the summary a
    coordinator subprocess wrote against one computed from an in-process
    reference run.
    """
    return {
        "plan": report.plan_name,
        "canonical": report.canonical_bytes().hex(),
        "rounds": [
            {
                "round": outcome.round_number,
                "fingerprint": outcome.fingerprint.hex(),
                "statuses": {
                    str(chain_id): status
                    for chain_id, status in outcome.statuses.items()
                },
                "delivered_messages": outcome.delivered_messages,
                "rejected_senders": list(outcome.rejected_senders),
            }
            for outcome in report.rounds
        ],
        "recoveries": [
            {
                "round": action.round_number,
                "chain": action.chain_id,
                "evicted": list(action.evicted),
                "new_servers": list(action.new_servers),
            }
            for action in report.recoveries
        ],
        "evicted_servers": list(report.evicted_servers),
        "convicted_servers": report.convicted_servers(),
    }
