"""Role processes: live deployment replicas behind a listening transport.

Every role holds a full :class:`~repro.coordinator.network.Deployment`
replica built from the shared config (same seed → bit-identical servers,
chains, mailboxes, users) and serves two kinds of inbound traffic on its
:class:`~repro.transport.tcp.TcpTransport` listener:

* **Envelopes** — the protocol's data plane.  A mix role reflects them
  (decode → re-encode), proving each server→server and client→server hop
  crossed the socket losslessly; the mailbox role *answers authoritatively*
  from its own hub state — deliveries mutate its shards, fetches are
  served from them — so the bytes the coordinator folds into its round
  reports are another process's state, not an echo.
* **Control messages** — the runner's management plane
  (:mod:`repro.runner.protocol`): peer wiring, the ``MIX`` RPC that
  executes a chain's round on the owning role, fault installation, and
  the recovery mirror.

Handlers run on the transport's worker thread pool; the mutating operations
(``MIX``, recovery, mailbox writes) serialise on one lock per role, so
concurrent RPCs cannot interleave on shared deployment state (the round
outputs must be bit-identical to the single-threaded reference).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional, Tuple

from repro.coordinator.adversary import install_tampering_server
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError, TransportError
from repro.faults.plan import ServerFault
from repro.faults.runner import server_fault_rng
from repro.runner import protocol
from repro.transport.codec import (
    decode_submission_batch,
    encode_chain_outcome,
    encode_payload,
)
from repro.transport.envelope import (
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    MAILBOX_FETCH_BATCH,
    Envelope,
)
from repro.transport.tcp import ReflectingHandler, TcpTransport

__all__ = ["RoleHandler", "MixRoleHandler", "MailboxRoleHandler", "RoleNode"]


class RoleHandler(ReflectingHandler):
    """Control plumbing shared by every role; envelopes reflect by default."""

    def __init__(self, deployment: Deployment) -> None:
        super().__init__(deployment.group)
        self.deployment = deployment
        #: The role's transport; wired by :class:`RoleNode` after the
        #: transport exists (the transport needs the handler first).
        self.transport: Optional[TcpTransport] = None
        #: Set when the coordinator broadcasts ``SHUTDOWN``.
        self.shutdown = threading.Event()
        self._lock = threading.Lock()

    def handle_control(self, body: bytes) -> bytes:
        op, payload = protocol.split_control(body)
        if op == protocol.OP_PING:
            return b"pong"
        if op == protocol.OP_PEERS:
            data = protocol.decode_json_payload(payload)
            self.transport.set_peers(
                {name: tuple(address) for name, address in data["peers"].items()},
                data["owners"],
            )
            return b"ok"
        if op == protocol.OP_MIX:
            return self.handle_mix(payload)
        if op == protocol.OP_INSTALL_FAULT:
            return self._handle_install_fault(payload)
        if op == protocol.OP_RECOVER:
            return self._handle_recover(payload)
        if op == protocol.OP_SHUTDOWN:
            self.shutdown.set()
            return b"ok"
        raise TransportError(f"unknown control opcode {op}")

    def handle_mix(self, payload: bytes) -> bytes:
        raise TransportError("this role does not execute chain mixing")

    def _handle_install_fault(self, payload: bytes) -> bytes:
        """Mirror a tampering-server installation on this replica.

        Broadcast to *every* role: inert on replicas that never mix the
        affected chain, but installing uniformly keeps all replicas
        structurally identical (and a post-recovery re-formation discards
        the wrapper everywhere at once).
        """
        data = protocol.decode_json_payload(payload)
        fault = ServerFault(
            round_number=data["round_number"],
            chain_id=data["chain_id"],
            position=data["position"],
            mode=data["mode"],
            target_index=data["target_index"],
        )
        with self._lock:
            install_tampering_server(
                self.deployment,
                fault.chain_id,
                fault.position,
                fault.mode,
                target_index=fault.target_index,
                rng=server_fault_rng(data["seed"], fault),
                rounds={data["absolute_round"]},
            )
        return b"ok"

    def _handle_recover(self, payload: bytes) -> bytes:
        """Mirror the coordinator's evict + re-form sequence.

        The convictions arrive in the exact order the coordinator's deliver
        stage recorded them, and ``next_round`` is synced first so
        ``reform_chain``'s re-announce horizon matches the coordinator's.
        """
        data = protocol.decode_json_payload(payload)
        with self._lock:
            deployment = self.deployment
            deployment.next_round = max(deployment.next_round, data["next_round"])
            for round_number, chain_id, servers in data["pending"]:
                deployment.note_convictions(round_number, chain_id, servers)
            deployment.recover()
        return b"ok"


class MixRoleHandler(RoleHandler):
    """A mix role: executes the ``MIX`` RPC for the chains it owns."""

    def handle_mix(self, payload: bytes) -> bytes:
        chain_id, round_number, retry_after_blame, batch = protocol.decode_mix_request(
            payload
        )
        with self._lock:
            deployment = self.deployment
            # Lazy idempotent announce: per-round inner keys derive from
            # per-(member, round) streams, so announcing only the rounds
            # this role actually mixes — possibly out of order across
            # recoveries — yields the same keys the coordinator announced.
            deployment._begin_round_on_chains(round_number)
            chain = deployment.chain(chain_id)
            submissions = decode_submission_batch(deployment.group, batch)
            if deployment.config.precompute:
                chain.precompute_round(
                    round_number, chain.decode_submission_publics(submissions)
                )
            _, rejected = chain.accept_submissions(round_number, submissions)
            result = chain.run_round(round_number, retry_after_blame=retry_after_blame)
            deployment.next_round = max(deployment.next_round, round_number + 1)
        return encode_chain_outcome(chain_id, rejected, result)


class MailboxRoleHandler(RoleHandler):
    """The mailbox role: authoritative for the deployment's mailbox tier.

    One process owns *all* mailbox shards (the hub routes every delivery
    through the ``mailbox-hub`` name, so splitting shards across processes
    would starve all but the owner); deliveries mutate its hub, and fetch
    replies are built from that hub — not echoed from the request — so a
    user's round download demonstrably crossed from another process's state.
    """

    def handle_envelope(self, envelope: Envelope) -> bytes:
        deployment = self.deployment
        if envelope.kind == MAILBOX_DELIVERY:
            with self._lock:
                deployment.mailboxes.deliver_batch(
                    envelope.round_number, envelope.payload
                )
            return encode_payload(self.group, envelope)
        if envelope.kind == MAILBOX_FETCH:
            user = deployment.user(envelope.destination)
            with self._lock:
                inbox = deployment.mailboxes.get(
                    envelope.round_number, user.public_bytes
                )
            return encode_payload(
                self.group, dataclasses.replace(envelope, payload=inbox)
            )
        if envelope.kind == MAILBOX_FETCH_BATCH:
            owners = [owner for owner, _ in envelope.payload]
            with self._lock:
                pairs = deployment.mailboxes.fetch_batch(envelope.round_number, owners)
            return encode_payload(
                self.group, dataclasses.replace(envelope, payload=pairs)
            )
        return super().handle_envelope(envelope)


_HANDLERS = {"mix": MixRoleHandler, "mailbox": MailboxRoleHandler}


class RoleNode:
    """One live role: a deployment replica plus its listening transport.

    Usable both as the body of a ``python -m repro.runner --role ...`` child
    process and directly in-process (tests wire several RoleNodes and a
    coordinator inside one interpreter — three event loops on three daemon
    threads — to exercise the full RPC surface without subprocesses).
    """

    def __init__(
        self,
        name: str,
        config: DeploymentConfig,
        kind: str,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
    ) -> None:
        if kind not in _HANDLERS:
            raise ConfigurationError(
                f"unknown role kind {kind!r} (one of {sorted(_HANDLERS)})"
            )
        self.name = name
        self.kind = kind
        self.deployment = Deployment.create(config)
        self.handler = _HANDLERS[kind](self.deployment)
        self.transport = TcpTransport(
            self.deployment.group,
            node_name=name,
            handler=self.handler,
            listen_host=listen_host,
            listen_port=listen_port,
            config_digest=protocol.config_digest(config),
        )
        self.handler.transport = self.transport
        # The replica's chains deliver their server→server batches through
        # this role's sockets (routed to whichever role owns the successor).
        self.deployment.use_transport(self.transport)

    @property
    def address(self) -> Tuple[str, int]:
        return self.transport.local_address

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        return self.handler.shutdown.wait(timeout)

    def close(self) -> None:
        self.deployment.close()

    def __enter__(self) -> "RoleNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
