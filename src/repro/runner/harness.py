"""Drive a scenario across live roles; launch everything on localhost.

:func:`run_coordinator` is the coordinator process's body: build the local
replica, wire the TCP transport and the remote-mix dispatcher into it, and
run the plan through the ordinary :class:`~repro.faults.runner.ScenarioRunner`
— the identical code path the in-process reference uses, with the
distributed behaviour injected only through ``Deployment.remote_mix`` and
the runner's ``control`` hook.  That shared path is the parity argument:
there is no separate distributed round loop that could drift.

:func:`run_localhost` is the all-in-one harness: spawn the mix and mailbox
roles as subprocesses of this interpreter, wait for their ``READY`` lines,
spawn a coordinator subprocess over the collected peer map, and hand back
the scenario summary it wrote.  Used by the ``--role all`` CLI, the
distributed parity test, and the CI smoke job.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, Optional, Tuple

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError, TransportError
from repro.faults.plan import FaultPlan
from repro.faults.runner import ScenarioReport, ScenarioRunner
from repro.runner import protocol
from repro.runner.remote import DistributedControl, RemoteMixDispatcher
from repro.transport.tcp import TcpTransport

__all__ = ["default_owners", "run_coordinator", "run_localhost"]

#: The mailbox role's process name ("mbx", not "mailbox", because the hub's
#: shard *servers* are named ``mailbox-N`` and owner-map keys must not
#: collide with peer names).
MAILBOX_ROLE = "mbx-0"
READY_PREFIX = "XRD-RUNNER-READY"


def default_owners(config: DeploymentConfig, num_mix: int) -> Dict[str, str]:
    """Node name → owning role, for the standard localhost layout.

    Mix servers round-robin across the mix roles; the whole mailbox tier —
    the ``mailbox-hub`` delivery target and every ``mailbox-N`` shard —
    belongs to the single mailbox role.  Users and the population need no
    entry: the transport's routing falls back to the envelope's *source*
    owner, which is exactly the authoritative side of a fetch.
    """
    if num_mix < 1:
        raise ConfigurationError("the harness needs at least one mix role")
    owners = {
        f"server-{index}": f"mix-{index % num_mix}"
        for index in range(config.num_servers)
    }
    owners["mailbox-hub"] = MAILBOX_ROLE
    for index in range(config.num_mailbox_servers):
        owners[f"mailbox-{index}"] = MAILBOX_ROLE
    return owners


def run_coordinator(
    config: DeploymentConfig,
    plan: FaultPlan,
    peers: Dict[str, Tuple[str, int]],
    owners: Dict[str, str],
    staggered: bool = False,
) -> ScenarioReport:
    """Drive ``plan`` against live roles; returns the scenario report.

    ``peers`` maps role names to listening addresses; ``owners`` maps node
    names to the role that owns them.  Sends the wiring to every role,
    runs the scenario, then broadcasts ``SHUTDOWN``.
    """
    deployment = Deployment.create(config)
    transport = TcpTransport(
        deployment.group,
        node_name="coordinator",
        config_digest=protocol.config_digest(config),
    )
    try:
        transport.set_peers(peers, owners)
        role_peers = sorted(set(owners.values()))
        control = DistributedControl(transport, role_peers, plan.seed)
        control.send_peers(peers, owners)
        control.ping()
        deployment.use_transport(transport)
        deployment.remote_mix = RemoteMixDispatcher(deployment, transport, owners)
        runner = ScenarioRunner(deployment, plan, staggered=staggered, control=control)
        report = runner.run()
        control.shutdown()
        return report
    finally:
        deployment.close()


def run_localhost(
    config: DeploymentConfig,
    plan: FaultPlan,
    num_mix: int = 2,
    timeout: float = 300.0,
    staggered: bool = False,
    python: str = sys.executable,
    keep_report: Optional[str] = None,
) -> Dict:
    """Run the whole distributed deployment as localhost subprocesses.

    Spawns ``num_mix`` mix roles and one mailbox role, then a coordinator
    process that drives ``plan`` to completion (including any blame and
    recovery rounds) and writes its scenario summary; returns that summary
    as a dict.  ``keep_report`` additionally copies the summary JSON to the
    given path (the CI smoke job uploads it as an artifact).
    """
    deadline = time.monotonic() + timeout  # xrdlint: disable=XRD102 - subprocess deadline
    workdir = tempfile.mkdtemp(prefix="xrd-runner-")
    children = []
    # The children must import the same ``repro`` this process runs (the
    # caller may have it on sys.path without PYTHONPATH — pytest's
    # ``pythonpath`` setting does not propagate to subprocesses).
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (package_root, env.get("PYTHONPATH")) if part
    )

    def fail(name: str, proc: subprocess.Popen, reason: str) -> TransportError:
        try:
            _, stderr = proc.communicate(timeout=5)
        except (subprocess.TimeoutExpired, ValueError):
            stderr = ""
        return TransportError(
            f"{name} {reason}" + (f"; stderr:\n{stderr[-2000:]}" if stderr else "")
        )

    try:
        config_path = os.path.join(workdir, "config.json")
        with open(config_path, "w") as handle:
            json.dump(protocol.config_to_dict(config), handle, sort_keys=True)
        plan_path = os.path.join(workdir, "plan.json")
        with open(plan_path, "w") as handle:
            json.dump(protocol.plan_to_dict(plan), handle, sort_keys=True)

        roles = [(f"mix-{index}", "mix") for index in range(num_mix)]
        roles.append((MAILBOX_ROLE, "mailbox"))
        for name, kind in roles:
            proc = subprocess.Popen(
                [python, "-m", "repro.runner", "--role", kind,
                 "--name", name, "--config", config_path],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            children.append((name, proc))

        peers: Dict[str, Tuple[str, int]] = {}
        for name, proc in children:
            line = proc.stdout.readline().strip()
            parts = line.split()
            if len(parts) != 4 or parts[0] != READY_PREFIX:
                raise fail(name, proc, f"failed to start (got {line!r})")
            peers[parts[1]] = (parts[2], int(parts[3]))

        peers_path = os.path.join(workdir, "peers.json")
        with open(peers_path, "w") as handle:
            json.dump(
                {
                    "peers": {name: list(address) for name, address in peers.items()},
                    "owners": default_owners(config, num_mix),
                },
                handle,
                sort_keys=True,
            )
        report_path = os.path.join(workdir, "report.json")
        command = [python, "-m", "repro.runner", "--role", "coordinator",
                   "--config", config_path, "--spec", plan_path,
                   "--peers", peers_path, "--report", report_path]
        if staggered:
            command.append("--staggered")
        coordinator = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
        )
        children.append(("coordinator", coordinator))
        try:
            # xrdlint: disable=XRD102 - subprocess deadline, not protocol state
            coordinator.wait(timeout=max(deadline - time.monotonic(), 1.0))
        except subprocess.TimeoutExpired as exc:
            raise fail("coordinator", coordinator, f"timed out after {timeout}s") from exc
        if coordinator.returncode != 0:
            raise fail(
                "coordinator", coordinator,
                f"exited with status {coordinator.returncode}",
            )
        with open(report_path) as handle:
            summary = json.load(handle)
        # The coordinator broadcast SHUTDOWN before exiting: the roles
        # should be draining out on their own.
        for name, proc in children[:-1]:
            try:
                # xrdlint: disable=XRD102 - subprocess deadline, not protocol state
                proc.wait(timeout=max(deadline - time.monotonic(), 1.0))
            except subprocess.TimeoutExpired as exc:
                raise fail(name, proc, "did not exit after SHUTDOWN") from exc
        if keep_report is not None:
            shutil.copyfile(report_path, keep_report)
        return summary
    finally:
        for _, proc in children:
            if proc.poll() is None:
                proc.kill()
        for _, proc in children:
            if proc.stdout is not None:
                proc.stdout.close()
            if proc.stderr is not None:
                proc.stderr.close()
        shutil.rmtree(workdir, ignore_errors=True)
