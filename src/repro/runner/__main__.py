"""Launch CLI for the distributed runtime: ``python -m repro.runner``.

One process per role::

    python -m repro.runner --role mix --name mix-0 --config config.json
    python -m repro.runner --role mailbox --name mbx-0 --config config.json
    python -m repro.runner --role coordinator --config config.json \\
        --spec plan.json --peers peers.json --report report.json

Role processes bind an ephemeral localhost port (override with ``--listen``),
print ``XRD-RUNNER-READY <name> <host> <port>`` on stdout, and serve until
the coordinator broadcasts ``SHUTDOWN``.  The coordinator reads the peer map
collected by whatever launched the roles, drives the fault plan to
completion, and writes/prints the scenario summary.

The all-in-one launcher spawns roles, coordinator, and wiring in one go::

    python -m repro.runner --role all --config config.json --spec plan.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.runner import protocol
from repro.runner.harness import READY_PREFIX, run_coordinator, run_localhost
from repro.runner.roles import RoleNode

__all__ = ["main"]


def _parse_listen(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host:
        raise ConfigurationError(f"--listen takes HOST:PORT, got {value!r}")
    return host, int(port)


def _load_json(path: str):
    with open(path) as handle:
        return json.load(handle)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run one role of a distributed XRD deployment.",
    )
    parser.add_argument(
        "--role", required=True, choices=["mix", "mailbox", "coordinator", "all"]
    )
    parser.add_argument("--name", default=None, help="this role's peer name")
    parser.add_argument(
        "--config", required=True, help="deployment config JSON (see runner.protocol)"
    )
    parser.add_argument("--spec", default=None, help="fault-plan JSON to execute")
    parser.add_argument("--peers", default=None, help="peer/owner map JSON")
    parser.add_argument("--listen", default="127.0.0.1:0", help="HOST:PORT to bind")
    parser.add_argument("--report", default=None, help="write the scenario summary here")
    parser.add_argument("--staggered", action="store_true", help="pipeline rounds (§5.2.2)")
    parser.add_argument("--num-mix", type=int, default=2, help="mix roles for --role all")
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="overall deadline for --role all"
    )
    args = parser.parse_args(argv)
    config = protocol.config_from_dict(_load_json(args.config))

    if args.role in ("mix", "mailbox"):
        name = args.name or (f"{args.role}-0" if args.role == "mix" else "mbx-0")
        host, port = _parse_listen(args.listen)
        node = RoleNode(name, config, args.role, listen_host=host, listen_port=port)
        try:
            bound_host, bound_port = node.address
            print(f"{READY_PREFIX} {name} {bound_host} {bound_port}", flush=True)
            node.wait_for_shutdown()
        finally:
            node.close()
        return 0

    if args.spec is None:
        parser.error(f"--role {args.role} needs --spec")
    plan = protocol.plan_from_dict(_load_json(args.spec))

    if args.role == "coordinator":
        if args.peers is None:
            parser.error("--role coordinator needs --peers")
        wiring = _load_json(args.peers)
        peers = {
            name: (address[0], int(address[1]))
            for name, address in wiring["peers"].items()
        }
        report = run_coordinator(
            config, plan, peers, wiring["owners"], staggered=args.staggered
        )
        summary = protocol.scenario_summary(report)
    else:  # all
        summary = run_localhost(
            config,
            plan,
            num_mix=args.num_mix,
            timeout=args.timeout,
            staggered=args.staggered,
            keep_report=args.report,
        )
    if args.role == "coordinator" and args.report is not None:
        with open(args.report, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    print(json.dumps(summary, indent=2, sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - process entry point
    sys.exit(main())
