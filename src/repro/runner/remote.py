"""The coordinator's side of the distributed runtime.

:class:`RemoteMixDispatcher` is what ``Deployment.remote_mix`` points at: the
engine's mix stage hands it the round context and each chain's round becomes
one ``MIX`` control RPC to the role process owning the chain's entry server.
The request carries the coordinator-assembled submission batch in its
canonical wire encoding; the reply is the chain outcome in the same encoding
the multiprocess backend's forked workers use — so the distributed mix is,
byte for byte, the same data flow as the in-process one with a socket in the
middle.

:class:`DistributedControl` is the :class:`~repro.faults.runner.ScenarioRunner`
``control`` hook: it broadcasts fault installation and recovery state to
every role so the replicas mirror the coordinator's state transitions at
exactly the points the in-process runner would apply them locally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.engine.stages import ChainOutcome
from repro.errors import TransportError
from repro.runner import protocol
from repro.transport import frames
from repro.transport.codec import decode_chain_outcome, encode_submission_batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coordinator.network import Deployment
    from repro.engine.stages import RoundContext
    from repro.faults.plan import ServerFault
    from repro.transport.tcp import TcpTransport

__all__ = ["DistributedControl", "RemoteMixDispatcher"]


class RemoteMixDispatcher:
    """Executes the engine's mix stage as RPCs to the owning mix roles."""

    def __init__(
        self, deployment: "Deployment", transport: "TcpTransport", owners: Dict[str, str]
    ) -> None:
        self.deployment = deployment
        self.transport = transport
        self.owners = dict(owners)

    def _owner_of_chain(self, chain_id: int) -> str:
        # Looked up per round, not cached: recovery re-forms chains, and the
        # re-formed chain's new entry server may live on a different role.
        entry_server = self.deployment.entry_servers[chain_id]
        owner = self.owners.get(entry_server)
        if owner is None:
            raise TransportError(
                f"no role owns entry server {entry_server!r} of chain {chain_id}"
            )
        return owner

    def mix_round(self, ctx: "RoundContext") -> List[ChainOutcome]:
        """One ``MIX`` RPC per chain, all in flight concurrently.

        Replies come back in chain order (the transport correlates them),
        mirroring ``map_chains``'s ordered contract.
        """
        items = []
        for chain in self.deployment.chains:
            body = protocol.encode_mix_request(
                chain.chain_id,
                ctx.round_number,
                ctx.spec.retry_after_blame,
                encode_submission_batch(ctx.per_chain[chain.chain_id]),
            )
            items.append(
                (self._owner_of_chain(chain.chain_id), frames.FRAME_CONTROL,
                 protocol.encode_control(protocol.OP_MIX, body))
            )
        outcomes = []
        for reply in self.transport.request_batch(items):
            chain_id, accept_rejected, result = decode_chain_outcome(reply)
            outcomes.append(
                ChainOutcome(
                    chain_id=chain_id,
                    accept_rejected=list(accept_rejected),
                    result=result,
                )
            )
        return outcomes


class DistributedControl:
    """Broadcasts scenario state transitions to every role replica."""

    def __init__(
        self, transport: "TcpTransport", role_peers: Sequence[str], plan_seed: int
    ) -> None:
        self.transport = transport
        self.role_peers = list(role_peers)
        self.plan_seed = plan_seed

    def broadcast(self, body: bytes) -> List[bytes]:
        return self.transport.request_batch(
            [(peer, frames.FRAME_CONTROL, body) for peer in self.role_peers]
        )

    def ping(self) -> None:
        replies = self.broadcast(protocol.encode_control(protocol.OP_PING))
        for peer, reply in zip(self.role_peers, replies):
            if reply != b"pong":
                raise TransportError(f"role {peer!r} failed the liveness probe")

    def send_peers(self, peers: Dict, owners: Dict[str, str]) -> None:
        self.broadcast(
            protocol.encode_json_control(
                protocol.OP_PEERS,
                {
                    "peers": {name: list(address) for name, address in peers.items()},
                    "owners": dict(owners),
                },
            )
        )

    # -- ScenarioRunner control hooks -------------------------------------------

    def install_server_fault(self, fault: "ServerFault", absolute_round: int) -> None:
        """Mirror one tampering-server installation on every role.

        Only the fault's identity crosses the wire; each role re-derives the
        adversarial stream from ``(plan seed, fault)`` via
        :func:`repro.faults.runner.server_fault_rng`, exactly as the
        coordinator does.
        """
        self.broadcast(
            protocol.encode_json_control(
                protocol.OP_INSTALL_FAULT,
                {
                    "seed": self.plan_seed,
                    "round_number": fault.round_number,
                    "chain_id": fault.chain_id,
                    "position": fault.position,
                    "mode": fault.mode,
                    "target_index": fault.target_index,
                    "absolute_round": absolute_round,
                },
            )
        )

    def before_recover(self, deployment: "Deployment") -> None:
        """Ship the pending convictions and the round horizon, then the roles
        run the identical evict + re-form sequence on their replicas."""
        self.broadcast(
            protocol.encode_json_control(
                protocol.OP_RECOVER,
                {
                    "next_round": deployment.next_round,
                    "pending": [
                        [round_number, chain_id, list(servers)]
                        for round_number, chain_id, servers in deployment.pending_recoveries
                    ],
                },
            )
        )

    def shutdown(self) -> None:
        self.broadcast(protocol.encode_control(protocol.OP_SHUTDOWN))
