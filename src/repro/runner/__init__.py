"""The process-per-role distributed runtime (DESIGN.md §10).

This package turns the single-process deployment into a real distributed
system: a **coordinator** process drives the round pipeline, **mix** role
processes execute chain mixing, and a **mailbox** role process owns the
mailbox tier — each a separate OS process holding its own deterministic
replica of the deployment, wired together by
:class:`~repro.transport.tcp.TcpTransport` sockets.

The deterministic-replica model: every role calls
``Deployment.create(config)`` with the identical config (enforced by the
handshake's config digest), so all processes derive bit-identical servers,
chains, mailboxes, and users from the shared seed.  Honest per-round
randomness comes from per-(member, round) derived streams, so a role that
executes only *its* chains, announcing rounds lazily and out of order,
still produces exactly the bytes the in-process reference would — which is
what lets the parity suite demand bit-identical
:class:`~repro.engine.stages.RoundReport` fingerprints across
``{inproc, localhost-tcp}``.

Layout:

* :mod:`repro.runner.protocol` — control opcodes and the JSON
  serialisations of configs, fault plans, and scenario reports.
* :mod:`repro.runner.roles` — the role handlers and :class:`RoleNode`
  (one live replica + listening transport, usable in-process or as a
  child process).
* :mod:`repro.runner.remote` — the coordinator's side: the remote mix
  dispatcher the engine calls into and the scenario-control broadcaster.
* :mod:`repro.runner.harness` — ``run_coordinator`` (drive a scenario
  against live roles) and ``run_localhost`` (spawn everything as
  localhost subprocesses).
* ``python -m repro.runner`` — the launch CLI (:mod:`repro.runner.__main__`).
"""

from repro.runner.harness import default_owners, run_coordinator, run_localhost
from repro.runner.remote import DistributedControl, RemoteMixDispatcher
from repro.runner.roles import MailboxRoleHandler, MixRoleHandler, RoleHandler, RoleNode

__all__ = [
    "DistributedControl",
    "MailboxRoleHandler",
    "MixRoleHandler",
    "RemoteMixDispatcher",
    "RoleHandler",
    "RoleNode",
    "default_owners",
    "run_coordinator",
    "run_localhost",
]
