"""The vectorized user-population layer (DESIGN.md §7).

A :class:`UserPopulation` owns every honest user of a deployment as
column-oriented batches — names, chain assignments, per-chain loopback keys —
and exposes whole-chain build and fetch operations so the engine's prepare
and fetch stages run per *chain* instead of per *user*.  The per-user
:class:`~repro.client.user.User` API remains the reference semantics; the
population produces bit-identical outputs (enforced by the engine parity
suite) while feeding the batched crypto fast paths with whole-chain inputs.

:mod:`repro.population.streaming` (DESIGN.md §9) slices those whole-chain
operations into bounded chunks — optionally built by a fork-based worker
pool — so peak memory is O(chunk) instead of O(users).
"""

from repro.population.population import UserPopulation
from repro.population.streaming import BuiltChunk, built_chunks, chunk_spans
from repro.registry import POPULATIONS, PopulationKind

__all__ = ["UserPopulation", "BuiltChunk", "built_chunks", "chunk_spans"]


def _make_object_population(group=None, users=None, num_chains=None):
    # The per-user reference path keeps no population object at all.
    return None


def _make_batched_population(group=None, users=None, num_chains=None):
    return UserPopulation(group, users, num_chains)


if not POPULATIONS.is_known(PopulationKind.OBJECT):  # tolerate module re-import
    POPULATIONS.register(PopulationKind.OBJECT, _make_object_population)
    POPULATIONS.register(PopulationKind.BATCHED, _make_batched_population)
