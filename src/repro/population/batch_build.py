"""Whole-chain submission construction from pre-drawn randomness.

This module is the crypto half of the population layer: given one chain's
key view and a column of pending entries — sender, sealed-message inputs,
and the three scalars the per-user path would have drawn (``y`` for the
inner envelope, ``x`` for the shared outer secret, ``k`` for the Schnorr
nonce) — it produces the chain's :class:`~repro.mixnet.messages.
ClientSubmission` batch in one pass per cryptographic operation:

1. every mailbox body is sealed in one batched AEAD call;
2. the inner envelopes share one fixed-point pass over the aggregate inner
   key (``y_i · Σipk``) and one batched AEAD call;
3. each outer layer is one fixed-point pass over that mixing key
   (``x_i · mpk_j``) plus one batched AEAD call — ℓ layers, ℓ passes,
   instead of ℓ passes *per user*;
4. the Schnorr proofs reuse the already-computed ``X_i = g^{x_i}`` and
   differ from :func:`repro.crypto.nizk.prove_dlog` only in not re-deriving
   it.

Because the scalars are inputs, every byte of the output is a deterministic
function of (scalars, keys, bodies) — identical to what
:meth:`User.build_round_submissions <repro.client.user.User.
build_round_submissions>` computes from the same draws.  The engine parity
suite holds the two paths bit-identical across the full matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import NIZK_LABEL_DLOG
from repro.crypto.aead import aenc_batch
from repro.crypto.group import fixed_point_mult_batch
from repro.crypto.nizk import SchnorrProof
from repro.crypto.onion import inner_envelope_key, outer_layer_key
from repro.mixnet.ahs import submission_context
from repro.mixnet.messages import ClientSubmission

__all__ = ["PendingEntry", "build_chain_submissions"]


@dataclass(frozen=True, slots=True)
class PendingEntry:
    """One (user, chain-slot) submission awaiting its batched crypto pass.

    ``seal_key``/``recipient``/``body_plaintext`` describe the mailbox
    message (already padded: ``MessageBody.encode()`` output); the three
    scalars were drawn from the *user's own* RNG in the per-user order
    (``y``, ``x``, ``k``) so the output is bit-identical to the object path.
    """

    sender: str
    seal_key: bytes
    recipient: bytes
    body_plaintext: bytes
    inner_scalar: int   # y — inner envelope ephemeral
    outer_scalar: int   # x — shared outer ephemeral
    nonce_scalar: int   # k — Schnorr proof nonce


def build_chain_submissions(
    group,
    view,
    round_number: int,
    entries: Sequence[PendingEntry],
    cover: bool = False,
) -> List[ClientSubmission]:
    """Build one chain's submissions for a round, batched per operation.

    ``view`` is the chain's :class:`~repro.client.user.ChainKeysView`.  The
    output order is the input order (users in deployment order, each user's
    chain slots in her assignment order) — the same order the engine's
    ``finalize_collect`` produces from per-user lists.
    """
    if not entries:
        return []
    chain_id = view.chain_id
    base = group.base()

    # 1. Seal the mailbox bodies: MailboxMessage.seal for the whole chain.
    sealed = aenc_batch(
        [entry.seal_key for entry in entries],
        round_number,
        [entry.body_plaintext for entry in entries],
    )
    mailbox_bytes = [entry.recipient + body for entry, body in zip(entries, sealed)]

    # 2. Inner envelopes under the aggregate inner key (encrypt_inner).
    #    g^y runs through the fixed-point batch too: the Ed25519 comb makes
    #    it a wash there, but the modp native kernel amortises one window
    #    table over the chain.
    inner_scalars = [entry.inner_scalar for entry in entries]
    inner_publics = fixed_point_mult_batch(group, base, inner_scalars)
    inner_shared = fixed_point_mult_batch(group, view.aggregate_inner_public, inner_scalars)
    inner_keys = [inner_envelope_key(group, shared) for shared in inner_shared]
    inner_cts = aenc_batch(inner_keys, round_number, mailbox_bytes)
    payloads = [
        group.encode(public) + ciphertext
        for public, ciphertext in zip(inner_publics, inner_cts)
    ]

    # 3. Outer layers: one fixed-point pass + one AEAD pass per mixing key
    #    (encrypt_outer_layers, innermost key last).
    outer_scalars = [entry.outer_scalar for entry in entries]
    for mixing_public in reversed(list(view.mixing_publics)):
        shared_elements = fixed_point_mult_batch(group, mixing_public, outer_scalars)
        layer_keys = [outer_layer_key(group, shared) for shared in shared_elements]
        payloads = aenc_batch(layer_keys, round_number, payloads)

    # 4. DH publics and Schnorr proofs (prove_dlog with X_i precomputed).
    #    g^x and g^k are two more fixed-point passes over the base.
    base_encoded = group.encode(base)
    dh_publics = fixed_point_mult_batch(group, base, outer_scalars)
    nonce_commitments = fixed_point_mult_batch(
        group, base, [entry.nonce_scalar for entry in entries]
    )
    submissions: List[ClientSubmission] = []
    for entry, ciphertext, dh_public, nonce_public in zip(
        entries, payloads, dh_publics, nonce_commitments
    ):
        dh_encoded = group.encode(dh_public)
        commitment = group.encode(nonce_public)
        challenge = group.hash_to_scalar(
            NIZK_LABEL_DLOG,
            base_encoded,
            dh_encoded,
            commitment,
            submission_context(chain_id, round_number, entry.sender),
        )
        response = (entry.nonce_scalar + challenge * entry.outer_scalar) % group.order
        submissions.append(
            ClientSubmission(
                chain_id=chain_id,
                sender=entry.sender,
                dh_public=dh_encoded,
                ciphertext=ciphertext,
                proof=SchnorrProof(commitment=commitment, response=response),
                cover=cover,
            )
        )
    return submissions
