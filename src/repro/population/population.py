"""The :class:`UserPopulation`: all honest users as column-oriented batches.

The per-user object path walks one :class:`~repro.client.user.User` at a
time: each submission seals, onion-encrypts, and proves individually, and
each mailbox message is trial-decrypted one AEAD call at a time.  That per
user Python overhead — not the protocol — is what capped practical rounds
at a few hundred users.  The population keeps the *state* on the ``User``
objects (conversations, keys, RNG streams stay the reference semantics) but
executes the per-round work column-wise:

* **build** — a cheap scalar-drawing pass walks users in deployment order,
  drawing each user's randomness from *her own* RNG in exactly the order
  the object path would (``y``, ``x``, ``k`` per assigned chain slot; round
  submissions before banked covers).  The expensive crypto then runs per
  chain over the collected columns (:mod:`repro.population.batch_build`).
  Splitting the phases is what makes the batch bit-identical to the object
  path: randomness order is preserved per user, and everything after the
  draws is deterministic.
* **fetch** — mailbox decryption runs as a trial-decryption *cascade*: every
  (user, message) pair tries its first candidate key in one batched AEAD
  pass, survivors try their second, and so on.  Each message authenticates
  under exactly one key, so cascade order cannot change any classification.

Chain assignments are derived from public keys alone, so the columns stay
valid across chain re-formation (:meth:`Deployment.reform_chain
<repro.coordinator.network.Deployment.reform_chain>` changes key views,
which are per-round inputs, never the assignment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.client.chain_selection import chains_for_user, intersection_chain
from repro.client.user import ReceivedMessage, User
from repro.crypto.aead import adec_batch
from repro.crypto.kdf import loopback_key
from repro.errors import ConfigurationError
from repro.mixnet.messages import ClientSubmission, MailboxMessage, MessageBody
from repro.population.batch_build import PendingEntry, build_chain_submissions

__all__ = ["UserPopulation"]

#: Sentinel chain label for the conversation-key trial of the fetch cascade.
_CONVERSATION_TRIAL = -1


class UserPopulation:
    """Columnar views over a deployment's honest users."""

    def __init__(self, group, users: Sequence[User], num_chains: int) -> None:
        self.group = group
        self.num_chains = num_chains
        self.users: List[User] = list(users)
        self._by_name: Dict[str, User] = {user.name: user for user in self.users}
        #: name → ordered physical chain ids (length ℓ, possibly repeating).
        self.chain_assignments: Dict[str, Tuple[int, ...]] = {
            user.name: tuple(chains_for_user(user.public_bytes, num_chains))
            for user in self.users
        }
        #: chain id → sender names in deployment order (with multiplicity):
        #: the canonical order of every per-chain batch.
        self.chain_rosters: Dict[int, List[str]] = {}
        for user in self.users:
            for chain_id in self.chain_assignments[user.name]:
                self.chain_rosters.setdefault(chain_id, []).append(user.name)
        #: Lazily derived per-(user, chain) loopback keys — identity secrets
        #: never change, so these are computed once per population.
        self._loopback_keys: Dict[Tuple[str, int], bytes] = {}
        #: Per-user loopback trial order for the fetch cascade: sorted, so
        #: it cannot depend on set hash order (the object path sorts too).
        self._trial_chains: Dict[str, Tuple[int, ...]] = {
            name: tuple(sorted(set(assignment)))
            for name, assignment in self.chain_assignments.items()
        }
        #: Optional observer for the streaming pipeline (DESIGN.md §9):
        #: called as ``progress(phase, chunk_index, num_users)`` after the
        #: engine finishes each chunk of a streamed build or fetch.
        self.progress = None

    def __len__(self) -> int:
        return len(self.users)

    # -- membership -----------------------------------------------------------

    def owns(self, user: User) -> bool:
        """True when ``user`` is exactly the population's object for its name.

        Adversarial harnesses may swap a wrapped ``User`` into
        ``deployment.users``; such wrappers fall back to the per-user path so
        their overridden behaviour is honoured.
        """
        return self._by_name.get(user.name) is user

    def user(self, name: str) -> User:
        if name not in self._by_name:
            raise ConfigurationError(f"unknown user {name!r}")
        return self._by_name[name]

    def emit_progress(self, phase: str, chunk_index: int, num_users: int) -> None:
        """Notify the optional :attr:`progress` observer (streamed chunks)."""
        if self.progress is not None:
            self.progress(phase, chunk_index, num_users)

    # -- RNG-stream cursors (forked chunk builds, DESIGN.md §9) ----------------

    def submission_draw_counts(self, users: Sequence[User], passes: int = 1) -> List[int]:
        """Per-user count of RNG draws ``passes`` build passes consume.

        One build pass draws exactly three scalars per assigned chain slot
        (inner ephemeral, outer ephemeral, proof nonce — see
        :meth:`build_round_submissions_batch`); with covers enabled a round
        makes two passes (round submissions, then banked covers).  These
        counts are the *cursors* a forked build worker ships back: replaying
        that many draws in the parent advances each user's RNG stream to
        exactly the state the worker left its copy in.
        """
        counts: List[int] = []
        for user in users:
            assignment = self.chain_assignments.get(user.name)
            if assignment is None:
                raise ConfigurationError(f"user {user.name!r} is not in the population")
            counts.append(3 * len(assignment) * passes)
        return counts

    def replay_submission_draws(self, users: Sequence[User], counts: Sequence[int]) -> None:
        """Advance each user's RNG past draws a forked worker already made.

        ``group.random_scalar`` rejection-samples (``randrange`` until
        nonzero), so replaying the same *number of calls* against the same
        starting state consumes exactly the same underlying stream — the
        parent's RNGs end up bit-identical to the worker's copies without
        shipping RNG state objects across the pipe.  Users without a seeded
        stream (``_rng is None``) draw from ``secrets`` and carry no
        determinism expectation, so there is nothing to replay.
        """
        group = self.group
        for user, count in zip(users, counts):
            rng = user._rng
            if rng is None:
                continue
            for _ in range(count):
                group.random_scalar(rng)

    def _loopback_key(self, user: User, chain_id: int) -> bytes:
        cache_key = (user.name, chain_id)
        key = self._loopback_keys.get(cache_key)
        if key is None:
            key = loopback_key(user.keypair.identity_secret_bytes(), chain_id)
            self._loopback_keys[cache_key] = key
        return key

    # -- batched submission building -------------------------------------------

    def build_round_submissions_batch(
        self,
        round_number: int,
        chain_keys: Dict[int, object],
        users: Sequence[User],
        payloads: Optional[Dict[str, bytes]] = None,
        offline_notice: bool = False,
        cover: bool = False,
    ) -> Dict[int, List[ClientSubmission]]:
        """Build every given user's ℓ submissions, batched per chain.

        ``users`` must be in deployment order; the returned per-chain lists
        are in the canonical batch order (deployment order, then each user's
        chain-slot order) — the order ``finalize_collect`` assembles.
        """
        group = self.group
        payloads = payloads or {}
        buckets: Dict[int, List[PendingEntry]] = {}
        for user in users:
            assignment = self.chain_assignments.get(user.name)
            if assignment is None:
                raise ConfigurationError(f"user {user.name!r} is not in the population")
            conversation_chain_id = None
            if user.in_conversation():
                conversation_chain_id = intersection_chain(
                    user.public_bytes,
                    user.conversation.partner_public_bytes,
                    self.num_chains,
                )
            conversation_sent = False
            payload = payloads.get(user.name)
            for chain_id in assignment:
                if chain_id not in chain_keys:
                    raise ConfigurationError(f"missing chain keys for chain {chain_id}")
                if (
                    conversation_chain_id is not None
                    and chain_id == conversation_chain_id
                    and not conversation_sent
                ):
                    body = (
                        MessageBody.offline_notice()
                        if offline_notice
                        else MessageBody.data(payload or b"")
                    )
                    seal_key = user.conversation.key_to_partner()
                    recipient = user.conversation.partner_public_bytes
                    conversation_sent = True
                else:
                    body = MessageBody.loopback()
                    seal_key = self._loopback_key(user, chain_id)
                    recipient = user.public_bytes
                # The user's own RNG, in the object path's draw order:
                # inner ephemeral, outer ephemeral, proof nonce — per slot.
                rng = user._rng
                buckets.setdefault(chain_id, []).append(
                    PendingEntry(
                        sender=user.name,
                        seal_key=seal_key,
                        recipient=recipient,
                        body_plaintext=body.encode(),
                        inner_scalar=group.random_scalar(rng),
                        outer_scalar=group.random_scalar(rng),
                        nonce_scalar=group.random_scalar(rng),
                    )
                )
        return {
            chain_id: build_chain_submissions(
                group, chain_keys[chain_id], round_number, entries, cover=cover
            )
            for chain_id, entries in sorted(buckets.items())
        }

    def build_cover_submissions_batch(
        self,
        next_round_number: int,
        chain_keys: Dict[int, object],
        users: Sequence[User],
    ) -> Dict[int, List[ClientSubmission]]:
        """Next round's banked covers (§5.3.3), batched per chain."""
        return self.build_round_submissions_batch(
            next_round_number,
            chain_keys,
            users,
            payloads=None,
            offline_notice=True,
            cover=True,
        )

    # -- batched mailbox decryption ---------------------------------------------

    def decrypt_mailboxes_batch(
        self,
        round_number: int,
        users: Sequence[User],
        inboxes: Sequence[Sequence[MailboxMessage]],
        num_chains: int,
    ) -> Dict[str, List[ReceivedMessage]]:
        """Decrypt and classify every user's round download, cascaded.

        Semantics mirror :meth:`User.decrypt_mailbox
        <repro.client.user.User.decrypt_mailbox>` exactly, including the
        §5.3.3 side effect of marking a conversation partner offline.
        """
        results: Dict[str, List[Optional[ReceivedMessage]]] = {}
        # (user, message, remaining trial keys); trials carry the chain id
        # the loopback key belongs to, or the conversation sentinel.
        pending: List[list] = []
        for user, inbox in zip(users, inboxes):
            slots: List[Optional[ReceivedMessage]] = [None] * len(inbox)
            results[user.name] = slots
            trial_chains = self._trial_chains.get(user.name)
            if trial_chains is None:
                trial_chains = tuple(sorted(set(chains_for_user(user.public_bytes, num_chains))))
            conversation_key = (
                user.conversation.key_to_me() if user.conversation is not None else None
            )
            for message_index, message in enumerate(inbox):
                if message.recipient != user.public_bytes:
                    slots[message_index] = ReceivedMessage(
                        kind=ReceivedMessage.KIND_UNREADABLE, content=b""
                    )
                    continue
                trials: List[Tuple[int, bytes]] = []
                if conversation_key is not None:
                    trials.append((_CONVERSATION_TRIAL, conversation_key))
                trials.extend(
                    (chain_id, self._loopback_key(user, chain_id))
                    for chain_id in trial_chains
                )
                pending.append([user, message_index, message, trials, 0])

        while pending:
            opened = adec_batch(
                [item[3][item[4]][1] for item in pending],
                round_number,
                [item[2].sealed_body for item in pending],
            )
            still_pending: List[list] = []
            for item, (ok, plaintext) in zip(pending, opened):
                user, message_index, _message, trials, position = item
                if ok:
                    label = trials[position][0]
                    body = MessageBody.decode(plaintext)
                    if label == _CONVERSATION_TRIAL:
                        if body.is_offline_notice():
                            user.conversation.mark_partner_offline()
                            received = ReceivedMessage(
                                kind=ReceivedMessage.KIND_OFFLINE_NOTICE,
                                content=b"",
                                partner_name=user.conversation.partner_name,
                            )
                        else:
                            received = ReceivedMessage(
                                kind=ReceivedMessage.KIND_CONVERSATION,
                                content=body.content,
                                partner_name=user.conversation.partner_name,
                            )
                    else:
                        received = ReceivedMessage(
                            kind=ReceivedMessage.KIND_LOOPBACK, content=b"", chain_id=label
                        )
                    results[user.name][message_index] = received
                    continue
                item[4] = position + 1
                if item[4] < len(trials):
                    still_pending.append(item)
                else:
                    results[user.name][message_index] = ReceivedMessage(
                        kind=ReceivedMessage.KIND_UNREADABLE, content=b""
                    )
            pending = still_pending

        return {name: list(slots) for name, slots in results.items()}
