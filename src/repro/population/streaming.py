"""Streaming, multicore population builds (DESIGN.md §9).

The monolithic population path builds every submission column of a round in
one pass, so its peak memory is O(users).  This module slices the build into
contiguous *chunks* of the engine's filtered, deployment-ordered user list
and yields one :class:`BuiltChunk` at a time: the engine uploads, scatters,
and releases each chunk before the next is built, so peak memory is
O(chunk) regardless of population size.

Chunking cannot change any observable output because the batched build is
elementwise per (user, chain-slot) entry (:func:`repro.population.
batch_build.build_chain_submissions`) and each user's RNG draws happen
inside her own chunk in the object path's exact order — per-chunk per-chain
lists concatenated in chunk order equal the monolithic per-chain lists, and
:meth:`RoundEngine._fold_user_submissions
<repro.engine.round_engine.RoundEngine._fold_user_submissions>` reassembles
the mix batches in global user order either way.

:func:`built_chunks` optionally fans the chunk builds out across a
fork-based worker pool mirroring :mod:`repro.engine.multiprocess`:

* workers inherit the population (users, keys, conversations, chain key
  views) copy-on-write through fork — nothing is shipped *in*;
* each worker builds its chunks (worker ``w`` owns chunks ``w, w+W,
  w+2W, …``) and ships every per-chain batch back as the exact wire bytes a
  ``SUBMISSION_BATCH`` envelope would carry
  (:func:`repro.transport.codec.encode_submission_batch`), framed with the
  same ``index || tag || length || payload`` layout the multiprocess mix
  backend uses;
* alongside the bytes travel the chunk's *RNG-stream cursors* — per-user
  draw counts — which the parent replays
  (:meth:`~repro.population.population.UserPopulation.
  replay_submission_draws`) so its RNG streams end up bit-identical to the
  worker's copies and later rounds stay deterministic;
* the parent consumes frames in chunk order (chunk ``k`` from worker
  ``k mod W``), decodes, re-flags covers, and yields — so envelope delivery
  happens on the coordinating thread in the same deterministic
  (chunk, chain) order as the serial path, and pipe backpressure bounds the
  parent's in-flight results to O(workers × chunk).

A submission's ``cover`` flag is deliberately not on the wire (a cover is
indistinguishable from any other submission); the parent re-flags decoded
cover batches so the banked cover store holds exactly what the monolithic
in-process path would store.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.client.user import User
from repro.errors import ConfigurationError
from repro.mixnet.messages import ClientSubmission
from repro.population.population import UserPopulation
from repro.transport.codec import decode_submission_batch, encode_submission_batch

__all__ = ["BuiltChunk", "built_chunks", "chunk_spans"]

#: Result-frame tags (same framing as the multiprocess mix backend): a
#: pickled (round parts, cover parts, draw counts) tuple, or a pickled
#: exception.
_TAG_CHUNK = 0
_TAG_ERROR = 1


@dataclass(slots=True)
class BuiltChunk:
    """One chunk's worth of built submissions, ready to upload.

    ``submissions``/``covers`` are per-chain lists in canonical batch order
    restricted to this chunk's users; ``covers`` is ``None`` when the
    deployment runs without cover messages.
    """

    index: int
    users: List[User]
    submissions: Dict[int, List[ClientSubmission]]
    covers: Optional[Dict[int, List[ClientSubmission]]]


def chunk_spans(items: Sequence, chunk_size: Optional[int]) -> Iterator[list]:
    """Slice ``items`` into contiguous chunks of at most ``chunk_size``.

    ``None`` keeps the monolithic behaviour: one span holding everything
    (the original sequence, unsliced — no copy at scale).  Always yields at
    least one (possibly empty) span so every flow frames at least one
    envelope per link, exactly as the monolithic path does.
    """
    if chunk_size is None:
        yield items if isinstance(items, list) else list(items)
        return
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be positive")
    if not items:
        yield []
        return
    for start in range(0, len(items), chunk_size):
        yield list(items[start:start + chunk_size])


def built_chunks(
    population: UserPopulation,
    round_number: int,
    current_views: Dict[int, object],
    next_views: Optional[Dict[int, object]],
    users: Sequence[User],
    payloads: Optional[Dict[str, bytes]],
    chunk_size: Optional[int],
    use_covers: bool,
    num_workers: int = 0,
) -> Iterator[BuiltChunk]:
    """Yield the round's population build one chunk at a time.

    ``chunk_size=None`` degenerates to a single whole-population chunk (the
    monolithic reference pass).  ``num_workers > 0`` builds the chunks in a
    fork-based worker pool; results still arrive in chunk order.
    """
    spans = [span for span in chunk_spans(users, chunk_size) if span]
    if num_workers > 0 and len(spans) > 1:
        yield from _built_chunks_forked(
            population, round_number, current_views, next_views,
            spans, payloads, use_covers, num_workers,
        )
        return
    for index, span in enumerate(spans):
        yield _build_one_chunk(
            population, round_number, current_views, next_views,
            index, span, payloads, use_covers,
        )


def _build_one_chunk(
    population: UserPopulation,
    round_number: int,
    current_views: Dict[int, object],
    next_views: Optional[Dict[int, object]],
    index: int,
    span: List[User],
    payloads: Optional[Dict[str, bytes]],
    use_covers: bool,
) -> BuiltChunk:
    submissions = population.build_round_submissions_batch(
        round_number, current_views, span, payloads=payloads
    )
    covers = None
    if use_covers:
        covers = population.build_cover_submissions_batch(
            round_number + 1, next_views, span
        )
    return BuiltChunk(index=index, users=span, submissions=submissions, covers=covers)


# -- forked worker pool --------------------------------------------------------

def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, length: int) -> bytes:
    parts: List[bytes] = []
    remaining = length
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 16))
        if not chunk:
            raise RuntimeError(
                "population build worker exited before delivering its chunks"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def _pack_frame(index: int, tag: int, payload: bytes) -> bytes:
    return index.to_bytes(4, "big") + bytes([tag]) + len(payload).to_bytes(4, "big") + payload


def _read_frame(fd: int) -> Tuple[int, int, bytes]:
    header = _read_exact(fd, 9)
    index = int.from_bytes(header[:4], "big")
    tag = header[4]
    length = int.from_bytes(header[5:9], "big")
    return index, tag, _read_exact(fd, length)


def _encode_exception(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc)
    except Exception:
        return pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))


def _encode_parts(per_chain: Dict[int, List[ClientSubmission]]) -> List[Tuple[int, bytes]]:
    return [
        (chain_id, encode_submission_batch(submissions))
        for chain_id, submissions in per_chain.items()
    ]


def _decode_parts(
    group, parts: List[Tuple[int, bytes]], cover: bool
) -> Dict[int, List[ClientSubmission]]:
    decoded: Dict[int, List[ClientSubmission]] = {}
    for chain_id, data in parts:
        submissions = decode_submission_batch(group, data)
        if cover:
            # The cover flag is client-side metadata, deliberately absent
            # from the wire; restore it so the banked store matches the
            # monolithic in-process path exactly.
            submissions = [replace(submission, cover=True) for submission in submissions]
        decoded[chain_id] = submissions
    return decoded


def _run_build_worker(
    write_fd: int,
    population: UserPopulation,
    round_number: int,
    current_views: Dict[int, object],
    next_views: Optional[Dict[int, object]],
    spans: List[List[User]],
    indices: Sequence[int],
    payloads: Optional[Dict[str, bytes]],
    use_covers: bool,
) -> None:
    """Worker body: build this worker's chunks, frame each as it finishes."""
    passes = 2 if use_covers else 1
    for index in indices:
        span = spans[index]
        try:
            chunk = _build_one_chunk(
                population, round_number, current_views, next_views,
                index, span, payloads, use_covers,
            )
            counts = population.submission_draw_counts(span, passes=passes)
            payload = pickle.dumps(
                (
                    _encode_parts(chunk.submissions),
                    _encode_parts(chunk.covers) if chunk.covers is not None else None,
                    counts,
                )
            )
            tag = _TAG_CHUNK
        except BaseException as exc:  # shipped to the parent, re-raised there
            tag, payload = _TAG_ERROR, _encode_exception(exc)
        _write_all(write_fd, _pack_frame(index, tag, payload))
        if tag == _TAG_ERROR:
            return


def _built_chunks_forked(
    population: UserPopulation,
    round_number: int,
    current_views: Dict[int, object],
    next_views: Optional[Dict[int, object]],
    spans: List[List[User]],
    payloads: Optional[Dict[str, bytes]],
    use_covers: bool,
    num_workers: int,
) -> Iterator[BuiltChunk]:
    if not hasattr(os, "fork"):  # pragma: no cover - validated at config time
        raise ConfigurationError("population build workers require POSIX fork")
    workers = min(num_workers, len(spans))
    group = population.group
    passes = 2 if use_covers else 1
    procs: List[Tuple[int, int]] = []  # (pid, read_fd), one per worker
    try:
        for worker_index in range(workers):
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    os.close(read_fd)
                    # Close inherited read ends of earlier workers' pipes so
                    # the parent is every pipe's only reader: a parent-side
                    # abort then surfaces to writers as EPIPE instead of a
                    # write blocked on a sibling that never reads.
                    for _, earlier_read_fd in procs:
                        os.close(earlier_read_fd)
                    _run_build_worker(
                        write_fd, population, round_number, current_views,
                        next_views, spans,
                        range(worker_index, len(spans), workers),
                        payloads, use_covers,
                    )
                    os.close(write_fd)
                except BaseException:
                    status = 1
                finally:
                    # Never run the parent's cleanup/atexit machinery twice.
                    os._exit(status)
            os.close(write_fd)
            procs.append((pid, read_fd))

        for index in range(len(spans)):
            _, read_fd = procs[index % workers]
            frame_index, tag, payload = _read_frame(read_fd)
            if tag == _TAG_ERROR:
                raise pickle.loads(payload)
            if tag != _TAG_CHUNK or frame_index != index:
                raise RuntimeError(
                    f"population build worker sent frame {frame_index}/{tag}, "
                    f"expected chunk {index}"
                )
            round_parts, cover_parts, counts = pickle.loads(payload)
            span = spans[index]
            if counts != population.submission_draw_counts(span, passes=passes):
                raise RuntimeError("population build worker cursor mismatch")
            # Replay the worker's draws so the parent's RNG streams advance
            # exactly as the monolithic build would have advanced them.
            population.replay_submission_draws(span, counts)
            yield BuiltChunk(
                index=index,
                users=span,
                submissions=_decode_parts(group, round_parts, cover=False),
                covers=(
                    _decode_parts(group, cover_parts, cover=True)
                    if cover_parts is not None
                    else None
                ),
            )
    finally:
        for pid, read_fd in procs:
            try:
                os.close(read_fd)
            except OSError:
                pass
            try:
                os.waitpid(pid, 0)
            except OSError:
                pass
