"""Length-prefixed framing and the connection handshake (DESIGN.md §10.2).

The TCP transport and the process-per-role runner speak one stream format:

``4-byte big-endian frame length || frame``, where ``frame`` is::

    frame type (1 byte) || request id (8 bytes) || body

Every frame is either a request (``HELLO``, ``ENVELOPE``, ``CONTROL``) or a
response (``HELLO_ACK``, ``REPLY``, ``ERROR``) correlated to its request by
the 8-byte request id, so several requests may be in flight on one
connection and responses may arrive out of order.

Bodies reuse the byte-format primitives of :mod:`repro.transport.codec` —
the same length-prefix/presence-byte vocabulary the payload codecs use, so
the whole wire surface is fuzzable with one grammar:

* ``HELLO`` — magic, protocol version, the sender's node name, its group
  kind, and a digest of its :class:`~repro.coordinator.network.
  DeploymentConfig`.  A listener rejects (``ERROR`` + close) any peer whose
  magic, version, group kind, or config digest does not match its own —
  catching a mis-launched role before it can desynchronise a round.
* ``ENVELOPE`` — a full :class:`~repro.transport.envelope.Envelope`: the
  routing header here, the payload in the wire encodings of
  :mod:`repro.transport.codec`.  The ``REPLY`` body is the payload bytes as
  the destination observed them.
* ``CONTROL`` — an opaque runner control message
  (:mod:`repro.runner.protocol`); the transport carries it without looking
  inside.

Every decoder raises :class:`~repro.errors.DecodingError` on truncation,
trailing bytes, or field corruption — the hypothesis fuzz suite in
``tests/test_tcp_transport.py`` holds it to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import DecodingError
from repro.transport.codec import (
    _pack_bytes,
    _pack_str,
    _read_bytes,
    _read_int,
    _read_str,
    decode_payload,
    encode_payload,
)
from repro.transport.envelope import ENVELOPE_KINDS, Envelope

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "FRAME_HELLO",
    "FRAME_HELLO_ACK",
    "FRAME_ENVELOPE",
    "FRAME_REPLY",
    "FRAME_CONTROL",
    "FRAME_ERROR",
    "FRAME_TYPES",
    "Hello",
    "encode_frame",
    "decode_frame",
    "decode_frame_payload",
    "encode_hello",
    "decode_hello",
    "encode_envelope_frame",
    "decode_envelope_frame",
    "encode_error",
    "decode_error",
]

#: Protocol identifier, first bytes of every HELLO.
MAGIC = b"XRD1"
#: Bumped on any incompatible change to the frame or handshake format.
PROTOCOL_VERSION = 1

FRAME_HELLO = 1
FRAME_HELLO_ACK = 2
FRAME_ENVELOPE = 3
FRAME_REPLY = 4
FRAME_CONTROL = 5
FRAME_ERROR = 6

FRAME_TYPES = (
    FRAME_HELLO,
    FRAME_HELLO_ACK,
    FRAME_ENVELOPE,
    FRAME_REPLY,
    FRAME_CONTROL,
    FRAME_ERROR,
)

_HEADER_SIZE = 1 + 8  # frame type + request id


# -- frames -------------------------------------------------------------------

def encode_frame(frame_type: int, request_id: int, body: bytes) -> bytes:
    """One complete on-wire frame, including the 4-byte length prefix."""
    if frame_type not in FRAME_TYPES:
        raise DecodingError(f"unknown frame type {frame_type}")
    frame = frame_type.to_bytes(1, "big") + request_id.to_bytes(8, "big") + body
    return len(frame).to_bytes(4, "big") + frame


def decode_frame_payload(data: bytes) -> Tuple[int, int, bytes]:
    """Parse a frame whose length prefix the stream layer already consumed."""
    if len(data) < _HEADER_SIZE:
        raise DecodingError("truncated frame header")
    frame_type, offset = _read_int(data, 0, 1)
    if frame_type not in FRAME_TYPES:
        raise DecodingError(f"unknown frame type {frame_type}")
    request_id, offset = _read_int(data, offset, 8)
    return frame_type, request_id, data[offset:]


def decode_frame(data: bytes) -> Tuple[int, int, bytes]:
    """Inverse of :func:`encode_frame`; returns ``(type, request_id, body)``."""
    if len(data) < 4:
        raise DecodingError("truncated frame length prefix")
    length = int.from_bytes(data[:4], "big")
    if len(data) - 4 < length:
        raise DecodingError("truncated frame")
    if len(data) - 4 > length:
        raise DecodingError("trailing bytes after frame")
    return decode_frame_payload(data[4:])


# -- handshake ----------------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """What each end of a connection asserts about itself before any traffic."""

    node: str
    group_kind: str
    config_digest: bytes


def encode_hello(hello: Hello) -> bytes:
    return b"".join(
        (
            MAGIC,
            PROTOCOL_VERSION.to_bytes(2, "big"),
            _pack_str(hello.node),
            _pack_str(hello.group_kind),
            _pack_bytes(hello.config_digest),
        )
    )


def decode_hello(data: bytes) -> Hello:
    if len(data) < len(MAGIC):
        raise DecodingError("truncated hello magic")
    if data[: len(MAGIC)] != MAGIC:
        raise DecodingError("bad hello magic (not an XRD runner peer?)")
    version, offset = _read_int(data, len(MAGIC), 2)
    if version != PROTOCOL_VERSION:
        raise DecodingError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    node, offset = _read_str(data, offset)
    group_kind, offset = _read_str(data, offset)
    config_digest, offset = _read_bytes(data, offset)
    if offset != len(data):
        raise DecodingError("trailing bytes after hello")
    if node is None or group_kind is None:
        raise DecodingError("hello is missing the node name or group kind")
    return Hello(node=node, group_kind=group_kind, config_digest=config_digest)


# -- envelope frames ----------------------------------------------------------

def _pack_optional_int(value: Optional[int], width: int) -> bytes:
    if value is None:
        return b"\x00"
    return b"\x01" + int(value).to_bytes(width, "big")


def _read_optional_int(data: bytes, offset: int, width: int) -> tuple:
    present, offset = _read_int(data, offset, 1)
    if present == 0:
        return None, offset
    return _read_int(data, offset, width)


def encode_envelope_frame(group: Any, envelope: Envelope) -> bytes:
    """Serialise a whole envelope: routing header + wire-encoded payload."""
    return b"".join(
        (
            _pack_str(envelope.kind),
            _pack_str(envelope.source),
            _pack_str(envelope.destination),
            envelope.round_number.to_bytes(8, "big"),
            _pack_optional_int(envelope.chain_id, 4),
            _pack_optional_int(envelope.part, 4),
            _pack_bytes(encode_payload(group, envelope)),
        )
    )


def decode_envelope_frame(group: Any, data: bytes) -> Envelope:
    """Inverse of :func:`encode_envelope_frame` (payload fully decoded)."""
    kind, offset = _read_str(data, 0)
    if kind not in ENVELOPE_KINDS:
        raise DecodingError(f"unknown envelope kind {kind!r}")
    source, offset = _read_str(data, offset)
    destination, offset = _read_str(data, offset)
    if source is None or destination is None:
        raise DecodingError("envelope frame is missing source or destination")
    round_number, offset = _read_int(data, offset, 8)
    chain_id, offset = _read_optional_int(data, offset, 4)
    part, offset = _read_optional_int(data, offset, 4)
    payload_wire, offset = _read_bytes(data, offset)
    if offset != len(data):
        raise DecodingError("trailing bytes after envelope frame")
    return Envelope(
        kind=kind,
        source=source,
        destination=destination,
        round_number=round_number,
        payload=decode_payload(group, kind, payload_wire),
        chain_id=chain_id,
        part=part,
    )


# -- error responses ----------------------------------------------------------

def encode_error(message: str) -> bytes:
    return _pack_str(message)


def decode_error(data: bytes) -> str:
    message, offset = _read_str(data, 0)
    if offset != len(data):
        raise DecodingError("trailing bytes after error message")
    return message if message is not None else "unknown peer error"
