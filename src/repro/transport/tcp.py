"""A real-socket transport: every envelope crosses a TCP connection.

:class:`TcpTransport` implements the synchronous :class:`~repro.transport.
base.Transport` contract over asyncio sockets (DESIGN.md §10).  An asyncio
event loop runs on a dedicated daemon thread; ``deliver`` serialises the
envelope with :func:`~repro.transport.frames.encode_envelope_frame`, sends
it as a length-prefixed request frame to the peer that *owns* the
destination node, and returns the payload decoded from the peer's framed
reply — the same decoded-from-wire-bytes semantics as the instrumented
transport, now with the bytes having crossed a real socket and been parsed
by another process.

Routing: the transport carries an *owner map* (node name → peer name) and a
*peer map* (peer name → address).  An envelope goes to the owner of its
destination; when the destination is local, to the owner of its source
(whoever holds the authoritative state — e.g. a mailbox fetch is answered
by the mailbox process); and when both are local, it loops through this
process's own listener, so every envelope crosses a socket without
exception.  With no maps at all (the standalone ``transport="tcp"`` config
knob) the transport runs a loopback *reflector*: its own listener decodes
each inbound envelope and re-encodes the payload for the reply, proving the
full frame grammar round-trips through a real socket even in a
single-process deployment.

What a listener does with inbound requests is pluggable via
:class:`RequestHandler` — the process-per-role runner
(:mod:`repro.runner.roles`) installs handlers that apply mailbox deliveries
to the local shard state or execute a chain's mixing; the default
:class:`ReflectingHandler` just proves the bytes parse.  Handlers run on a
small thread pool, never on the event loop, so a handler is free to call
``deliver`` itself (a mix server forwarding a batch to the next chain
member in another process) without deadlocking the loop.

Failure behaviour is fail-fast, matching the synchronous round model: a
refused connection, a rejected handshake, a mid-request disconnect, or a
reply timeout surfaces as :class:`~repro.errors.TransportError` to the
caller — there are no retries and no buffering, because a round that lost a
message cannot be bit-identical to the reference anyway (DESIGN.md §10.4).

The transport is **not fork-safe** (``fork_safe = False``): the event loop
thread and live sockets do not survive ``fork``, so the deployment refuses
to pair it with the multiprocess execution backend.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DecodingError, TransportError
from repro.transport import frames
from repro.transport.base import Transport
from repro.transport.codec import decode_payload, encode_payload
from repro.transport.envelope import Envelope

__all__ = ["RequestHandler", "ReflectingHandler", "TcpTransport"]


class RequestHandler:
    """What a listening endpoint does with inbound requests.

    Handlers run on the transport's worker thread pool (never on the event
    loop), return the reply body bytes, and signal failure by raising — the
    transport turns the exception into an ``ERROR`` frame for the requester.
    """

    def handle_envelope(self, envelope: Envelope) -> bytes:
        """Consume one inbound envelope; return the reply payload bytes."""
        raise NotImplementedError

    def handle_control(self, body: bytes) -> bytes:
        """Consume one control message; return the reply bytes."""
        raise TransportError("this node accepts no control messages")


class ReflectingHandler(RequestHandler):
    """Default listener behaviour: decode the envelope, re-encode the payload.

    The inbound frame was already fully parsed into payload objects by the
    time the handler sees it; re-encoding those objects for the reply makes
    every delivery a complete encode → socket → decode → encode → socket →
    decode round trip, which is what makes TCP parity with the in-process
    reference a proof of the whole frame grammar.
    """

    def __init__(self, group: Any) -> None:
        self.group = group

    def handle_envelope(self, envelope: Envelope) -> bytes:
        return encode_payload(self.group, envelope)


class _Connection:
    """One established outbound connection (event-loop side only)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pending: Dict[int, asyncio.Future] = {}
        self.pump_task: Optional[asyncio.Task] = None
        self.closed = False


async def _read_frame(reader: asyncio.StreamReader) -> Tuple[int, int, bytes]:
    prefix = await reader.readexactly(4)
    length = int.from_bytes(prefix, "big")
    payload = await reader.readexactly(length)
    return frames.decode_frame_payload(payload)


class TcpTransport(Transport):
    """Length-prefixed envelope frames over real asyncio TCP sockets."""

    name = "tcp"
    #: An event loop thread and live sockets do not survive ``fork``.
    fork_safe = False

    def __init__(
        self,
        group: Any,
        node_name: str = "node",
        handler: Optional[RequestHandler] = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        start_server: bool = True,
        group_kind: Optional[str] = None,
        config_digest: bytes = b"",
        request_timeout: float = 120.0,
        handler_threads: int = 8,
        cost_model: Any = None,
    ) -> None:
        self.group = group
        self.node_name = node_name
        self.group_kind = group_kind if group_kind is not None else type(group).__name__
        self.config_digest = config_digest
        self.request_timeout = request_timeout
        self.handler = handler if handler is not None else ReflectingHandler(group)
        #: peer name → (host, port); node name → peer name.
        self._peers: Dict[str, Tuple[str, int]] = {}
        self._owners: Dict[str, str] = {}
        self._closed = False
        self._close_lock = threading.Lock()
        self._request_ids = itertools.count(1)  # event-loop side only
        self._connections: Dict[str, _Connection] = {}  # event-loop side only
        self._connect_locks: Dict[str, asyncio.Lock] = {}  # event-loop side only
        self._accepted_writers: set = set()  # event-loop side only
        self._handler_tasks: set = set()  # event-loop side only
        self._server = None
        self.local_address: Optional[Tuple[str, int]] = None
        self._executor = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="xrd-tcp-handler"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=f"xrd-tcp-{node_name}", daemon=True
        )
        self._thread.start()
        if start_server:
            self.local_address = self._call(self._start_server(listen_host, listen_port))

    # -- synchronous facade over the loop thread --------------------------------

    def _call(self, coro: Awaitable, timeout: Optional[float] = None) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TransportError(
                f"{self.node_name}: request timed out after {timeout}s"
            ) from None

    # -- wiring -----------------------------------------------------------------

    def set_peers(
        self, peers: Dict[str, Tuple[str, int]], owners: Dict[str, str]
    ) -> None:
        """Install the peer address map and the node-ownership map."""
        self._peers = {name: (host, int(port)) for name, (host, port) in peers.items()}
        self._owners = dict(owners)

    def _route(self, envelope: Envelope) -> str:
        """The peer that must observe this envelope (see the module docstring)."""
        owner = self._owners.get(envelope.destination)
        if owner is None or owner == self.node_name:
            owner = self._owners.get(envelope.source, owner)
        if owner is None or owner == self.node_name:
            return self.node_name
        return owner

    # -- Transport contract ------------------------------------------------------

    def deliver(self, envelope: Envelope) -> object:
        wire = frames.encode_envelope_frame(self.group, envelope)
        reply = self.request(self._route(envelope), frames.FRAME_ENVELOPE, wire)
        return decode_payload(self.group, envelope.kind, reply)

    def deliver_many(self, envelopes: Sequence[Envelope]) -> List[object]:
        """Pipelined batch delivery: all requests in flight concurrently."""
        envelopes = list(envelopes)
        items = [
            (self._route(envelope), frames.FRAME_ENVELOPE,
             frames.encode_envelope_frame(self.group, envelope))
            for envelope in envelopes
        ]
        replies = self.request_batch(items)
        return [
            decode_payload(self.group, envelope.kind, reply)
            for envelope, reply in zip(envelopes, replies)
        ]

    # -- requests ----------------------------------------------------------------

    def request(self, peer: str, frame_type: int, body: bytes) -> bytes:
        """Send one request frame to ``peer``; block for the correlated reply."""
        if self._closed:
            raise TransportError(f"{self.node_name}: transport is closed")
        return self._call(
            self._request_async(peer, frame_type, body), self.request_timeout
        )

    def request_batch(self, items: Sequence[Tuple[str, int, bytes]]) -> List[bytes]:
        """Issue several requests concurrently; replies in request order."""
        if self._closed:
            raise TransportError(f"{self.node_name}: transport is closed")
        if not items:
            return []

        async def _gather() -> List[bytes]:
            return await asyncio.gather(
                *(self._request_async(peer, frame_type, body)
                  for peer, frame_type, body in items)
            )

        return list(self._call(_gather(), self.request_timeout))

    def control(self, peer: str, body: bytes) -> bytes:
        """Send one runner control message (opaque to the transport)."""
        return self.request(peer, frames.FRAME_CONTROL, body)

    async def _request_async(self, peer: str, frame_type: int, body: bytes) -> bytes:
        conn = await self._ensure_connection(peer)
        request_id = next(self._request_ids)
        reply_future = self._loop.create_future()
        conn.pending[request_id] = reply_future
        data = frames.encode_frame(frame_type, request_id, body)
        try:
            async with conn.write_lock:
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            conn.pending.pop(request_id, None)
            raise TransportError(f"connection to {peer} failed: {exc}") from exc
        reply_type, reply_body = await reply_future
        if reply_type == frames.FRAME_ERROR:
            raise TransportError(
                f"peer {peer} reported: {frames.decode_error(reply_body)}"
            )
        if reply_type != frames.FRAME_REPLY:
            raise TransportError(f"unexpected frame type {reply_type} from {peer}")
        return reply_body

    # -- outbound connections ----------------------------------------------------

    def _address_of(self, peer: str) -> Tuple[str, int]:
        if peer == self.node_name:
            if self.local_address is None:
                raise TransportError(
                    f"{self.node_name}: self-routed envelope but no local listener"
                )
            return self.local_address
        address = self._peers.get(peer)
        if address is None:
            raise TransportError(
                f"{self.node_name}: no route to peer {peer!r} "
                f"(known: {sorted(self._peers)})"
            )
        return address

    async def _ensure_connection(self, peer: str) -> _Connection:
        lock = self._connect_locks.setdefault(peer, asyncio.Lock())
        async with lock:
            conn = self._connections.get(peer)
            if conn is not None and not conn.closed:
                return conn
            host, port = self._address_of(peer)
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to peer {peer!r} at {host}:{port}: {exc}"
                ) from exc
            hello = frames.Hello(
                node=self.node_name,
                group_kind=self.group_kind,
                config_digest=self.config_digest,
            )
            writer.write(
                frames.encode_frame(frames.FRAME_HELLO, 0, frames.encode_hello(hello))
            )
            await writer.drain()
            try:
                reply_type, _, reply_body = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError) as exc:
                writer.close()
                raise TransportError(
                    f"peer {peer!r} closed the connection during the handshake"
                ) from exc
            if reply_type == frames.FRAME_ERROR:
                writer.close()
                raise TransportError(
                    f"peer {peer!r} rejected the handshake: "
                    f"{frames.decode_error(reply_body)}"
                )
            if reply_type != frames.FRAME_HELLO_ACK:
                writer.close()
                raise TransportError(
                    f"peer {peer!r} answered the handshake with frame type {reply_type}"
                )
            frames.decode_hello(reply_body)  # the peer's asserted identity must parse
            conn = _Connection(reader, writer)
            conn.pump_task = self._loop.create_task(self._pump(peer, conn))
            self._connections[peer] = conn
            return conn

    async def _pump(self, peer: str, conn: _Connection) -> None:
        """Match inbound reply frames to their pending requests."""
        try:
            while True:
                reply_type, request_id, body = await _read_frame(conn.reader)
                future = conn.pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result((reply_type, body))
        except (asyncio.IncompleteReadError, ConnectionError, DecodingError,
                asyncio.CancelledError) as exc:
            conn.closed = True
            for future in conn.pending.values():
                if not future.done():
                    future.set_exception(
                        TransportError(f"connection to {peer} lost: {exc!r}")
                    )
            conn.pending.clear()
            if self._connections.get(peer) is conn:
                del self._connections[peer]
            conn.writer.close()

    # -- the listener ------------------------------------------------------------

    async def _start_server(self, host: str, port: int) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._serve_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        return (sockname[0], sockname[1])

    def _check_hello(self, hello: frames.Hello) -> Optional[str]:
        """Why an inbound peer must be rejected, or ``None`` to accept."""
        if hello.group_kind != self.group_kind:
            return (
                f"group kind mismatch: peer {hello.node!r} runs "
                f"{hello.group_kind!r}, this node runs {self.group_kind!r}"
            )
        if self.config_digest and hello.config_digest and (
            hello.config_digest != self.config_digest
        ):
            return (
                f"deployment config digest mismatch with peer {hello.node!r}: "
                "the processes were launched from different configs"
            )
        return None

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        self._accepted_writers.add(writer)
        try:
            try:
                frame_type, request_id, body = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError, DecodingError):
                return
            if frame_type != frames.FRAME_HELLO:
                writer.write(frames.encode_frame(
                    frames.FRAME_ERROR, request_id,
                    frames.encode_error("expected a HELLO frame first"),
                ))
                await writer.drain()
                return
            try:
                hello = frames.decode_hello(body)
                rejection = self._check_hello(hello)
            except DecodingError as exc:
                hello, rejection = None, str(exc)
            if rejection is not None:
                writer.write(frames.encode_frame(
                    frames.FRAME_ERROR, request_id, frames.encode_error(rejection)
                ))
                await writer.drain()
                return
            own_hello = frames.Hello(
                node=self.node_name,
                group_kind=self.group_kind,
                config_digest=self.config_digest,
            )
            writer.write(frames.encode_frame(
                frames.FRAME_HELLO_ACK, request_id, frames.encode_hello(own_hello)
            ))
            await writer.drain()
            while True:
                frame_type, request_id, body = await _read_frame(reader)
                task = self._loop.create_task(
                    self._handle_request(frame_type, request_id, body, writer, write_lock)
                )
                self._handler_tasks.add(task)
                task.add_done_callback(self._handler_tasks.discard)
        except (asyncio.IncompleteReadError, ConnectionError, DecodingError):
            pass  # peer went away; its pending requests fail on their side
        finally:
            self._accepted_writers.discard(writer)
            writer.close()

    async def _handle_request(
        self,
        frame_type: int,
        request_id: int,
        body: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            if frame_type == frames.FRAME_ENVELOPE:
                envelope = frames.decode_envelope_frame(self.group, body)
                reply = await self._loop.run_in_executor(
                    self._executor, self.handler.handle_envelope, envelope
                )
            elif frame_type == frames.FRAME_CONTROL:
                reply = await self._loop.run_in_executor(
                    self._executor, self.handler.handle_control, body
                )
            else:
                raise TransportError(f"unexpected request frame type {frame_type}")
            out = frames.encode_frame(frames.FRAME_REPLY, request_id, reply)
        except Exception as exc:  # noqa: BLE001 - every handler failure goes to the peer
            out = frames.encode_frame(
                frames.FRAME_ERROR,
                request_id,
                frames.encode_error(f"{type(exc).__name__}: {exc}"),
            )
        try:
            async with write_lock:
                writer.write(out)
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # requester is gone; nothing to tell it

    # -- teardown ----------------------------------------------------------------

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handler_tasks):
            task.cancel()
        for conn in list(self._connections.values()):
            if conn.pump_task is not None:
                conn.pump_task.cancel()
            conn.writer.close()
        self._connections.clear()
        for writer in list(self._accepted_writers):
            writer.close()
        self._accepted_writers.clear()

    def close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop).result(10)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)
        if not self._thread.is_alive():
            self._loop.close()
        self._executor.shutdown(wait=False)
