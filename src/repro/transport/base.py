"""The :class:`Transport` contract every implementation satisfies.

A transport carries one :class:`~repro.transport.envelope.Envelope` across
its link and returns the payload *as the destination observes it*.  The
contract is deliberately synchronous — the deployment's round structure is
globally synchronised anyway (§4), so a blocking ``deliver`` models exactly
the information flow of the real system while keeping the protocol code
free of callback plumbing.

Implementations differ only in what happens on the way:

* :class:`~repro.transport.inproc.InProcTransport` hands the payload object
  straight through — the reference semantics, bit-identical to a method
  call.
* :class:`~repro.transport.instrumented.InstrumentedTransport` serialises
  the payload to its real wire encoding, accounts the bytes and the
  modelled link latency, and returns a payload *decoded from those bytes* —
  so its parity with the in-process transport is also a proof that every
  codec round-trips losslessly.
* :class:`~repro.transport.tcp.TcpTransport` sends the wire encoding over a
  real localhost/network socket and returns the payload decoded from the
  peer's framed reply (DESIGN.md §10).

The contract is an ABC with an explicit capability surface, enforced for
every implementation by the shared suite in
``tests/test_transport_contract.py``:

* ``deliver`` (abstract) must be safe to call from multiple threads — the
  parallel backend mixes chains concurrently and the staggered scheduler
  overlaps collect with mix;
* ``deliver_many`` is an optional batch hook: the default loops over
  ``deliver``, and an implementation may override it to pipeline the
  round-trips, but the results must be element-wise identical to the loop;
* ``close`` must be idempotent, and delivery after ``close`` may fail but
  must never hang;
* ``fork_safe`` declares whether the transport tolerates being inherited
  across ``fork`` (the multiprocess backend and the streaming population's
  build workers fork with the transport reachable).  In-memory transports
  are; a transport holding an event loop and live sockets is not, and the
  deployment refuses to combine one with a forking backend.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.transport.envelope import Envelope

__all__ = ["Transport"]


class Transport(abc.ABC):
    """Carries envelopes between the deployment's nodes."""

    name: str = "abstract"

    #: Whether this transport survives being inherited across ``fork``.
    fork_safe: bool = True

    @abc.abstractmethod
    def deliver(self, envelope: Envelope) -> object:
        """Carry ``envelope`` across its link; return the payload received."""

    def deliver_many(self, envelopes: Sequence[Envelope]) -> List[object]:
        """Deliver several envelopes; same results, same order, as the loop.

        The default is the loop.  An implementation with real per-message
        latency (TCP) may override this to keep several requests in flight,
        but the observable results must stay element-wise identical.
        """
        return [self.deliver(envelope) for envelope in envelopes]

    def close(self) -> None:
        """Release any transport resources; idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
