"""The :class:`Transport` contract every implementation satisfies.

A transport carries one :class:`~repro.transport.envelope.Envelope` across
its link and returns the payload *as the destination observes it*.  The
contract is deliberately synchronous — the deployment's round structure is
globally synchronised anyway (§4), so a blocking ``deliver`` models exactly
the information flow of the real system while keeping the protocol code
free of callback plumbing.

Implementations differ only in what happens on the way:

* :class:`~repro.transport.inproc.InProcTransport` hands the payload object
  straight through — the reference semantics, bit-identical to a method
  call.
* :class:`~repro.transport.instrumented.InstrumentedTransport` serialises
  the payload to its real wire encoding, accounts the bytes and the
  modelled link latency, and returns a payload *decoded from those bytes* —
  so its parity with the in-process transport is also a proof that every
  codec round-trips losslessly.

A transport must be safe to call from multiple threads (the parallel
backend mixes chains concurrently and the staggered scheduler overlaps
collect with mix) and must tolerate being inherited across ``fork`` by the
multiprocess backend.
"""

from __future__ import annotations

from repro.transport.envelope import Envelope

__all__ = ["Transport"]


class Transport:
    """Carries envelopes between the deployment's nodes."""

    name: str = "abstract"

    def deliver(self, envelope: Envelope) -> object:
        """Carry ``envelope`` across its link; return the payload received."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any transport resources; idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
