"""The in-process reference transport: delivery is a hand-off.

``deliver`` returns the payload object unchanged, making the transport seam
cost-free and the observable behaviour bit-identical to the pre-transport
code where "sending" was a method call.  Every other transport is measured
against this one by the parity suite.
"""

from __future__ import annotations

from repro.transport.base import Transport
from repro.transport.envelope import Envelope

__all__ = ["InProcTransport"]


class InProcTransport(Transport):
    """Reference semantics: the destination sees the sender's own objects."""

    name = "inproc"

    def deliver(self, envelope: Envelope) -> object:
        return envelope.payload
