"""A transport wrapper that injects link-level faults (drop / duplicate /
delay / reorder) on selected envelopes.

The fault-injection scenario engine (:mod:`repro.faults`) needs an adversary
*below* the protocol: not a server computing the wrong thing, but a network
losing, replaying, delaying, or reordering what honest nodes sent.
:class:`FaultyTransport` wraps any inner :class:`Transport` — composing with
:class:`~repro.transport.instrumented.InstrumentedTransport`, whose ledger it
proxies — and applies the matching :class:`LinkFault` behaviours to each
envelope before (or instead of) handing it to the inner transport:

* ``drop`` — the envelope never crosses the link.  List payloads (batches,
  mailbox flows) arrive empty; submissions arrive as ``None`` (the engine
  skips them).  This models *data loss*, not timeout detection: a real
  deployment would eventually time the link out, which is a liveness
  concern the synchronous round structure has no place for (DESIGN.md §3).
* ``duplicate`` — one element of a list payload is replayed.  Only list
  payloads can be duplicated; a replayed client submission is the
  *user-level* attack :func:`~repro.coordinator.adversary.
  forge_misauthenticated_submission` family models, not a link fault.
* ``delay`` — the payload arrives intact but late: an extra zero-byte
  :class:`LinkRecord` carrying ``delay_seconds`` is charged to the inner
  ledger (when there is one), so measured round latency reflects the stall.
* ``reorder`` — a list payload arrives permuted, by a shuffle derived
  deterministically from (fault seed, round, chain), never from shared
  state.

Every behaviour is a *pure function of the envelope* — matching keeps no
counters — so the wrapper is safe to share between the coordinator thread
and mix workers, and a forked child (multiprocess backend) applies exactly
the faults the parent would have.  The applied-fault log is advisory and
process-local: under the multiprocess backend, batch faults applied inside
workers do not appear in the parent's log (the observable round outcome is
what parity is measured on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.transport import envelope as ev
from repro.transport.base import Transport
from repro.transport.envelope import Envelope
from repro.transport.metrics import LinkRecord

__all__ = [
    "LinkFault",
    "FaultyTransport",
    "DROP",
    "DUPLICATE",
    "DELAY",
    "REORDER",
    "LINK_BEHAVIOURS",
]

#: The envelope never arrives (data loss on the link).
DROP = "drop"
#: One element of a list payload is replayed.
DUPLICATE = "duplicate"
#: The payload arrives intact but ``delay_seconds`` late.
DELAY = "delay"
#: A list payload arrives deterministically permuted.
REORDER = "reorder"

LINK_BEHAVIOURS = (DROP, DUPLICATE, DELAY, REORDER)

#: Envelope kinds whose payload is a list (eligible for duplicate/reorder).
#: The population layer's batch frames qualify too: dropping one models the
#: whole framed message being lost, and the engine's sender-keyed scatter
#: tolerates duplicated or reordered batch elements.
_LIST_KINDS = (
    ev.BATCH,
    ev.MAILBOX_DELIVERY,
    ev.MAILBOX_FETCH,
    ev.SUBMISSION_BATCH,
    ev.COVER_SUBMISSION_BATCH,
    ev.MAILBOX_FETCH_BATCH,
)


@dataclass(frozen=True)
class LinkFault:
    """One declarative link fault: which envelopes, which behaviour.

    Every selector left at ``None`` matches anything; a fault with all
    selectors unset applies to every envelope the transport carries.
    Matching is stateless by design (see the module docstring).
    """

    behaviour: str
    kind: Optional[str] = None
    rounds: Optional[FrozenSet[int]] = None
    source: Optional[str] = None
    destination: Optional[str] = None
    chain_id: Optional[int] = None
    #: Which element of a list payload a ``duplicate`` replays (mod length).
    index: int = 0
    #: Extra one-way latency charged by a ``delay``.
    delay_seconds: float = 0.0
    #: Seed component of a ``reorder``'s deterministic permutation.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.behaviour not in LINK_BEHAVIOURS:
            raise ConfigurationError(f"unknown link-fault behaviour {self.behaviour!r}")
        if self.kind is not None and self.kind not in ev.ENVELOPE_KINDS:
            raise ConfigurationError(f"unknown envelope kind {self.kind!r}")
        if self.behaviour in (DUPLICATE, REORDER):
            if self.kind is None or self.kind not in _LIST_KINDS:
                raise ConfigurationError(
                    f"{self.behaviour} faults need an explicit list-payload kind "
                    f"(one of {_LIST_KINDS}); replayed submissions are a user-level "
                    "attack, not a link fault"
                )
        if self.behaviour == DELAY and self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be non-negative")
        if self.rounds is not None:
            object.__setattr__(self, "rounds", frozenset(self.rounds))

    def matches(self, envelope: Envelope) -> bool:
        if self.kind is not None and envelope.kind != self.kind:
            return False
        if self.rounds is not None and envelope.round_number not in self.rounds:
            return False
        if self.source is not None and envelope.source != self.source:
            return False
        if self.destination is not None and envelope.destination != self.destination:
            return False
        if self.chain_id is not None and envelope.chain_id != self.chain_id:
            return False
        return True


@dataclass(frozen=True)
class AppliedFault:
    """Advisory log entry: one fault applied to one envelope."""

    behaviour: str
    kind: str
    round_number: int
    source: str
    destination: str
    chain_id: Optional[int] = None


class FaultyTransport(Transport):
    """Applies matching :class:`LinkFault` behaviours, then delegates."""

    name = "faulty"

    def __init__(self, inner: Transport, faults: Sequence[LinkFault] = ()) -> None:
        self.inner = inner
        self.faults: List[LinkFault] = list(faults)
        self.applied: List[AppliedFault] = []
        # A wrapper is exactly as fork-tolerant as what it delegates to.
        self.fork_safe = inner.fork_safe

    @property
    def ledger(self) -> Optional[object]:
        """The inner transport's traffic ledger, when it keeps one."""
        return getattr(self.inner, "ledger", None)

    def _log(self, fault: LinkFault, envelope: Envelope) -> None:
        self.applied.append(
            AppliedFault(
                behaviour=fault.behaviour,
                kind=envelope.kind,
                round_number=envelope.round_number,
                source=envelope.source,
                destination=envelope.destination,
                chain_id=envelope.chain_id,
            )
        )

    @staticmethod
    def _reorder_rng(fault: LinkFault, envelope: Envelope) -> random.Random:
        """A permutation stream derived purely from the (fault, envelope) pair."""
        chain = envelope.chain_id if envelope.chain_id is not None else -1
        return random.Random(
            (fault.seed << 96)
            ^ (envelope.round_number << 32)
            ^ ((chain & 0xFFFF) << 16)
            ^ len(envelope.kind)
        )

    def deliver(self, envelope: Envelope) -> object:
        matching = [fault for fault in self.faults if fault.matches(envelope)]
        delay_total = 0.0
        for fault in matching:
            if fault.behaviour == DROP:
                self._log(fault, envelope)
                return [] if envelope.kind in _LIST_KINDS else None
            if fault.behaviour == DUPLICATE:
                payload = list(envelope.payload)
                if payload:
                    payload.append(payload[fault.index % len(payload)])
                    # dataclasses.replace keeps every other field (including
                    # the streaming pipeline's chunk index) intact.
                    envelope = replace(envelope, payload=payload)
                    self._log(fault, envelope)
            elif fault.behaviour == REORDER:
                payload = list(envelope.payload)
                if len(payload) > 1:
                    self._reorder_rng(fault, envelope).shuffle(payload)
                    envelope = replace(envelope, payload=payload)
                    self._log(fault, envelope)
            elif fault.behaviour == DELAY:
                delay_total += fault.delay_seconds
                self._log(fault, envelope)
        delivered = self.inner.deliver(envelope)
        if delay_total > 0.0 and self.ledger is not None:
            # Charge the stall as a zero-byte crossing of the same link so
            # the measured critical path reflects it.
            self.ledger.append(
                LinkRecord(
                    round_number=envelope.round_number,
                    kind=envelope.kind,
                    source=envelope.source,
                    destination=envelope.destination,
                    num_bytes=0,
                    seconds=delay_total,
                    chain_id=envelope.chain_id,
                )
            )
        return delivered

    def close(self) -> None:
        self.inner.close()
