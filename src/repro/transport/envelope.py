"""Typed envelopes: the unit every cross-node interaction travels in.

An :class:`Envelope` names the logical link it crosses (``source`` →
``destination``, both node names from the deployment's Figure 1 topology),
the protocol flow it belongs to (``kind``), and carries the typed payload.
Four kinds cover every cross-node interaction of the system:

* ``SUBMISSION`` / ``COVER_SUBMISSION`` — a user's
  :class:`~repro.mixnet.messages.ClientSubmission` to the entry server of
  one of her assigned chains (§6.2); covers are banked with the coordinator
  one round ahead (§5.3.3) and are distinguished only so accounting can
  attribute them.
* ``BATCH`` — the list of :class:`~repro.mixnet.messages.BatchEntry` pairs
  one chain server hands to its successor during mixing (§6.3).
* ``MAILBOX_DELIVERY`` — the recovered
  :class:`~repro.mixnet.messages.MailboxMessage` batch the last server of a
  chain sends to the mailbox servers.
* ``MAILBOX_FETCH`` — a user's mailbox download for the round.

Payloads stay typed objects in the envelope; it is the *transport* that
decides whether crossing the link serialises them (see
:mod:`repro.transport.codec` for the wire encodings, which are exactly the
``to_bytes``/``from_bytes`` formats of :mod:`repro.mixnet.messages`).

This module is import-light on purpose: client and mixnet code can build
envelopes without pulling in the codec (and its imports) transitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = [
    "Envelope",
    "SUBMISSION",
    "COVER_SUBMISSION",
    "BATCH",
    "MAILBOX_DELIVERY",
    "MAILBOX_FETCH",
    "ENVELOPE_KINDS",
    "submission_envelope",
]

#: A user's per-chain submission to the chain's entry server.
SUBMISSION = "submission"
#: A banked next-round cover submission (uploaded one round early, §5.3.3).
COVER_SUBMISSION = "cover-submission"
#: The entry batch one chain server forwards to its successor.
BATCH = "batch"
#: Recovered mailbox messages, last chain server → mailbox servers.
MAILBOX_DELIVERY = "mailbox-delivery"
#: A user's mailbox download, mailbox server → user.
MAILBOX_FETCH = "mailbox-fetch"

ENVELOPE_KINDS = (SUBMISSION, COVER_SUBMISSION, BATCH, MAILBOX_DELIVERY, MAILBOX_FETCH)


@dataclass(frozen=True)
class Envelope:
    """One message crossing one logical link of the deployment."""

    kind: str
    source: str
    destination: str
    round_number: int
    payload: object
    #: The chain this envelope belongs to, when the flow is chain-scoped
    #: (submissions and batches); lets accounting reconstruct per-chain
    #: critical paths.
    chain_id: Optional[int] = None


def submission_envelope(
    submission, entry_servers: Dict[int, str], upload_round: int
) -> Envelope:
    """Address one client submission to its chain's entry server.

    The single place the submission→envelope mapping lives: the honest
    client path (:meth:`repro.client.user.User.submission_envelopes`) and
    the engine's injected-submission path both build through here.
    ``upload_round`` is the round in which the bytes cross the uplink — for
    covers that is one round *before* the round their contents are built
    for (§5.3.3: covers are banked with the coordinator ahead of time); the
    submission's own round number is bound inside its NIZK context and
    ciphertexts, not repeated on the envelope.
    """
    if submission.chain_id not in entry_servers:
        raise ConfigurationError(f"no entry server for chain {submission.chain_id}")
    return Envelope(
        kind=COVER_SUBMISSION if submission.cover else SUBMISSION,
        source=submission.sender,
        destination=entry_servers[submission.chain_id],
        round_number=upload_round,
        payload=submission,
        chain_id=submission.chain_id,
    )
