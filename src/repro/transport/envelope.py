"""Typed envelopes: the unit every cross-node interaction travels in.

An :class:`Envelope` names the logical link it crosses (``source`` →
``destination``, both node names from the deployment's Figure 1 topology),
the protocol flow it belongs to (``kind``), and carries the typed payload.
These kinds cover every cross-node interaction of the system:

* ``SUBMISSION`` / ``COVER_SUBMISSION`` — a user's
  :class:`~repro.mixnet.messages.ClientSubmission` to the entry server of
  one of her assigned chains (§6.2); covers are banked with the coordinator
  one round ahead (§5.3.3) and are distinguished only so accounting can
  attribute them.
* ``BATCH`` — the list of :class:`~repro.mixnet.messages.BatchEntry` pairs
  one chain server hands to its successor during mixing (§6.3).
* ``MAILBOX_DELIVERY`` — the recovered
  :class:`~repro.mixnet.messages.MailboxMessage` batch the last server of a
  chain sends to the mailbox servers.
* ``MAILBOX_FETCH`` — a user's mailbox download for the round.
* ``SUBMISSION_BATCH`` / ``COVER_SUBMISSION_BATCH`` — one chain's whole
  submission batch framed as a single message on the (population →
  entry-server) link; the population layer's upload unit (DESIGN.md §7).
* ``MAILBOX_FETCH_BATCH`` — one mailbox shard's round downloads for many
  users, framed as ``(owner, messages)`` pairs.

Payloads stay typed objects in the envelope; it is the *transport* that
decides whether crossing the link serialises them (see
:mod:`repro.transport.codec` for the wire encodings, which are exactly the
``to_bytes``/``from_bytes`` formats of :mod:`repro.mixnet.messages`).

This module is import-light on purpose: client and mixnet code can build
envelopes without pulling in the codec (and its imports) transitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "Envelope",
    "SUBMISSION",
    "COVER_SUBMISSION",
    "BATCH",
    "MAILBOX_DELIVERY",
    "MAILBOX_FETCH",
    "SUBMISSION_BATCH",
    "COVER_SUBMISSION_BATCH",
    "MAILBOX_FETCH_BATCH",
    "ENVELOPE_KINDS",
    "submission_envelope",
    "submission_batch_envelope",
]

#: A user's per-chain submission to the chain's entry server.
SUBMISSION = "submission"
#: A banked next-round cover submission (uploaded one round early, §5.3.3).
COVER_SUBMISSION = "cover-submission"
#: The entry batch one chain server forwards to its successor.
BATCH = "batch"
#: Recovered mailbox messages, last chain server → mailbox servers.
MAILBOX_DELIVERY = "mailbox-delivery"
#: A user's mailbox download, mailbox server → user.
MAILBOX_FETCH = "mailbox-fetch"
#: A whole chain's client submissions framed as one message on the
#: (user-population → entry-server) link — the population layer's upload
#: unit; the payload is the ordered submission list.
SUBMISSION_BATCH = "submission-batch"
#: The banked-cover counterpart of ``SUBMISSION_BATCH`` (§5.3.3).
COVER_SUBMISSION_BATCH = "cover-submission-batch"
#: One mailbox shard's round downloads for many users framed as one
#: message; the payload is an ordered list of ``(owner public key,
#: messages)`` pairs.
MAILBOX_FETCH_BATCH = "mailbox-fetch-batch"

ENVELOPE_KINDS = (
    SUBMISSION,
    COVER_SUBMISSION,
    BATCH,
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    SUBMISSION_BATCH,
    COVER_SUBMISSION_BATCH,
    MAILBOX_FETCH_BATCH,
)


@dataclass(frozen=True, slots=True)
class Envelope:
    """One message crossing one logical link of the deployment."""

    kind: str
    source: str
    destination: str
    round_number: int
    payload: object
    #: The chain this envelope belongs to, when the flow is chain-scoped
    #: (submissions and batches); lets accounting reconstruct per-chain
    #: critical paths.
    chain_id: Optional[int] = None
    #: Chunk index when the flow is streamed per population chunk
    #: (DESIGN.md §9): the streaming pipeline frames several envelopes per
    #: (link, round) instead of one, and ``part`` orders them.  ``None``
    #: for monolithic (whole-population) frames and all other flows.
    part: Optional[int] = None


def submission_envelope(
    submission: Any, entry_servers: Dict[int, str], upload_round: int
) -> Envelope:
    """Address one client submission to its chain's entry server.

    The single place the submission→envelope mapping lives: the honest
    client path (:meth:`repro.client.user.User.submission_envelopes`) and
    the engine's injected-submission path both build through here.
    ``upload_round`` is the round in which the bytes cross the uplink — for
    covers that is one round *before* the round their contents are built
    for (§5.3.3: covers are banked with the coordinator ahead of time); the
    submission's own round number is bound inside its NIZK context and
    ciphertexts, not repeated on the envelope.
    """
    if submission.chain_id not in entry_servers:
        raise ConfigurationError(f"no entry server for chain {submission.chain_id}")
    return Envelope(
        kind=COVER_SUBMISSION if submission.cover else SUBMISSION,
        source=submission.sender,
        destination=entry_servers[submission.chain_id],
        round_number=upload_round,
        payload=submission,
        chain_id=submission.chain_id,
    )


def submission_batch_envelope(
    chain_id: int,
    submissions: Sequence[Any],
    entry_servers: Dict[int, str],
    upload_round: int,
    cover: bool = False,
    part: Optional[int] = None,
) -> Envelope:
    """Frame one chain's whole submission batch for its entry server.

    The population layer's upload unit: one framed message per
    (chain, entry-server) link and round instead of one per user.  As with
    :func:`submission_envelope`, ``upload_round`` is the round the bytes
    cross the uplink in — for banked covers that is one round before the
    round the contents were built for (§5.3.3).  Under the streaming
    pipeline ``part`` carries the chunk index — one framed message per
    (chain, chunk) instead of per chain.
    """
    if chain_id not in entry_servers:
        raise ConfigurationError(f"no entry server for chain {chain_id}")
    return Envelope(
        kind=COVER_SUBMISSION_BATCH if cover else SUBMISSION_BATCH,
        source="user-population",
        destination=entry_servers[chain_id],
        round_number=upload_round,
        payload=list(submissions),
        chain_id=chain_id,
        part=part,
    )
