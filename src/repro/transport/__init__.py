"""The message-passing transport layer (DESIGN.md §5).

Every cross-node interaction of the deployment — client→entry-server
submission, server→server batch flow inside a chain, chain→mailbox
delivery, and the user's mailbox fetch — travels as a typed
:class:`Envelope` over a pluggable :class:`Transport`:

* :class:`InProcTransport` — reference semantics: delivery hands the
  payload object through unchanged (bit-identical to the pre-transport
  in-process simulation).
* :class:`InstrumentedTransport` — serialises each payload to its real
  wire encoding, accounts bytes and modelled per-link latency in a
  :class:`TrafficLedger`, and delivers the *decoded* payload, proving the
  codecs lossless.

The mix stage's :class:`~repro.engine.multiprocess.MultiprocessBackend`
uses the same wire codecs (:mod:`repro.transport.codec`) to ship per-chain
round state across process boundaries.
"""

from repro.errors import ConfigurationError
from repro.transport.base import Transport
from repro.transport.envelope import (
    BATCH,
    COVER_SUBMISSION,
    COVER_SUBMISSION_BATCH,
    ENVELOPE_KINDS,
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    MAILBOX_FETCH_BATCH,
    SUBMISSION,
    SUBMISSION_BATCH,
    Envelope,
)
from repro.transport.faulty import FaultyTransport, LinkFault
from repro.transport.inproc import InProcTransport
from repro.transport.instrumented import InstrumentedTransport
from repro.transport.metrics import LinkRecord, TrafficLedger

__all__ = [
    "Transport",
    "InProcTransport",
    "InstrumentedTransport",
    "FaultyTransport",
    "LinkFault",
    "TrafficLedger",
    "LinkRecord",
    "Envelope",
    "SUBMISSION",
    "COVER_SUBMISSION",
    "BATCH",
    "MAILBOX_DELIVERY",
    "MAILBOX_FETCH",
    "SUBMISSION_BATCH",
    "COVER_SUBMISSION_BATCH",
    "MAILBOX_FETCH_BATCH",
    "ENVELOPE_KINDS",
    "make_transport",
]


def make_transport(kind: str, group=None, cost_model=None) -> Transport:
    """Build a transport from a :class:`DeploymentConfig`-style name."""
    if kind == "inproc":
        return InProcTransport()
    if kind == "instrumented":
        if group is None:
            raise ConfigurationError("the instrumented transport needs the deployment's group")
        return InstrumentedTransport(group, cost_model=cost_model)
    raise ConfigurationError(f"unknown transport {kind!r}")
