"""The message-passing transport layer (DESIGN.md §5, §10).

Every cross-node interaction of the deployment — client→entry-server
submission, server→server batch flow inside a chain, chain→mailbox
delivery, and the user's mailbox fetch — travels as a typed
:class:`Envelope` over a pluggable :class:`Transport`:

* :class:`InProcTransport` — reference semantics: delivery hands the
  payload object through unchanged (bit-identical to the pre-transport
  in-process simulation).
* :class:`InstrumentedTransport` — serialises each payload to its real
  wire encoding, accounts bytes and modelled per-link latency in a
  :class:`TrafficLedger`, and delivers the *decoded* payload, proving the
  codecs lossless.
* :class:`~repro.transport.tcp.TcpTransport` — sends the wire encoding
  over real TCP sockets as length-prefixed frames
  (:mod:`repro.transport.frames`); the process-per-role runner
  (:mod:`repro.runner`) deploys it across OS processes, and the standalone
  ``transport="tcp"`` knob runs it against a loopback reflector.

The mix stage's :class:`~repro.engine.multiprocess.MultiprocessBackend`
uses the same wire codecs (:mod:`repro.transport.codec`) to ship per-chain
round state across process boundaries.

Transports are registered in the typed component registry
(:data:`repro.registry.TRANSPORTS`); :func:`make_transport` is a thin
wrapper over it, and external transports register there without touching
this package.
"""

from typing import Any

from repro.registry import TRANSPORTS, TransportKind
from repro.transport.base import Transport
from repro.transport.envelope import (
    BATCH,
    COVER_SUBMISSION,
    COVER_SUBMISSION_BATCH,
    ENVELOPE_KINDS,
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    MAILBOX_FETCH_BATCH,
    SUBMISSION,
    SUBMISSION_BATCH,
    Envelope,
)
from repro.transport.faulty import FaultyTransport, LinkFault
from repro.transport.inproc import InProcTransport
from repro.transport.instrumented import InstrumentedTransport
from repro.transport.metrics import LinkRecord, TrafficLedger

__all__ = [
    "Transport",
    "InProcTransport",
    "InstrumentedTransport",
    "FaultyTransport",
    "LinkFault",
    "TrafficLedger",
    "LinkRecord",
    "Envelope",
    "SUBMISSION",
    "COVER_SUBMISSION",
    "BATCH",
    "MAILBOX_DELIVERY",
    "MAILBOX_FETCH",
    "SUBMISSION_BATCH",
    "COVER_SUBMISSION_BATCH",
    "MAILBOX_FETCH_BATCH",
    "ENVELOPE_KINDS",
    "make_transport",
]


def _make_inproc(group: Any = None, cost_model: Any = None) -> Transport:
    return InProcTransport()


def _make_instrumented(group: Any = None, cost_model: Any = None) -> Transport:
    from repro.errors import ConfigurationError

    if group is None:
        raise ConfigurationError("the instrumented transport needs the deployment's group")
    return InstrumentedTransport(group, cost_model=cost_model)


def _make_tcp(group: Any = None, cost_model: Any = None) -> Transport:
    """The standalone knob: a loopback reflector in this process."""
    from repro.errors import ConfigurationError
    from repro.transport.tcp import TcpTransport

    if group is None:
        raise ConfigurationError("the tcp transport needs the deployment's group")
    return TcpTransport(group, node_name="loopback")


if not TRANSPORTS.is_known(TransportKind.INPROC):  # tolerate module re-import
    TRANSPORTS.register(TransportKind.INPROC, _make_inproc)
    TRANSPORTS.register(TransportKind.INSTRUMENTED, _make_instrumented)
    TRANSPORTS.register(TransportKind.TCP, _make_tcp)


def make_transport(kind: Any, group: Any = None, cost_model: Any = None) -> Transport:
    """Build a transport from a :class:`~repro.registry.TransportKind` (or a
    registered name) via the component registry."""
    return TRANSPORTS.create(kind, group=group, cost_model=cost_model)
