"""Wire codecs for envelope payloads and per-chain round results.

Every encoding here is the *real* byte format of
:mod:`repro.mixnet.messages` — the instrumented transport measures these
bytes, the multiprocess backend ships them across process boundaries, and
the parity suite proves they round-trip losslessly (decode(encode(x))
produces a payload the protocol cannot distinguish from ``x``).

One payload detail is deliberately *not* on the wire: a submission's
``cover`` flag is client-side metadata (to a server, a cover is
indistinguishable from any other submission — that is the point of covers),
so decoded submissions carry the default ``cover=False``.

A :class:`~repro.mixnet.blame.BlameVerdict` *is* a wire format
(:func:`encode_blame_verdict`): it is the coordinator-facing outcome of the
blame protocol — the convicted users and servers plus counters — which must
survive the multiprocess backend's pipe and would be broadcast between
servers in a networked deployment.  The reveals and NIZKs the protocol
*consumed* to reach the verdict stay local to the chain that ran it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from repro.errors import DecodingError
from repro.mixnet.messages import (
    BatchEntry,
    ClientSubmission,
    EncodedBatch,
    MailboxMessage,
)
from repro.transport import envelope as ev
from repro.transport.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.mixnet.ahs import ChainRoundResult
    from repro.mixnet.blame import BlameVerdict

__all__ = [
    "encode_payload",
    "decode_payload",
    "encode_blame_verdict",
    "decode_blame_verdict",
    "encode_chain_outcome",
    "decode_chain_outcome",
    "encode_submission_batch",
    "decode_submission_batch",
    "UnsupportedPayload",
]


class UnsupportedPayload(ValueError):
    """The payload has no pure wire encoding (caller should fall back)."""


# -- primitive framing -------------------------------------------------------

def _pack_bytes(data: bytes) -> bytes:
    return len(data).to_bytes(4, "big") + data


def _read_bytes(data: bytes, offset: int) -> tuple:
    if len(data) < offset + 4:
        raise DecodingError("truncated length prefix")
    length = int.from_bytes(data[offset:offset + 4], "big")
    offset += 4
    if len(data) < offset + length:
        raise DecodingError("truncated field")
    return data[offset:offset + length], offset + length


def _pack_str(text: Optional[str]) -> bytes:
    # A leading presence byte distinguishes None from the empty string.
    if text is None:
        return b"\x00"
    return b"\x01" + _pack_bytes(text.encode())


def _decode_text(raw: bytes) -> str:
    try:
        return raw.decode()
    except UnicodeDecodeError as exc:
        raise DecodingError("string field is not valid UTF-8") from exc


def _read_str(data: bytes, offset: int) -> tuple:
    if len(data) < offset + 1:
        raise DecodingError("truncated string field")
    present, offset = data[offset], offset + 1
    if present == 0:
        return None, offset
    raw, offset = _read_bytes(data, offset)
    return _decode_text(raw), offset


def _pack_str_list(items: Sequence[str]) -> bytes:
    parts = [len(items).to_bytes(4, "big")]
    parts.extend(_pack_bytes(item.encode()) for item in items)
    return b"".join(parts)


def _read_int(data: bytes, offset: int, width: int) -> tuple:
    if len(data) < offset + width:
        raise DecodingError("truncated integer field")
    return int.from_bytes(data[offset:offset + width], "big"), offset + width


def _read_str_list(data: bytes, offset: int) -> tuple:
    count, offset = _read_int(data, offset, 4)
    items: List[str] = []
    for _ in range(count):
        raw, offset = _read_bytes(data, offset)
        items.append(_decode_text(raw))
    return items, offset


# -- envelope payloads --------------------------------------------------------

def _encode_mailbox_batch(messages: Sequence[MailboxMessage]) -> bytes:
    parts = [len(messages).to_bytes(4, "big")]
    parts.extend(_pack_bytes(message.to_bytes()) for message in messages)
    return b"".join(parts)


def _read_mailbox_batch(data: bytes, offset: int) -> tuple:
    """Parse one embedded mailbox batch; return ``(messages, next_offset)``."""
    count, offset = _read_int(data, offset, 4)
    messages: List[MailboxMessage] = []
    for _ in range(count):
        raw, offset = _read_bytes(data, offset)
        messages.append(MailboxMessage.from_bytes(raw))
    return messages, offset


def _decode_mailbox_batch(data: bytes) -> List[MailboxMessage]:
    messages, offset = _read_mailbox_batch(data, 0)
    if offset != len(data):
        raise DecodingError("trailing bytes after mailbox batch")
    return messages


def _encode_submission_batch(submissions: Sequence[ClientSubmission]) -> bytes:
    """``count || per submission: length-prefixed ClientSubmission bytes``.

    Submissions are length-prefixed even though a deployment's are
    fixed-size: the frame must stay parseable for adversarial (oddly-sized)
    submissions, which cross the same link as honest ones.
    """
    parts = [len(submissions).to_bytes(4, "big")]
    parts.extend(_pack_bytes(submission.to_bytes()) for submission in submissions)
    return b"".join(parts)


def _decode_submission_batch(group: Any, data: bytes) -> List[ClientSubmission]:
    count, offset = _read_int(data, 0, 4)
    submissions: List[ClientSubmission] = []
    for _ in range(count):
        raw, offset = _read_bytes(data, offset)
        submissions.append(
            ClientSubmission.from_bytes(raw, element_size=group.element_size)
        )
    if offset != len(data):
        raise DecodingError("trailing bytes after submission batch")
    return submissions


#: Public aliases of the submission-batch codec: the streaming population
#: pipeline's forked build workers ship each chunk's per-chain batches back
#: to the parent in exactly the bytes a ``SUBMISSION_BATCH`` envelope would
#: carry on the wire (DESIGN.md §9).
encode_submission_batch = _encode_submission_batch
decode_submission_batch = _decode_submission_batch


def _encode_fetch_batch(pairs: Sequence[tuple]) -> bytes:
    """``count || per user: length-prefixed owner key + mailbox batch``."""
    parts = [len(pairs).to_bytes(4, "big")]
    for owner, messages in pairs:
        parts.append(_pack_bytes(owner))
        parts.append(_encode_mailbox_batch(messages))
    return b"".join(parts)


def _decode_fetch_batch(data: bytes) -> List[tuple]:
    count, offset = _read_int(data, 0, 4)
    pairs: List[tuple] = []
    for _ in range(count):
        owner, offset = _read_bytes(data, offset)
        messages, offset = _read_mailbox_batch(data, offset)
        pairs.append((owner, messages))
    if offset != len(data):
        raise DecodingError("trailing bytes after fetch batch")
    return pairs


def encode_payload(group: Any, envelope: Envelope) -> bytes:
    """Serialise an envelope's payload to its real wire encoding."""
    kind = envelope.kind
    if kind in (ev.SUBMISSION, ev.COVER_SUBMISSION):
        return envelope.payload.to_bytes()
    if kind in (ev.SUBMISSION_BATCH, ev.COVER_SUBMISSION_BATCH):
        return _encode_submission_batch(envelope.payload)
    if kind == ev.BATCH:
        entries: Sequence[BatchEntry] = envelope.payload
        if isinstance(entries, EncodedBatch):
            # Streamed batches already *are* their wire records — prepend
            # the count and ship the blob without materialising entries.
            return len(entries).to_bytes(4, "big") + entries.blob
        parts = [len(entries).to_bytes(4, "big")]
        parts.extend(entry.to_bytes(group) for entry in entries)
        return b"".join(parts)
    if kind in (ev.MAILBOX_DELIVERY, ev.MAILBOX_FETCH):
        return _encode_mailbox_batch(envelope.payload)
    if kind == ev.MAILBOX_FETCH_BATCH:
        return _encode_fetch_batch(envelope.payload)
    raise UnsupportedPayload(f"no wire encoding for envelope kind {kind!r}")


def decode_payload(group: Any, kind: str, data: bytes) -> object:
    """Parse wire bytes back into the payload the destination consumes."""
    if kind in (ev.SUBMISSION, ev.COVER_SUBMISSION):
        return ClientSubmission.from_bytes(data, element_size=group.element_size)
    if kind in (ev.SUBMISSION_BATCH, ev.COVER_SUBMISSION_BATCH):
        return _decode_submission_batch(group, data)
    if kind == ev.BATCH:
        if len(data) < 4:
            raise DecodingError("truncated batch header")
        count = int.from_bytes(data[:4], "big")
        offset = 4
        entries: List[BatchEntry] = []
        for _ in range(count):
            entry, offset = BatchEntry.read_from(group, data, offset)
            entries.append(entry)
        if offset != len(data):
            raise DecodingError("trailing bytes after batch")
        return entries
    if kind in (ev.MAILBOX_DELIVERY, ev.MAILBOX_FETCH):
        return _decode_mailbox_batch(data)
    if kind == ev.MAILBOX_FETCH_BATCH:
        return _decode_fetch_batch(data)
    raise UnsupportedPayload(f"no wire decoding for envelope kind {kind!r}")


# -- blame verdicts (broadcast between servers; multiprocess return channel) --

def encode_blame_verdict(verdict: "BlameVerdict") -> bytes:
    """Serialise a blame verdict: convicted parties plus protocol counters."""
    return b"".join(
        (
            verdict.chain_id.to_bytes(4, "big"),
            verdict.round_number.to_bytes(8, "big"),
            _pack_str_list(verdict.malicious_users),
            _pack_str_list(verdict.malicious_servers),
            verdict.false_accusations.to_bytes(4, "big"),
            verdict.examined_ciphertexts.to_bytes(4, "big"),
        )
    )


def decode_blame_verdict(data: bytes, offset: int = 0) -> tuple:
    """Inverse of :func:`encode_blame_verdict`; returns ``(verdict, offset)``."""
    from repro.mixnet.blame import BlameVerdict  # local import to avoid a cycle

    chain_id, offset = _read_int(data, offset, 4)
    round_number, offset = _read_int(data, offset, 8)
    malicious_users, offset = _read_str_list(data, offset)
    malicious_servers, offset = _read_str_list(data, offset)
    false_accusations, offset = _read_int(data, offset, 4)
    examined, offset = _read_int(data, offset, 4)
    verdict = BlameVerdict(
        chain_id=chain_id,
        round_number=round_number,
        malicious_users=malicious_users,
        malicious_servers=malicious_servers,
        false_accusations=false_accusations,
        examined_ciphertexts=examined,
    )
    return verdict, offset


# -- per-chain round results (the multiprocess backend's return channel) ------

def encode_chain_outcome(chain_id: int, accept_rejected: Sequence[str],
                         result: "ChainRoundResult") -> bytes:
    """Serialise one chain's round outcome for the trip back to the parent."""
    if result.blame_verdict is None:
        verdict_bytes = b"\x00"
    else:
        verdict_bytes = b"\x01" + encode_blame_verdict(result.blame_verdict)
    return b"".join(
        (
            chain_id.to_bytes(4, "big"),
            _pack_str_list(list(accept_rejected)),
            result.chain_id.to_bytes(4, "big"),
            result.round_number.to_bytes(8, "big"),
            _pack_str(result.status),
            _encode_mailbox_batch(result.mailbox_messages),
            _pack_str(result.misbehaving_server),
            _pack_str_list(result.rejected_senders),
            result.invalid_inner_count.to_bytes(4, "big"),
            _pack_bytes(result.input_digest),
            verdict_bytes,
        )
    )


def decode_chain_outcome(data: bytes) -> tuple:
    """Inverse of :func:`encode_chain_outcome`.

    Returns ``(chain_id, accept_rejected, result)``.
    """
    from repro.mixnet.ahs import ChainRoundResult  # local import to avoid a cycle

    chain_id, offset = _read_int(data, 0, 4)
    accept_rejected, offset = _read_str_list(data, offset)
    result_chain_id, offset = _read_int(data, offset, 4)
    round_number, offset = _read_int(data, offset, 8)
    status, offset = _read_str(data, offset)
    mailbox_messages, offset = _read_mailbox_batch(data, offset)
    misbehaving_server, offset = _read_str(data, offset)
    rejected_senders, offset = _read_str_list(data, offset)
    invalid_inner_count, offset = _read_int(data, offset, 4)
    input_digest, offset = _read_bytes(data, offset)
    verdict_present, offset = _read_int(data, offset, 1)
    blame_verdict = None
    if verdict_present:
        blame_verdict, offset = decode_blame_verdict(data, offset)
    if offset != len(data):
        raise DecodingError("trailing bytes after chain outcome")
    result = ChainRoundResult(
        chain_id=result_chain_id,
        round_number=round_number,
        status=status,
        mailbox_messages=mailbox_messages,
        blame_verdict=blame_verdict,
        misbehaving_server=misbehaving_server,
        rejected_senders=rejected_senders,
        invalid_inner_count=invalid_inner_count,
        input_digest=input_digest,
    )
    return chain_id, accept_rejected, result
