"""Traffic accounting: what the instrumented transport measured.

The :class:`TrafficLedger` is an append-only log of :class:`LinkRecord`
entries, one per delivered envelope.  Appends are GIL-atomic list appends —
no lock is taken, which keeps the ledger safe to share between the
coordinator thread and the mix worker (staggered scheduling), between pool
threads (parallel backend), and across ``fork`` (multiprocess backend,
which snapshots the record count in the child and ships the delta back to
the parent as plain tuples).

Summaries answer the two questions the paper's evaluation measures from
traffic:

* **bytes** — per-user upload/download per round
  (:meth:`TrafficLedger.per_user_bytes`), the measured companion to the
  Figure 2 model in :mod:`repro.simulation.bandwidth`;
* **latency** — the modelled time of the round's critical path through the
  recorded links (:meth:`TrafficLedger.round_latency_seconds`), the
  measured-from-traffic companion to the Figure 4/5 closed-form model in
  :mod:`repro.simulation.latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.transport import envelope as ev

__all__ = ["LinkRecord", "TrafficLedger"]


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """One envelope's crossing of one link, as measured on the wire."""

    round_number: int
    kind: str
    source: str
    destination: str
    num_bytes: int
    #: Modelled one-way link time for this envelope (propagation plus
    #: transmission at the link model's bandwidth).
    seconds: float
    chain_id: Optional[int] = None

    def to_tuple(self) -> Tuple:
        """A plain-data form that crosses process boundaries trivially."""
        return (
            self.round_number,
            self.kind,
            self.source,
            self.destination,
            self.num_bytes,
            self.seconds,
            self.chain_id,
        )

    @classmethod
    def from_tuple(cls, data: Tuple) -> "LinkRecord":
        return cls(*data)


#: Envelope kinds that count toward a user's upstream traffic.
_UPLOAD_KINDS = (ev.SUBMISSION, ev.COVER_SUBMISSION)


class TrafficLedger:
    """Append-only log of every envelope an instrumented transport carried."""

    def __init__(self) -> None:
        self._records: List[LinkRecord] = []

    # -- recording -----------------------------------------------------------

    def append(self, record: LinkRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[LinkRecord]) -> None:
        for record in records:
            self._records.append(record)

    def record_count(self) -> int:
        return len(self._records)

    def records_since(self, start: int) -> List[LinkRecord]:
        """Records appended at or after index ``start`` (multiprocess delta)."""
        return self._records[start:]

    @property
    def records(self) -> List[LinkRecord]:
        return list(self._records)

    def clear(self) -> None:
        self._records = []

    # -- byte accounting ------------------------------------------------------

    def records_for_round(self, round_number: int) -> List[LinkRecord]:
        return [r for r in self._records if r.round_number == round_number]

    def total_bytes(self, round_number: Optional[int] = None,
                    kinds: Optional[Iterable[str]] = None) -> int:
        kind_set = set(kinds) if kinds is not None else None
        return sum(
            r.num_bytes
            for r in self._records
            if (round_number is None or r.round_number == round_number)
            and (kind_set is None or r.kind in kind_set)
        )

    def bytes_by_kind(self, round_number: Optional[int] = None) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self._records:
            if round_number is not None and record.round_number != round_number:
                continue
            totals[record.kind] = totals.get(record.kind, 0) + record.num_bytes
        return totals

    def per_user_bytes(self, round_number: int) -> Dict[str, Tuple[int, int]]:
        """``{user: (upload_bytes, download_bytes)}`` for one round.

        Uploads are the user's submissions plus banked covers, attributed to
        the round in which the bytes crossed the link (covers are uploaded
        one round before they are played, §5.3.3); downloads are her mailbox
        fetch.
        """
        uploads: Dict[str, int] = {}
        downloads: Dict[str, int] = {}
        for record in self._records:
            if record.round_number != round_number:
                continue
            if record.kind in _UPLOAD_KINDS:
                uploads[record.source] = uploads.get(record.source, 0) + record.num_bytes
            elif record.kind == ev.MAILBOX_FETCH:
                downloads[record.destination] = (
                    downloads.get(record.destination, 0) + record.num_bytes
                )
        return {
            user: (uploads.get(user, 0), downloads.get(user, 0))
            for user in sorted(set(uploads) | set(downloads))
        }

    # -- latency accounting ----------------------------------------------------

    def round_latency_seconds(self, round_number: int) -> float:
        """Modelled end-to-end time of the round's measured critical path.

        The round's data flow is: every submission reaches its entry server
        (parallel across users — the slowest upload gates the start), the
        chains mix (each chain's batches traverse its hops *sequentially*;
        chains run in parallel, so the slowest chain gates delivery), the
        recovered messages reach the mailbox servers, and every user fetches
        (parallel — slowest fetch gates the end).

        On a batched deployment the same legs are framed per chain
        (``SUBMISSION_BATCH``) and per shard (``MAILBOX_FETCH_BATCH``);
        frames cross their links in parallel, so the slowest frame gates
        each leg.  Banked covers stay off the critical path either way —
        they are uploads *for the next round*.
        """
        submission_max = 0.0
        fetch_max = 0.0
        chain_path: Dict[Optional[int], float] = {}
        delivery: Dict[Optional[int], float] = {}
        for record in self._records:
            if record.round_number != round_number:
                continue
            if record.kind in (ev.SUBMISSION, ev.SUBMISSION_BATCH):
                submission_max = max(submission_max, record.seconds)
            elif record.kind in (ev.MAILBOX_FETCH, ev.MAILBOX_FETCH_BATCH):
                fetch_max = max(fetch_max, record.seconds)
            elif record.kind == ev.BATCH:
                chain_path[record.chain_id] = chain_path.get(record.chain_id, 0.0) + record.seconds
            elif record.kind == ev.MAILBOX_DELIVERY:
                delivery[record.chain_id] = delivery.get(record.chain_id, 0.0) + record.seconds
        slowest_chain = max(
            (chain_path.get(cid, 0.0) + delivery.get(cid, 0.0)
             for cid in sorted(set(chain_path) | set(delivery))),
            default=0.0,
        )
        return submission_max + slowest_chain + fetch_max

    def chain_hop_seconds(self, round_number: int) -> Dict[int, float]:
        """Per-chain summed batch-hop time for one round (mix stage only)."""
        totals: Dict[int, float] = {}
        for record in self._records:
            if record.round_number == round_number and record.kind == ev.BATCH:
                totals[record.chain_id] = totals.get(record.chain_id, 0.0) + record.seconds
        return totals
