"""A transport that measures every envelope from its real wire bytes.

``deliver`` serialises the payload with the codecs of
:mod:`repro.transport.codec` (the byte formats of
:mod:`repro.mixnet.messages`), appends a :class:`LinkRecord` — byte count
plus the link model's one-way time for that many bytes — to its
:class:`TrafficLedger`, and returns the payload *decoded from the wire
bytes*.  Returning the decoded object rather than the original is the
load-bearing choice: the parity suite demands instrumented rounds be
bit-identical to in-process rounds, which therefore proves every wire
codec round-trips losslessly, the same property the multiprocess backend's
serialisation depends on.

The link model is a :class:`~repro.simulation.costmodel.CostModel`: an
envelope of ``b`` bytes takes ``rtt/2 + b / link_bandwidth`` seconds
one-way, the same constants the analytic latency model uses — so measured
and modelled figures are directly comparable.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.transport.base import Transport
from repro.transport.codec import decode_payload, encode_payload
from repro.transport.envelope import Envelope
from repro.transport.metrics import LinkRecord, TrafficLedger

__all__ = ["InstrumentedTransport"]


class InstrumentedTransport(Transport):
    """Accounts bytes and modelled latency per link, per round."""

    name = "instrumented"

    def __init__(self, group: Any, cost_model: Any = None, ledger: Optional[TrafficLedger] = None) -> None:
        if cost_model is None:
            from repro.simulation.costmodel import CostModel

            cost_model = CostModel.paper_testbed()
        self.group = group
        self.cost_model = cost_model
        self.ledger = ledger if ledger is not None else TrafficLedger()

    def deliver(self, envelope: Envelope) -> object:
        wire = encode_payload(self.group, envelope)
        self.ledger.append(
            LinkRecord(
                round_number=envelope.round_number,
                kind=envelope.kind,
                source=envelope.source,
                destination=envelope.destination,
                num_bytes=len(wire),
                seconds=self.cost_model.link_time(len(wire)),
                chain_id=envelope.chain_id,
            )
        )
        return decode_payload(self.group, envelope.kind, wire)
