"""Wire formats for XRD messages.

Every honest user's traffic must be indistinguishable from every other
honest user's, so all formats here are fixed-size for a given deployment:

* :class:`MessageBody` — the application payload plus a one-byte kind tag
  (data / offline notice), padded to the 256-byte payload size.
* :class:`MailboxMessage` — what ultimately lands in a mailbox:
  ``recipient public key || AEnc(s, ρ, body)`` (Algorithm 1 step 2b).
* :class:`ClientSubmission` — what a user sends to the first server of a
  chain in the AHS design: the shared outer Diffie-Hellman key ``X = g^x``,
  the outer ciphertext, and the NIZK that she knows ``x`` (§6.2).
* :class:`BatchEntry` — the ``(X_i^j, c_i^j)`` pair that flows between
  servers inside a chain during mixing (§6.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.constants import (
    AEAD_TAG_SIZE,
    GROUP_ELEMENT_SIZE,
    PAYLOAD_SIZE,
    SCALAR_SIZE,
    SENDER_FIELD_SIZE,
)
from repro.crypto.aead import adec, aenc
from repro.crypto.nizk import SchnorrProof
from repro.crypto.onion import pad_payload, unpad_payload
from repro.errors import CryptoError, DecodingError

__all__ = [
    "MessageBody",
    "MailboxMessage",
    "ClientSubmission",
    "BatchEntry",
    "batch_digest",
    "mailbox_message_size",
]

#: Kind tag for an ordinary application payload.
KIND_DATA = 0
#: Kind tag for the "I have gone offline" notice carried by cover messages.
KIND_OFFLINE_NOTICE = 1
#: Kind tag for a loopback body (all-zero dummy content addressed to oneself).
KIND_LOOPBACK = 2


@dataclass(frozen=True, slots=True)
class MessageBody:
    """Application payload plus a kind tag, padded to the fixed payload size."""

    kind: int
    content: bytes

    def encode(self, size: int = PAYLOAD_SIZE) -> bytes:
        """Serialise and pad to ``size`` bytes."""
        if self.kind not in (KIND_DATA, KIND_OFFLINE_NOTICE, KIND_LOOPBACK):
            raise CryptoError(f"unknown message kind {self.kind}")
        return pad_payload(bytes([self.kind]) + self.content, size)

    @classmethod
    def decode(cls, data: bytes) -> "MessageBody":
        """Parse a padded body."""
        raw = unpad_payload(data)
        if not raw:
            raise DecodingError("message body missing kind byte")
        return cls(kind=raw[0], content=raw[1:])

    @classmethod
    def data(cls, content: bytes) -> "MessageBody":
        return cls(kind=KIND_DATA, content=content)

    @classmethod
    def offline_notice(cls) -> "MessageBody":
        return cls(kind=KIND_OFFLINE_NOTICE, content=b"")

    @classmethod
    def loopback(cls) -> "MessageBody":
        return cls(kind=KIND_LOOPBACK, content=b"")

    def is_offline_notice(self) -> bool:
        return self.kind == KIND_OFFLINE_NOTICE

    def is_loopback(self) -> bool:
        return self.kind == KIND_LOOPBACK


def mailbox_message_size(payload_size: int = PAYLOAD_SIZE) -> int:
    """Wire size of a :class:`MailboxMessage` for a given padded payload size."""
    return GROUP_ELEMENT_SIZE + payload_size + AEAD_TAG_SIZE


@dataclass(frozen=True, slots=True)
class MailboxMessage:
    """``(pk_u, AEnc(s, ρ, body))`` — the plaintext recovered by the last server."""

    recipient: bytes
    sealed_body: bytes

    @classmethod
    def seal(cls, recipient: bytes, symmetric_key: bytes, round_number: int, body: MessageBody,
             payload_size: int = PAYLOAD_SIZE) -> "MailboxMessage":
        """Encrypt ``body`` for ``recipient`` under ``symmetric_key``."""
        if len(recipient) != GROUP_ELEMENT_SIZE:
            raise CryptoError("recipient identifier must be an encoded public key")
        sealed = aenc(symmetric_key, round_number, body.encode(payload_size))
        return cls(recipient=recipient, sealed_body=sealed)

    def open(self, symmetric_key: bytes, round_number: int) -> Optional[MessageBody]:
        """Attempt to decrypt with ``symmetric_key``; return ``None`` on failure."""
        ok, plaintext = adec(symmetric_key, round_number, self.sealed_body)
        if not ok or plaintext is None:
            return None
        return MessageBody.decode(plaintext)

    def to_bytes(self) -> bytes:
        return self.recipient + self.sealed_body

    @classmethod
    def from_bytes(cls, data: bytes) -> "MailboxMessage":
        if len(data) < GROUP_ELEMENT_SIZE + AEAD_TAG_SIZE:
            raise DecodingError("mailbox message too short")
        return cls(recipient=data[:GROUP_ELEMENT_SIZE], sealed_body=data[GROUP_ELEMENT_SIZE:])

    def __len__(self) -> int:
        return len(self.recipient) + len(self.sealed_body)


@dataclass(frozen=True, slots=True)
class ClientSubmission:
    """A user's per-chain submission in the AHS design (§6.2).

    The sender identity is carried in the clear — the first server of a chain
    necessarily knows who submitted what; XRD's privacy comes from the shuffle
    breaking the link between submissions and delivered mailbox messages.
    """

    chain_id: int
    sender: str
    dh_public: bytes
    ciphertext: bytes
    proof: SchnorrProof
    cover: bool = False

    def to_bytes(self) -> bytes:
        """Serialise to the fixed layout the entry server parses.

        ``chain id (4) || sender length (2) || sender padded to
        SENDER_FIELD_SIZE || X || proof commitment || proof response ||
        ciphertext``.  The sender field is padded so every submission of a
        deployment has the same wire size regardless of who sent it.
        """
        sender_bytes = self.sender.encode()
        if len(sender_bytes) > SENDER_FIELD_SIZE:
            raise CryptoError(f"sender name exceeds {SENDER_FIELD_SIZE} bytes")
        header = self.chain_id.to_bytes(4, "big") + len(sender_bytes).to_bytes(2, "big")
        sender_field = sender_bytes + b"\x00" * (SENDER_FIELD_SIZE - len(sender_bytes))
        proof_bytes = self.proof.commitment + self.proof.response.to_bytes(SCALAR_SIZE, "little")
        return header + sender_field + self.dh_public + proof_bytes + self.ciphertext

    @classmethod
    def from_bytes(cls, data: bytes, element_size: int = GROUP_ELEMENT_SIZE) -> "ClientSubmission":
        """Parse the :meth:`to_bytes` layout (``element_size`` = encoded group element)."""
        fixed = 6 + SENDER_FIELD_SIZE + 2 * element_size + SCALAR_SIZE
        if len(data) < fixed:
            raise DecodingError("client submission too short")
        chain_id = int.from_bytes(data[:4], "big")
        sender_length = int.from_bytes(data[4:6], "big")
        if sender_length > SENDER_FIELD_SIZE:
            raise DecodingError("client submission sender length exceeds the field size")
        offset = 6
        try:
            sender = data[offset:offset + sender_length].decode()
        except UnicodeDecodeError as exc:
            raise DecodingError("client submission sender is not valid UTF-8") from exc
        offset += SENDER_FIELD_SIZE
        dh_public = data[offset:offset + element_size]
        offset += element_size
        commitment = data[offset:offset + element_size]
        offset += element_size
        response = int.from_bytes(data[offset:offset + SCALAR_SIZE], "little")
        offset += SCALAR_SIZE
        return cls(
            chain_id=chain_id,
            sender=sender,
            dh_public=dh_public,
            ciphertext=data[offset:],
            proof=SchnorrProof(commitment=commitment, response=response),
        )

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True, slots=True)
class BatchEntry:
    """The ``(X_i^j, c_i^j)`` pair passed from server ``i`` to server ``i+1``."""

    dh_public: object
    ciphertext: bytes

    def digest_material(self, group) -> bytes:
        return group.encode(self.dh_public) + self.ciphertext

    def to_bytes(self, group) -> bytes:
        """``X (element) || ciphertext length (4) || ciphertext``.

        The length prefix lets entries be concatenated into one batch blob
        (ciphertext size shrinks by one AEAD tag per hop, so it is only
        fixed *per position*, not globally).
        """
        return (
            group.encode(self.dh_public)
            + len(self.ciphertext).to_bytes(4, "big")
            + self.ciphertext
        )

    @classmethod
    def from_bytes(cls, group, data: bytes) -> "BatchEntry":
        """Parse one entry occupying the whole of ``data``."""
        entry, offset = cls.read_from(group, data, 0)
        if offset != len(data):
            raise DecodingError("trailing bytes after batch entry")
        return entry

    @classmethod
    def read_from(cls, group, data: bytes, offset: int) -> Tuple["BatchEntry", int]:
        """Parse one entry starting at ``offset``; return it and the next offset."""
        element_size = group.element_size
        if len(data) < offset + element_size + 4:
            raise DecodingError("batch entry too short")
        dh_public = group.decode(data[offset:offset + element_size])
        offset += element_size
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        if len(data) < offset + length:
            raise DecodingError("batch entry ciphertext truncated")
        return cls(dh_public=dh_public, ciphertext=data[offset:offset + length]), offset + length


def batch_digest(group, entries: Sequence[BatchEntry]) -> bytes:
    """Input-agreement digest: hash of the sorted entries (§6.3 preamble).

    All servers in a chain compare this digest before mixing starts so they
    agree on the round's input set.
    """
    hasher = hashlib.sha256()
    for material in sorted(entry.digest_material(group) for entry in entries):
        hasher.update(material)
    return hasher.digest()


def split_into_payload_chunks(data: bytes, payload_size: int = PAYLOAD_SIZE) -> List[bytes]:
    """Split an oversized application message into padded-size chunks.

    The paper requires users to break large messages into multiple fixed-size
    pieces (§4); this helper performs that split (the chunk payload budget is
    the padded size minus the 2-byte length prefix and 1-byte kind tag).
    """
    budget = payload_size - 3
    if budget <= 0:
        raise CryptoError("payload size too small to carry any data")
    if not data:
        return [b""]
    return [data[offset:offset + budget] for offset in range(0, len(data), budget)]
