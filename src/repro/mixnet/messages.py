"""Wire formats for XRD messages.

Every honest user's traffic must be indistinguishable from every other
honest user's, so all formats here are fixed-size for a given deployment:

* :class:`MessageBody` — the application payload plus a one-byte kind tag
  (data / offline notice), padded to the 256-byte payload size.
* :class:`MailboxMessage` — what ultimately lands in a mailbox:
  ``recipient public key || AEnc(s, ρ, body)`` (Algorithm 1 step 2b).
* :class:`ClientSubmission` — what a user sends to the first server of a
  chain in the AHS design: the shared outer Diffie-Hellman key ``X = g^x``,
  the outer ciphertext, and the NIZK that she knows ``x`` (§6.2).
* :class:`BatchEntry` — the ``(X_i^j, c_i^j)`` pair that flows between
  servers inside a chain during mixing (§6.3).
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.constants import (
    AEAD_TAG_SIZE,
    GROUP_ELEMENT_SIZE,
    PAYLOAD_SIZE,
    SCALAR_SIZE,
    SENDER_FIELD_SIZE,
)
from repro.crypto.aead import adec, aenc
from repro.crypto.nizk import SchnorrProof
from repro.crypto.onion import pad_payload, unpad_payload
from repro.errors import CryptoError, DecodingError

__all__ = [
    "MessageBody",
    "MailboxMessage",
    "ClientSubmission",
    "BatchEntry",
    "EncodedBatch",
    "batch_digest",
    "mailbox_message_size",
]

#: Kind tag for an ordinary application payload.
KIND_DATA = 0
#: Kind tag for the "I have gone offline" notice carried by cover messages.
KIND_OFFLINE_NOTICE = 1
#: Kind tag for a loopback body (all-zero dummy content addressed to oneself).
KIND_LOOPBACK = 2


@dataclass(frozen=True, slots=True)
class MessageBody:
    """Application payload plus a kind tag, padded to the fixed payload size."""

    kind: int
    content: bytes

    def encode(self, size: int = PAYLOAD_SIZE) -> bytes:
        """Serialise and pad to ``size`` bytes."""
        if self.kind not in (KIND_DATA, KIND_OFFLINE_NOTICE, KIND_LOOPBACK):
            raise CryptoError(f"unknown message kind {self.kind}")
        return pad_payload(bytes([self.kind]) + self.content, size)

    @classmethod
    def decode(cls, data: bytes) -> "MessageBody":
        """Parse a padded body."""
        raw = unpad_payload(data)
        if not raw:
            raise DecodingError("message body missing kind byte")
        return cls(kind=raw[0], content=raw[1:])

    @classmethod
    def data(cls, content: bytes) -> "MessageBody":
        return cls(kind=KIND_DATA, content=content)

    @classmethod
    def offline_notice(cls) -> "MessageBody":
        return cls(kind=KIND_OFFLINE_NOTICE, content=b"")

    @classmethod
    def loopback(cls) -> "MessageBody":
        return cls(kind=KIND_LOOPBACK, content=b"")

    def is_offline_notice(self) -> bool:
        return self.kind == KIND_OFFLINE_NOTICE

    def is_loopback(self) -> bool:
        return self.kind == KIND_LOOPBACK


def mailbox_message_size(payload_size: int = PAYLOAD_SIZE) -> int:
    """Wire size of a :class:`MailboxMessage` for a given padded payload size."""
    return GROUP_ELEMENT_SIZE + payload_size + AEAD_TAG_SIZE


@dataclass(frozen=True, slots=True)
class MailboxMessage:
    """``(pk_u, AEnc(s, ρ, body))`` — the plaintext recovered by the last server."""

    recipient: bytes
    sealed_body: bytes

    @classmethod
    def seal(cls, recipient: bytes, symmetric_key: bytes, round_number: int, body: MessageBody,
             payload_size: int = PAYLOAD_SIZE) -> "MailboxMessage":
        """Encrypt ``body`` for ``recipient`` under ``symmetric_key``."""
        if len(recipient) != GROUP_ELEMENT_SIZE:
            raise CryptoError("recipient identifier must be an encoded public key")
        sealed = aenc(symmetric_key, round_number, body.encode(payload_size))
        return cls(recipient=recipient, sealed_body=sealed)

    def open(self, symmetric_key: bytes, round_number: int) -> Optional[MessageBody]:
        """Attempt to decrypt with ``symmetric_key``; return ``None`` on failure."""
        ok, plaintext = adec(symmetric_key, round_number, self.sealed_body)
        if not ok or plaintext is None:
            return None
        return MessageBody.decode(plaintext)

    def to_bytes(self) -> bytes:
        return self.recipient + self.sealed_body

    @classmethod
    def from_bytes(cls, data: bytes) -> "MailboxMessage":
        if len(data) < GROUP_ELEMENT_SIZE + AEAD_TAG_SIZE:
            raise DecodingError("mailbox message too short")
        return cls(recipient=data[:GROUP_ELEMENT_SIZE], sealed_body=data[GROUP_ELEMENT_SIZE:])

    def __len__(self) -> int:
        return len(self.recipient) + len(self.sealed_body)


@dataclass(frozen=True, slots=True)
class ClientSubmission:
    """A user's per-chain submission in the AHS design (§6.2).

    The sender identity is carried in the clear — the first server of a chain
    necessarily knows who submitted what; XRD's privacy comes from the shuffle
    breaking the link between submissions and delivered mailbox messages.
    """

    chain_id: int
    sender: str
    dh_public: bytes
    ciphertext: bytes
    proof: SchnorrProof
    cover: bool = False

    def to_bytes(self) -> bytes:
        """Serialise to the fixed layout the entry server parses.

        ``chain id (4) || sender length (2) || sender padded to
        SENDER_FIELD_SIZE || X || proof commitment || proof response ||
        ciphertext``.  The sender field is padded so every submission of a
        deployment has the same wire size regardless of who sent it.
        """
        sender_bytes = self.sender.encode()
        if len(sender_bytes) > SENDER_FIELD_SIZE:
            raise CryptoError(f"sender name exceeds {SENDER_FIELD_SIZE} bytes")
        header = self.chain_id.to_bytes(4, "big") + len(sender_bytes).to_bytes(2, "big")
        sender_field = sender_bytes + b"\x00" * (SENDER_FIELD_SIZE - len(sender_bytes))
        proof_bytes = self.proof.commitment + self.proof.response.to_bytes(SCALAR_SIZE, "little")
        return header + sender_field + self.dh_public + proof_bytes + self.ciphertext

    @classmethod
    def from_bytes(cls, data: bytes, element_size: int = GROUP_ELEMENT_SIZE) -> "ClientSubmission":
        """Parse the :meth:`to_bytes` layout (``element_size`` = encoded group element)."""
        fixed = 6 + SENDER_FIELD_SIZE + 2 * element_size + SCALAR_SIZE
        if len(data) < fixed:
            raise DecodingError("client submission too short")
        chain_id = int.from_bytes(data[:4], "big")
        sender_length = int.from_bytes(data[4:6], "big")
        if sender_length > SENDER_FIELD_SIZE:
            raise DecodingError("client submission sender length exceeds the field size")
        offset = 6
        try:
            sender = data[offset:offset + sender_length].decode()
        except UnicodeDecodeError as exc:
            raise DecodingError("client submission sender is not valid UTF-8") from exc
        offset += SENDER_FIELD_SIZE
        dh_public = data[offset:offset + element_size]
        offset += element_size
        commitment = data[offset:offset + element_size]
        offset += element_size
        response = int.from_bytes(data[offset:offset + SCALAR_SIZE], "little")
        offset += SCALAR_SIZE
        return cls(
            chain_id=chain_id,
            sender=sender,
            dh_public=dh_public,
            ciphertext=data[offset:],
            proof=SchnorrProof(commitment=commitment, response=response),
        )

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True, slots=True)
class BatchEntry:
    """The ``(X_i^j, c_i^j)`` pair passed from server ``i`` to server ``i+1``."""

    dh_public: object
    ciphertext: bytes

    def digest_material(self, group) -> bytes:
        return group.encode(self.dh_public) + self.ciphertext

    def to_bytes(self, group) -> bytes:
        """``X (element) || ciphertext length (4) || ciphertext``.

        The length prefix lets entries be concatenated into one batch blob
        (ciphertext size shrinks by one AEAD tag per hop, so it is only
        fixed *per position*, not globally).
        """
        return (
            group.encode(self.dh_public)
            + len(self.ciphertext).to_bytes(4, "big")
            + self.ciphertext
        )

    @classmethod
    def from_bytes(cls, group, data: bytes) -> "BatchEntry":
        """Parse one entry occupying the whole of ``data``."""
        entry, offset = cls.read_from(group, data, 0)
        if offset != len(data):
            raise DecodingError("trailing bytes after batch entry")
        return entry

    @classmethod
    def read_from(cls, group, data: bytes, offset: int) -> Tuple["BatchEntry", int]:
        """Parse one entry starting at ``offset``; return it and the next offset."""
        element_size = group.element_size
        if len(data) < offset + element_size + 4:
            raise DecodingError("batch entry too short")
        dh_public = group.decode(data[offset:offset + element_size])
        offset += element_size
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        if len(data) < offset + length:
            raise DecodingError("batch entry ciphertext truncated")
        return cls(dh_public=dh_public, ciphertext=data[offset:offset + length]), offset + length


class EncodedBatch(Sequence):
    """A chain's round batch kept in its wire encoding (streamed mix mode).

    One contiguous blob of concatenated :meth:`BatchEntry.to_bytes` records
    plus an offset table — exactly the payload of a BATCH frame minus its
    count header.  Entries decode *on demand* through :meth:`__getitem__`,
    so holding a 100k-entry round in history costs the blob (a few MB)
    instead of 100k decoded :class:`BatchEntry`/element objects.  The blame
    protocol's random access and the history replay both read through the
    same lazy window; mixing itself uses the bulk accessors
    (:meth:`element_bytes`, :meth:`ciphertext`, :meth:`decode_publics`) to
    avoid materialising entry objects at all.

    Instances are immutable: transforms produce a new batch
    (:meth:`select`) or build one from parts (:meth:`from_parts`).
    """

    __slots__ = ("_group", "_blob", "_offsets")

    def __init__(self, group, blob: bytes, offsets: "array") -> None:
        self._group = group
        self._blob = blob
        self._offsets = offsets

    # -- construction --------------------------------------------------------

    @classmethod
    def from_entries(cls, group, entries: Iterable[BatchEntry]) -> "EncodedBatch":
        """Encode already-decoded entries (the eager path's output shape)."""
        parts: List[bytes] = []
        offsets = array("Q", [0])
        total = 0
        for entry in entries:
            record = entry.to_bytes(group)
            parts.append(record)
            total += len(record)
            offsets.append(total)
        return cls(group, b"".join(parts), offsets)

    @classmethod
    def from_parts(cls, group, element_bytes: Sequence[bytes],
                   ciphertexts: Sequence[bytes]) -> "EncodedBatch":
        """Assemble from per-entry encoded elements and ciphertexts.

        This is the zero-decode intake: ``element_bytes[i]`` must already be
        a canonical group-element encoding (``encode(decode(d)) == d`` holds
        for every encoding the group accepts, so validated wire bytes pass
        through unchanged).
        """
        parts: List[bytes] = []
        offsets = array("Q", [0])
        total = 0
        for element, ciphertext in zip(element_bytes, ciphertexts):
            parts.append(element)
            parts.append(len(ciphertext).to_bytes(4, "big"))
            parts.append(ciphertext)
            total += len(element) + 4 + len(ciphertext)
            offsets.append(total)
        return cls(group, b"".join(parts), offsets)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("batch entry index out of range")
        record = self._blob[self._offsets[index]:self._offsets[index + 1]]
        return BatchEntry.from_bytes(self._group, record)

    def __iter__(self) -> Iterator[BatchEntry]:
        for index in range(len(self)):
            yield self[index]

    # -- bulk accessors (no BatchEntry materialisation) ----------------------

    @property
    def blob(self) -> bytes:
        """The concatenated wire records (a BATCH payload minus its count)."""
        return self._blob

    def element_bytes(self, index: int) -> bytes:
        """Entry ``index``'s encoded DH element, without decoding it."""
        start = self._offsets[index]
        return self._blob[start:start + self._group.element_size]

    def ciphertext(self, index: int) -> bytes:
        start = self._offsets[index] + self._group.element_size + 4
        return self._blob[start:self._offsets[index + 1]]

    def decode_publics(self) -> List[object]:
        """Decode every entry's DH element (transient: caller drops the list)."""
        return [self._group.decode(self.element_bytes(i)) for i in range(len(self))]

    def digest_materials(self) -> List[bytes]:
        """Per-entry ``encode(X) || ciphertext`` (the digest input layout)."""
        return [
            self.element_bytes(index) + self.ciphertext(index)
            for index in range(len(self))
        ]

    def select(self, indices: Sequence[int]) -> "EncodedBatch":
        """A new batch holding the entries at ``indices``, in that order."""
        parts: List[bytes] = []
        offsets = array("Q", [0])
        total = 0
        for index in indices:
            record = self._blob[self._offsets[index]:self._offsets[index + 1]]
            parts.append(record)
            total += len(record)
            offsets.append(total)
        return EncodedBatch(self._group, b"".join(parts), offsets)


def batch_digest(group, entries: Sequence[BatchEntry]) -> bytes:
    """Input-agreement digest: hash of the sorted entries (§6.3 preamble).

    All servers in a chain compare this digest before mixing starts so they
    agree on the round's input set.
    """
    if isinstance(entries, EncodedBatch):
        materials = entries.digest_materials()
    else:
        materials = [entry.digest_material(group) for entry in entries]
    hasher = hashlib.sha256()
    for material in sorted(materials):
        hasher.update(material)
    return hasher.digest()


def split_into_payload_chunks(data: bytes, payload_size: int = PAYLOAD_SIZE) -> List[bytes]:
    """Split an oversized application message into padded-size chunks.

    The paper requires users to break large messages into multiple fixed-size
    pieces (§4); this helper performs that split (the chunk payload budget is
    the padded size minus the 2-byte length prefix and 1-byte kind tag).
    """
    budget = payload_size - 3
    if budget <= 0:
        raise CryptoError("payload size too small to carry any data")
    if not data:
        return [b""]
    return [data[offset:offset + budget] for offset in range(0, len(data), budget)]
