"""Blame protocol (§6.4).

When a server finds a ciphertext that fails authenticated decryption it
*accuses*: the flagged entry is revealed and every upstream server must, in
order, reveal the pre-image of that entry under its own processing — the
unblinded Diffie-Hellman key, the upstream ciphertext, and the decryption key
it used — each accompanied by Chaum-Pedersen proofs that the values are
consistent with its public blinding and mixing keys.  Walking the chain back
to the submission layer yields exactly one of two outcomes:

* every reveal verifies and the chain of decryptions reaches the original
  submission, in which case the *user* who submitted it is convicted (her
  outer ciphertext acts as a commitment to every layer), or
* some server's reveal fails to verify, in which case that *server* is
  convicted and the protocol halts (the honest servers then delete their
  inner keys so nothing more is learned).

Honest users are never convicted: their ciphertexts authenticate at every
layer, so an accusation against them fails at the accuser's own step 4 check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.crypto.nizk import DleqProof, verify_dleq
from repro.crypto.onion import outer_layer_key
from repro.crypto.aead import adec
from repro.errors import BlameError
from repro.mixnet.messages import BatchEntry

__all__ = ["BlameReveal", "AccuserReveal", "BlameVerdict", "run_blame_protocol"]


@dataclass(frozen=True)
class BlameReveal:
    """An upstream server's reveal for one flagged ciphertext (§6.4 steps 1-2)."""

    position: int
    input_index: int
    dh_public: object
    ciphertext: bytes
    decryption_key: object
    blinding_proof: DleqProof
    key_proof: DleqProof


@dataclass(frozen=True)
class AccuserReveal:
    """The accusing server's reveal for one flagged ciphertext (§6.4 step 4)."""

    position: int
    input_index: int
    dh_public: object
    ciphertext: bytes
    decryption_key: object
    key_proof: DleqProof


@dataclass
class BlameVerdict:
    """Outcome of the blame protocol for one round on one chain."""

    chain_id: int
    round_number: int
    malicious_users: List[str] = field(default_factory=list)
    malicious_servers: List[str] = field(default_factory=list)
    false_accusations: int = 0
    examined_ciphertexts: int = 0

    @property
    def identified(self) -> bool:
        return bool(self.malicious_users or self.malicious_servers)

    def to_bytes(self) -> bytes:
        """The verdict's wire encoding (what servers broadcast after blame).

        The multiprocess backend ships verdicts across its pipe in exactly
        this format, so eviction decisions taken by the coordinator are
        byte-identical whether the blame protocol ran in-process or in a
        forked worker.
        """
        from repro.transport.codec import encode_blame_verdict

        return encode_blame_verdict(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BlameVerdict":
        from repro.errors import DecodingError
        from repro.transport.codec import decode_blame_verdict

        verdict, offset = decode_blame_verdict(data, 0)
        if offset != len(data):
            raise DecodingError("trailing bytes after blame verdict")
        return verdict

    def summary(self) -> str:
        """One-line human-readable verdict (used by scenario reports)."""
        parts = [f"chain {self.chain_id} round {self.round_number}"]
        if self.malicious_servers:
            parts.append("servers: " + ", ".join(self.malicious_servers))
        if self.malicious_users:
            parts.append("users: " + ", ".join(self.malicious_users))
        if not self.identified:
            parts.append("nobody convicted")
        if self.false_accusations:
            parts.append(f"{self.false_accusations} false accusation(s)")
        return "; ".join(parts)


def _verify_upstream_reveal(
    group,
    chain,
    member,
    reveal: BlameReveal,
    round_number: int,
    downstream_entry: BatchEntry,
    upstream_inputs: Sequence[BatchEntry],
) -> Optional[str]:
    """Check one upstream server's reveal; return an error string if it is bad."""
    from repro.mixnet.ahs import blame_context

    context = blame_context(chain.chain_id, member.position, round_number)
    if not (0 <= reveal.input_index < len(upstream_inputs)):
        return "revealed input index out of range"
    recorded = upstream_inputs[reveal.input_index]
    if recorded.dh_public != reveal.dh_public or recorded.ciphertext != reveal.ciphertext:
        return "revealed pre-image does not match the batch this server received"
    # (1) the blinding relation X_out = bsk_i · X_in
    if not verify_dleq(
        group,
        reveal.dh_public,
        downstream_entry.dh_public,
        member.base_point,
        member.blinding_public,
        reveal.blinding_proof,
        context,
    ):
        return "blinding discrete-log-equality proof failed"
    # (2) the decryption key K = msk_i · X_in
    if not verify_dleq(
        group,
        reveal.dh_public,
        reveal.decryption_key,
        member.base_point,
        member.mixing_public,
        reveal.key_proof,
        context,
    ):
        return "decryption-key discrete-log-equality proof failed"
    # (3) decrypting the upstream ciphertext with the revealed key must yield
    #     exactly the downstream ciphertext.
    key = outer_layer_key(group, reveal.decryption_key)
    ok, plaintext = adec(key, round_number, reveal.ciphertext)
    if not ok or plaintext != downstream_entry.ciphertext:
        return "revealed ciphertext does not decrypt to the downstream ciphertext"
    return None


def run_blame_protocol(
    chain,
    round_number: int,
    accusing_position: int,
    flagged_input_indices: Sequence[int],
    history: Sequence[Sequence[BatchEntry]],
) -> BlameVerdict:
    """Run the blame protocol for every flagged ciphertext.

    ``history[i]`` is the batch that was handed to the chain member at
    position ``i`` this round; ``flagged_input_indices`` index into
    ``history[accusing_position]``.  The verdict lists the users and/or
    servers identified as malicious.  Per the paper, multiple flagged
    ciphertexts are handled independently (in a deployment they would be
    processed in parallel).
    """
    group = chain.group
    members = chain.members
    if not (0 <= accusing_position < len(members)):
        raise BlameError("accusing position out of range")
    if len(history) <= accusing_position:
        raise BlameError("history does not cover the accusing position")
    submissions = chain.submissions_for_round(round_number)
    verdict = BlameVerdict(chain_id=chain.chain_id, round_number=round_number)
    accuser = members[accusing_position]

    for flagged in flagged_input_indices:
        verdict.examined_ciphertexts += 1
        if not (0 <= flagged < len(history[accusing_position])):
            raise BlameError("flagged index out of range")

        # Step 4 first (cheap): the accuser must demonstrate that the flagged
        # ciphertext really fails to authenticate under the correct key.
        from repro.mixnet.ahs import blame_context

        accuser_context = blame_context(chain.chain_id, accuser.position, round_number)
        flagged_entry = history[accusing_position][flagged]
        try:
            accuser_reveal = accuser.reveal_decryption_key(round_number, flagged)
        except Exception:
            accuser_reveal = None
        accusation_valid = (
            accuser_reveal is not None
            and accuser_reveal.dh_public == flagged_entry.dh_public
            and accuser_reveal.ciphertext == flagged_entry.ciphertext
            and verify_dleq(
                group,
                accuser_reveal.dh_public,
                accuser_reveal.decryption_key,
                accuser.base_point,
                accuser.mixing_public,
                accuser_reveal.key_proof,
                accuser_context,
            )
        )
        if accusation_valid:
            key = outer_layer_key(group, accuser_reveal.decryption_key)
            ok, _ = adec(key, round_number, accuser_reveal.ciphertext)
            if ok:
                accusation_valid = False
        if not accusation_valid:
            # The accusation itself does not hold up: the accuser is lying or
            # refused to reveal a consistent key.  Honest users stay safe.
            verdict.false_accusations += 1
            if accuser.server_name not in verdict.malicious_servers:
                verdict.malicious_servers.append(accuser.server_name)
            continue

        # Walk upstream from the accuser towards the submission layer.
        downstream_index = flagged
        downstream_entry = flagged_entry
        culprit_server: Optional[str] = None
        for position in range(accusing_position - 1, -1, -1):
            member = members[position]
            try:
                reveal = member.blame_reveal(round_number, downstream_index)
            except Exception:
                culprit_server = member.server_name
                break
            error = _verify_upstream_reveal(
                group,
                chain,
                member,
                reveal,
                round_number,
                downstream_entry,
                history[position],
            )
            if error is not None:
                culprit_server = member.server_name
                break
            downstream_index = reveal.input_index
            downstream_entry = history[position][reveal.input_index]

        if culprit_server is not None:
            if culprit_server not in verdict.malicious_servers:
                verdict.malicious_servers.append(culprit_server)
            continue

        # The chain of reveals reached the submission layer: the original
        # submitter of this ciphertext produced a ciphertext that does not
        # authenticate at the accuser — she is actively malicious.
        if downstream_index < len(submissions):
            sender = submissions[downstream_index].sender
            if sender not in verdict.malicious_users:
                verdict.malicious_users.append(sender)
        else:  # pragma: no cover - defensive; submissions and entries stay aligned
            raise BlameError("flagged ciphertext could not be traced to a submission")

    return verdict
