"""Baseline mix server (Algorithm 1) — the §5 design without AHS.

This is the decrypt-and-shuffle server of the base XRD design: it protects
against honest-but-curious adversaries but offers no protection against
active tampering (that is what the aggregate hybrid shuffle in
:mod:`repro.mixnet.ahs` adds).  It is retained both as a faithful
reproduction of §5 and as the "no verification" arm of the ablation
benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.onion import decrypt_baseline_layer
from repro.errors import ProtocolError
from repro.mixnet.messages import MailboxMessage

__all__ = ["BaselineMixServer", "BaselineMixChain", "BaselineRoundResult"]


class BaselineMixServer:
    """A single mix server with an independent mixing key pair (Algorithm 1)."""

    def __init__(self, server_name: str, group, rng: Optional[random.Random] = None) -> None:
        self.server_name = server_name
        self.group = group
        # xrdlint: disable=XRD101 - CSPRNG is the production default; seeded runs pass rng
        self._rng = rng or random.SystemRandom()
        self.mixing_secret = group.random_scalar(self._rng)
        self.mixing_public = group.base_mult(self.mixing_secret)

    def process(self, round_number: int, ciphertexts: Sequence[bytes]) -> Tuple[List[bytes], List[int]]:
        """Decrypt one onion layer from each ciphertext and shuffle the results.

        Returns the shuffled next-layer ciphertexts and the indices of inputs
        whose decryption failed (which the baseline design simply drops —
        precisely the behaviour the paper shows is exploitable, see
        ``tests/test_baseline_attack.py``).
        """
        decrypted: List[bytes] = []
        failed: List[int] = []
        for index, ciphertext in enumerate(ciphertexts):
            ok, plaintext = decrypt_baseline_layer(
                self.group, self.mixing_secret, round_number, ciphertext
            )
            if not ok or plaintext is None:
                failed.append(index)
                continue
            decrypted.append(plaintext)
        self._rng.shuffle(decrypted)
        return decrypted, failed


@dataclass
class BaselineRoundResult:
    """Outcome of one round on a baseline (non-AHS) chain."""

    chain_id: int
    round_number: int
    mailbox_messages: List[MailboxMessage] = field(default_factory=list)
    dropped: int = 0
    malformed: int = 0


class BaselineMixChain:
    """A chain of :class:`BaselineMixServer` instances (the §5 base design)."""

    def __init__(self, chain_id: int, servers: Sequence[BaselineMixServer], group) -> None:
        if not servers:
            raise ProtocolError("a chain needs at least one server")
        self.chain_id = chain_id
        self.servers = list(servers)
        self.group = group

    def __len__(self) -> int:
        return len(self.servers)

    def mixing_public_keys(self) -> List[object]:
        """Public mixing keys in chain order, for users to onion-encrypt with."""
        return [server.mixing_public for server in self.servers]

    def run_round(self, round_number: int, ciphertexts: Sequence[bytes]) -> BaselineRoundResult:
        """Run Algorithm 1 over the submitted onions and parse the final plaintexts."""
        current = list(ciphertexts)
        dropped = 0
        for server in self.servers:
            current, failed = server.process(round_number, current)
            dropped += len(failed)
        messages: List[MailboxMessage] = []
        malformed = 0
        for plaintext in current:
            try:
                messages.append(MailboxMessage.from_bytes(plaintext))
            except Exception:
                malformed += 1
        return BaselineRoundResult(
            chain_id=self.chain_id,
            round_number=round_number,
            mailbox_messages=messages,
            dropped=dropped,
            malformed=malformed,
        )
