"""Anytrust chain formation (§5.2.1).

XRD guarantees privacy as long as every chain contains at least one honest
server.  Chains are sampled from a public randomness beacon; the chain length
``k`` is chosen so that the probability that *any* of the ``n`` chains is
fully malicious is below ``2^-λ`` (a union bound over chains).  Servers that
appear in multiple chains are *staggered* — placed at different positions in
different chains — to keep every server busy throughout a round rather than
idling while upstream chains work (§5.2.1, last paragraph).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.constants import CHAIN_SECURITY_BITS, DEFAULT_MALICIOUS_FRACTION
from repro.crypto.randomness import PublicRandomnessBeacon
from repro.errors import ConfigurationError

__all__ = [
    "required_chain_length",
    "chain_compromise_probability",
    "ChainTopology",
    "form_chains",
    "stagger_positions",
    "server_load",
]


def chain_compromise_probability(malicious_fraction: float, chain_length: int, num_chains: int) -> float:
    """Union-bound probability that at least one chain is entirely malicious."""
    if not 0.0 <= malicious_fraction < 1.0:
        raise ConfigurationError("malicious fraction must be in [0, 1)")
    if chain_length < 1 or num_chains < 1:
        raise ConfigurationError("chain length and chain count must be positive")
    return min(1.0, num_chains * malicious_fraction ** chain_length)


def required_chain_length(
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    num_chains: int = 100,
    security_bits: int = CHAIN_SECURITY_BITS,
) -> int:
    """Smallest ``k`` with ``n · f^k ≤ 2^-λ`` (§5.2.1).

    For ``f = 0``, a single server suffices.  The paper's example: with
    ``f = 0.2`` and fewer than 6000 chains, ``k`` comes out around 32-33 for
    ``λ = 64``; the value depends only logarithmically on ``n``.
    """
    if not 0.0 <= malicious_fraction < 1.0:
        raise ConfigurationError("malicious fraction must be in [0, 1)")
    if num_chains < 1:
        raise ConfigurationError("number of chains must be positive")
    if security_bits < 0:
        raise ConfigurationError("security bits must be non-negative")
    if malicious_fraction == 0.0:
        return 1
    # k > (λ + log2(n)) / log2(1/f)
    numerator = security_bits + math.log2(num_chains)
    denominator = -math.log2(malicious_fraction)
    return max(1, math.ceil(numerator / denominator))


@dataclass
class ChainTopology:
    """The public description of one mix chain: an ordered list of server names."""

    chain_id: int
    servers: List[str]

    def __len__(self) -> int:
        return len(self.servers)

    def position_of(self, server: str) -> int:
        """0-based position of ``server`` in this chain."""
        return self.servers.index(server)

    def __contains__(self, server: str) -> bool:
        return server in self.servers


def form_chains(
    server_names: Sequence[str],
    num_chains: int,
    chain_length: int,
    beacon: Optional[PublicRandomnessBeacon] = None,
    epoch: int = 0,
    stagger: bool = True,
) -> List[ChainTopology]:
    """Sample ``num_chains`` chains of ``chain_length`` servers each.

    Sampling is without replacement *within* a chain (a server appears at
    most once per chain) and uses the public randomness beacon so every
    participant derives the same topology.  When ``stagger`` is set the
    per-chain orderings are rebalanced so that servers which appear in many
    chains occupy different positions in each.
    """
    servers = list(server_names)
    if len(set(servers)) != len(servers):
        raise ConfigurationError("server names must be unique")
    if chain_length > len(servers):
        raise ConfigurationError(
            f"chain length {chain_length} exceeds the number of servers {len(servers)}"
        )
    if num_chains < 1:
        raise ConfigurationError("number of chains must be positive")
    beacon = beacon or PublicRandomnessBeacon()
    chains = []
    for chain_id in range(num_chains):
        members = beacon.sample_without_replacement(
            epoch, servers, chain_length, purpose=f"chain-{chain_id}"
        )
        chains.append(ChainTopology(chain_id=chain_id, servers=list(members)))
    if stagger:
        chains = stagger_positions(chains)
    return chains


def stagger_positions(chains: Sequence[ChainTopology]) -> List[ChainTopology]:
    """Reorder servers within each chain to balance per-position load.

    Greedy heuristic: for each chain (in order) and each position, choose the
    not-yet-placed member that has been assigned to that position the fewest
    times so far.  This has no security impact — anytrust only needs *some*
    honest member — but maximises pipeline utilisation (§5.2.1).
    """
    position_counts: Dict[int, Dict[str, int]] = {}
    staggered = []
    for chain in chains:
        remaining = list(chain.servers)
        ordered: List[str] = []
        for position in range(len(remaining)):
            counts = position_counts.setdefault(position, {})
            # Pick the remaining server least used at this position; break
            # ties by name for determinism.
            choice = min(remaining, key=lambda name: (counts.get(name, 0), name))
            ordered.append(choice)
            remaining.remove(choice)
            counts[choice] = counts.get(choice, 0) + 1
        staggered.append(ChainTopology(chain_id=chain.chain_id, servers=ordered))
    return staggered


def server_load(chains: Sequence[ChainTopology]) -> Dict[str, int]:
    """Number of chains each server participates in (``k`` on average when n = N)."""
    load: Dict[str, int] = {}
    for chain in chains:
        for server in chain.servers:
            load[server] = load.get(server, 0) + 1
    return load


def position_histogram(chains: Sequence[ChainTopology]) -> Dict[str, List[int]]:
    """Per-server histogram of chain positions (used to test staggering)."""
    histogram: Dict[str, List[int]] = {}
    if not chains:
        return histogram
    length = len(chains[0])
    for chain in chains:
        for position, server in enumerate(chain.servers):
            histogram.setdefault(server, [0] * length)[position] += 1
    return histogram
