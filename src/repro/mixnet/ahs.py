"""Aggregate hybrid shuffle (AHS) — §6 of the paper.

The module implements the three phases of the protocol:

1. **Key generation** (§6.1): the servers of a chain generate, in order,
   long-term *blinding* keys ``bpk_i = bsk_i · bpk_{i-1}`` and *mixing* keys
   ``mpk_i = msk_i · bpk_{i-1}`` (with ``bpk_0 = g``), plus per-round *inner*
   keys ``ipk_i = isk_i · g``.  Each key comes with a NIZK of knowledge of
   its secret.
2. **Mixing** (§6.3): each server removes one authenticated outer layer from
   every message, *blinds* the accompanying Diffie-Hellman key with its
   blinding secret, shuffles both with the same permutation, and publishes a
   Chaum-Pedersen proof that the aggregate of its output keys equals the
   aggregate of its input keys raised to its blinding key.  Any
   authentication failure halts mixing and triggers the blame protocol.
3. **Inner-key reveal**: once every proof has verified, the servers reveal
   their per-round inner secrets and the last server opens the inner
   envelopes, recovering the mailbox messages.

The shuffle is "hybrid" (§5.2.1) because the expensive public-key half of
the mixing phase — blinding every DH key, deriving every outer layer key —
depends only on the DH publics, which are known before the online phase
begins.  :meth:`ChainMember.precompute_round` runs exactly those two passes
ahead of time and caches the results in the round record, leaving
:meth:`ChainMember.process_round`'s online phase as symmetric crypto (AEAD
opens + shuffle) plus the aggregate DLEQ proof.

The classes here model *honest* behaviour; adversarial servers for tests and
experiments live in :mod:`repro.coordinator.adversary` and override the
relevant methods.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.nizk import (
    DleqProof,
    SchnorrProof,
    prove_dleq,
    prove_dlog,
    verify_dleq,
    verify_dlog,
)
from repro.crypto.aead import adec_batch
from repro.crypto.group import scalar_mult_batch
from repro.crypto.onion import (
    InnerEnvelope,
    decrypt_inner_batch,
    outer_layer_key,
)
from repro.errors import ProofError, ProtocolError
from repro.mixnet.messages import (
    BatchEntry,
    ClientSubmission,
    EncodedBatch,
    MailboxMessage,
    batch_digest,
)
from repro.transport.envelope import BATCH, Envelope
from repro.transport.inproc import InProcTransport

__all__ = [
    "ChainPublicKeys",
    "MemberSetupBundle",
    "InnerKeyAnnouncement",
    "MixStepResult",
    "ChainMember",
    "MixChain",
    "ChainRoundResult",
    "submission_context",
    "setup_context",
    "mixing_context",
]


def setup_context(chain_id: int, position: int) -> bytes:
    """Fiat-Shamir context for the long-term key ceremony."""
    return b"xrd/setup|" + chain_id.to_bytes(4, "big") + position.to_bytes(2, "big")


def inner_key_context(chain_id: int, position: int, round_number: int) -> bytes:
    """Fiat-Shamir context for per-round inner key announcements."""
    return (
        b"xrd/inner-key|"
        + chain_id.to_bytes(4, "big")
        + position.to_bytes(2, "big")
        + round_number.to_bytes(8, "big")
    )


def mixing_context(chain_id: int, position: int, round_number: int) -> bytes:
    """Fiat-Shamir context for the aggregate blinding proof of one mix step."""
    return (
        b"xrd/mix-step|"
        + chain_id.to_bytes(4, "big")
        + position.to_bytes(2, "big")
        + round_number.to_bytes(8, "big")
    )


def submission_context(chain_id: int, round_number: int, sender: str) -> bytes:
    """Fiat-Shamir context binding a client submission to (chain, round, sender)."""
    return (
        b"xrd/submission|"
        + chain_id.to_bytes(4, "big")
        + round_number.to_bytes(8, "big")
        + sender.encode()
    )


def blame_context(chain_id: int, position: int, round_number: int) -> bytes:
    """Fiat-Shamir context for blame-protocol reveals."""
    return (
        b"xrd/blame|"
        + chain_id.to_bytes(4, "big")
        + position.to_bytes(2, "big")
        + round_number.to_bytes(8, "big")
    )


@dataclass
class ChainPublicKeys:
    """Public key material of a chain, distributed to every user and server."""

    chain_id: int
    base_points: List[object]
    blinding_publics: List[object]
    mixing_publics: List[object]

    @property
    def length(self) -> int:
        return len(self.mixing_publics)


@dataclass(frozen=True)
class MemberSetupBundle:
    """One server's contribution to the key ceremony, with proofs of knowledge."""

    position: int
    blinding_public: object
    mixing_public: object
    blinding_proof: SchnorrProof
    mixing_proof: SchnorrProof


@dataclass(frozen=True)
class InnerKeyAnnouncement:
    """One server's per-round inner public key and proof of knowledge."""

    position: int
    inner_public: object
    proof: SchnorrProof


@dataclass
class MixStepResult:
    """Output of one server's decrypt–blind–shuffle step."""

    position: int
    entries: List[BatchEntry]
    proof: Optional[DleqProof]
    failed_indices: List[int] = field(default_factory=list)

    @property
    def halted(self) -> bool:
        return bool(self.failed_indices)


@dataclass(frozen=True, slots=True)
class _AcceptedSender:
    """Sender-only stand-in for an accepted submission in streamed mix mode.

    The only field the retained submission list is ever read for after
    acceptance is ``sender`` (blame attribution and the rerun filter), so
    streamed intake keeps these stubs instead of whole submissions —
    dropping the per-user ciphertext/proof bytes from the retained set.
    """

    sender: str


@dataclass
class _RoundRecord:
    """Private per-round state a member keeps for verification and blame.

    In streamed mix mode ``inputs``/``outputs`` hold
    :class:`~repro.mixnet.messages.EncodedBatch` instances — same sequence
    interface, wire-encoded residency — instead of entry lists.
    """

    inputs: Sequence[BatchEntry] = field(default_factory=list)
    outputs: Sequence[BatchEntry] = field(default_factory=list)
    permutation: List[int] = field(default_factory=list)
    inner_secret: Optional[int] = field(default=None, repr=False)
    inner_public: Optional[object] = None
    failed_indices: List[int] = field(default_factory=list)
    rng: Optional[random.Random] = None
    #: Precomputed public-key work (§5.2.1): encoded DH public →
    #: ``(blinded key, outer layer key)``.  ``None`` means no precompute ran
    #: for the round and the online path takes the straight batched passes.
    #: Keyed by encoding (not batch index) so the table survives shuffles,
    #: rejected submissions, and the rerun-after-blame entry removal.
    precomputed: Optional[Dict[bytes, tuple]] = None


class ChainMember:
    """One server's state and behaviour within one chain.

    A physical server participating in ``k`` chains holds ``k`` independent
    ``ChainMember`` instances, one per chain, each with its own key material
    and position.
    """

    def __init__(
        self,
        server_name: str,
        chain_id: int,
        position: int,
        group,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.server_name = server_name
        self.chain_id = chain_id
        self.position = position
        self.group = group
        # xrdlint: disable=XRD101 - CSPRNG is the production default; seeded runs pass rng
        self._rng = rng or random.SystemRandom()
        # Per-round randomness is derived from a seed drawn once at
        # construction, so every (member, round) pair owns an independent
        # stream.  This is what lets the engine mix chains concurrently and
        # stagger rounds while staying bit-identical to serial execution:
        # no draw order across chains or rounds can change any output.  When
        # no deterministic rng was supplied, rounds keep using the OS CSPRNG
        # directly.
        self._deterministic = rng is not None
        self._round_seed_base = self._rng.getrandbits(256) if self._deterministic else None
        self.base_point = None
        self.blinding_secret: Optional[int] = None
        self.blinding_public = None
        self.mixing_secret: Optional[int] = None
        self.mixing_public = None
        self._rounds: Dict[int, _RoundRecord] = {}

    def _round_rng(self, round_number: int) -> random.Random:
        """The member's independent randomness stream for one round."""
        if not self._deterministic:
            return self._rng
        record = self._rounds.setdefault(round_number, _RoundRecord())
        if record.rng is None:
            record.rng = random.Random((self._round_seed_base << 64) | round_number)
        return record.rng

    # -- key ceremony ---------------------------------------------------------

    def generate_long_term_keys(self, base_point) -> MemberSetupBundle:
        """Generate blinding and mixing keys on ``base_point`` (= ``bpk_{i-1}``)."""
        group = self.group
        self.base_point = base_point
        self.blinding_secret = group.random_scalar(self._rng)
        self.mixing_secret = group.random_scalar(self._rng)
        self.blinding_public = group.scalar_mult(base_point, self.blinding_secret)
        self.mixing_public = group.scalar_mult(base_point, self.mixing_secret)
        context = setup_context(self.chain_id, self.position)
        return MemberSetupBundle(
            position=self.position,
            blinding_public=self.blinding_public,
            mixing_public=self.mixing_public,
            blinding_proof=prove_dlog(group, base_point, self.blinding_secret, context, self._rng),
            mixing_proof=prove_dlog(group, base_point, self.mixing_secret, context, self._rng),
        )

    # -- per-round inner keys --------------------------------------------------

    def begin_round(self, round_number: int) -> InnerKeyAnnouncement:
        """Generate this round's inner key pair and announce the public part."""
        group = self.group
        rng = self._round_rng(round_number)
        record = self._rounds.setdefault(round_number, _RoundRecord())
        record.inner_secret = group.random_scalar(rng)
        record.inner_public = group.base_mult(record.inner_secret)
        context = inner_key_context(self.chain_id, self.position, round_number)
        proof = prove_dlog(group, group.base(), record.inner_secret, context, rng)
        return InnerKeyAnnouncement(position=self.position, inner_public=record.inner_public, proof=proof)

    # -- precomputation (§5.2.1) -------------------------------------------------

    def precompute_round(self, round_number: int, dh_publics: Sequence[object]) -> List[object]:
        """Run the round's public-key work ahead of time and cache the results.

        Both expensive passes of :meth:`process_round` — blinding every DH
        key with the blinding secret and deriving every outer layer key from
        the mixing secret — depend only on the DH publics, which are known
        before the online phase (§5.2.1: the hybrid shuffle is "hybrid"
        precisely so this work can run during idle time).  The results are
        cached in the round record keyed by encoded public, and the blinded
        keys are returned in input order so a chain can cascade the
        precompute through its members (member *i*'s blinded outputs are
        member *i + 1*'s inputs; the intervening shuffle only permutes the
        batch, which a keyed table is insensitive to).

        Idempotent and incremental: already-cached publics are not
        recomputed, so late top-ups (deferred users, injected submissions)
        only pay for the new entries.  Pure-deterministic: no randomness is
        drawn, so running it — or not — never changes any round output.
        """
        if self.mixing_secret is None or self.blinding_secret is None:
            raise ProtocolError("chain member has not completed key setup")
        group = self.group
        record = self._rounds.setdefault(round_number, _RoundRecord())
        table = record.precomputed
        if table is None:
            table = record.precomputed = {}
        encodings = [group.encode(public) for public in dh_publics]
        missing = [index for index, key in enumerate(encodings) if key not in table]
        if missing:
            fresh = [dh_publics[index] for index in missing]
            blinded = scalar_mult_batch(group, fresh, self.blinding_secret)
            shared = scalar_mult_batch(group, fresh, self.mixing_secret)
            for index, blinded_key, shared_element in zip(missing, blinded, shared):
                table[encodings[index]] = (blinded_key, outer_layer_key(group, shared_element))
        return [table[key][0] for key in encodings]

    def invalidate_precompute(self, round_number: Optional[int] = None) -> None:
        """Drop cached precompute tables (for one round, or every round).

        Called when the key material the tables were derived from stops
        being valid — in particular when a chain is re-formed after a blame
        eviction, where the fresh ceremony replaces every member secret.
        """
        if round_number is not None:
            record = self._rounds.get(round_number)
            if record is not None:
                record.precomputed = None
            return
        for record in self._rounds.values():
            record.precomputed = None

    def _blind_and_derive_keys(
        self, round_number: int, dh_publics: Sequence[object]
    ) -> Tuple[List[object], List[bytes]]:
        """The two public-key passes of the mix step, precomputed or fresh.

        With a precompute table the passes become table lookups (topping up
        any entries the precompute phase missed); without one this is the
        straight batched reference path.  Values are bit-identical either
        way — ``scalar_mult`` is deterministic — which is what the
        precompute parity matrix asserts.
        """
        group = self.group
        record = self._rounds.setdefault(round_number, _RoundRecord())
        if record.precomputed is None:
            # Batched blinding fast path: every DH key is multiplied by the
            # same blinding secret, so the scalar is recoded once for the
            # whole batch; the per-entry shared elements for layer removal
            # are one many-points-one-scalar pass over the mixing secret.
            blinded_keys = scalar_mult_batch(group, dh_publics, self.blinding_secret)
            shared_elements = scalar_mult_batch(group, dh_publics, self.mixing_secret)
            return blinded_keys, [outer_layer_key(group, shared) for shared in shared_elements]
        table = record.precomputed
        encodings = [group.encode(public) for public in dh_publics]
        missing = [public for public, key in zip(dh_publics, encodings) if key not in table]
        if missing:  # entries the precompute phase could not see; compute inline
            self.precompute_round(round_number, missing)
        return (
            [table[key][0] for key in encodings],
            [table[key][1] for key in encodings],
        )

    # -- mixing -----------------------------------------------------------------

    def process_round(self, round_number: int, entries: Sequence[BatchEntry]) -> MixStepResult:
        """Decrypt one layer, blind the DH keys, shuffle, and prove (§6.3 steps 1-3).

        The public-key work (blinding, layer-key derivation) is served from
        the precompute table when :meth:`precompute_round` ran for this
        round, leaving the online phase as AEAD opens + shuffle + the
        aggregate proof; otherwise both batched passes run inline.

        When ``entries`` is an :class:`~repro.mixnet.messages.EncodedBatch`
        the step runs in **streamed intake** mode: submissions decode from
        their wire records on demand, the decoded publics and opened
        plaintexts live only inside this call, and both the retained input
        record and the output batch stay wire-encoded (decode →
        outer-strip → re-encode survivor).  Every output byte is identical
        to the eager path — only residency changes.
        """
        if self.mixing_secret is None or self.blinding_secret is None:
            raise ProtocolError("chain member has not completed key setup")
        group = self.group
        rng = self._round_rng(round_number)
        record = self._rounds.setdefault(round_number, _RoundRecord())
        streamed = isinstance(entries, EncodedBatch)
        if streamed:
            record.inputs = entries  # immutable, blob-backed: no copy
            dh_publics = entries.decode_publics()
            ciphertexts = [entries.ciphertext(index) for index in range(len(entries))]
        else:
            record.inputs = list(entries)
            dh_publics = [entry.dh_public for entry in entries]
            ciphertexts = [entry.ciphertext for entry in entries]
        blinded_keys, layer_keys = self._blind_and_derive_keys(round_number, dh_publics)
        # The authenticated opens run as one keystream batch; per-entry
        # results are identical to decrypt_outer_layer.
        opened = adec_batch(layer_keys, round_number, ciphertexts)
        stripped: List[bytes] = []
        failed: List[int] = []
        for index, (ok, next_ciphertext) in enumerate(opened):
            if not ok:
                failed.append(index)
                next_ciphertext = b""
            stripped.append(next_ciphertext or b"")
        if failed:
            record.failed_indices = failed
            return MixStepResult(position=self.position, entries=[], proof=None, failed_indices=failed)
        permutation = list(range(len(stripped)))
        rng.shuffle(permutation)
        if streamed:
            # Re-encode the survivors straight into the next wire blob; the
            # decoded publics, blinded points, and plaintext list all die
            # with this frame.
            outputs: Sequence[BatchEntry] = EncodedBatch.from_parts(
                group,
                [group.encode(blinded_keys[source]) for source in permutation],
                [stripped[source] for source in permutation],
            )
        else:
            outputs = [
                BatchEntry(dh_public=blinded_keys[source], ciphertext=stripped[source])
                for source in permutation
            ]
        record.permutation = permutation
        record.outputs = outputs
        proof = prove_dleq(
            group,
            base1=group.sum(dh_publics) if dh_publics else group.identity(),
            base2=self.base_point,
            secret=self.blinding_secret,
            context=mixing_context(self.chain_id, self.position, round_number),
            rng=rng,
        )
        return MixStepResult(position=self.position, entries=outputs, proof=proof)

    # -- inner key reveal --------------------------------------------------------

    def reveal_inner_secret(self, round_number: int) -> int:
        """Reveal this round's inner secret once mixing has been verified."""
        record = self._rounds.get(round_number)
        if record is None or record.inner_secret is None:
            raise ProtocolError("no inner key was generated for this round")
        return record.inner_secret

    def delete_inner_secret(self, round_number: int) -> None:
        """Forget the round's inner secret (executed when the blame protocol fails)."""
        record = self._rounds.get(round_number)
        if record is not None:
            record.inner_secret = None

    # -- blame support -------------------------------------------------------------

    def output_to_input_index(self, round_number: int, output_index: int) -> int:
        """Map an index in this member's output batch to the corresponding input index."""
        record = self._rounds[round_number]
        return record.permutation[output_index]

    def round_record(self, round_number: int) -> _RoundRecord:
        """Access the private round record (used by the blame protocol and tests)."""
        return self._rounds[round_number]

    def blame_reveal(self, round_number: int, output_index: int):
        """Reveal the pre-image of one output entry with proofs (§6.4 steps 1-2)."""
        from repro.mixnet.blame import BlameReveal  # local import to avoid a cycle

        group = self.group
        rng = self._round_rng(round_number)
        record = self._rounds[round_number]
        input_index = record.permutation[output_index]
        entry = record.inputs[input_index]
        context = blame_context(self.chain_id, self.position, round_number)
        blinding_proof = prove_dleq(
            group, entry.dh_public, self.base_point, self.blinding_secret, context, rng
        )
        decryption_key = group.scalar_mult(entry.dh_public, self.mixing_secret)
        key_proof = prove_dleq(
            group, entry.dh_public, self.base_point, self.mixing_secret, context, rng
        )
        return BlameReveal(
            position=self.position,
            input_index=input_index,
            dh_public=entry.dh_public,
            ciphertext=entry.ciphertext,
            decryption_key=decryption_key,
            blinding_proof=blinding_proof,
            key_proof=key_proof,
        )

    def reveal_decryption_key(self, round_number: int, input_index: int):
        """Reveal the decryption key for one of this member's *input* entries.

        Used by the accusing server in blame step 4 to demonstrate that the
        flagged ciphertext does not authenticate under the correct key.
        """
        from repro.mixnet.blame import AccuserReveal  # local import to avoid a cycle

        group = self.group
        rng = self._round_rng(round_number)
        record = self._rounds[round_number]
        entry = record.inputs[input_index]
        context = blame_context(self.chain_id, self.position, round_number)
        decryption_key = group.scalar_mult(entry.dh_public, self.mixing_secret)
        key_proof = prove_dleq(
            group, entry.dh_public, self.base_point, self.mixing_secret, context, rng
        )
        return AccuserReveal(
            position=self.position,
            input_index=input_index,
            dh_public=entry.dh_public,
            ciphertext=entry.ciphertext,
            decryption_key=decryption_key,
            key_proof=key_proof,
        )


@dataclass
class ChainRoundResult:
    """Outcome of one round on one chain."""

    chain_id: int
    round_number: int
    status: str
    mailbox_messages: List[MailboxMessage] = field(default_factory=list)
    blame_verdict: Optional[object] = None
    misbehaving_server: Optional[str] = None
    rejected_senders: List[str] = field(default_factory=list)
    invalid_inner_count: int = 0
    input_digest: bytes = b""

    STATUS_DELIVERED = "delivered"
    STATUS_HALTED_SERVER = "halted-server-misbehaviour"
    STATUS_HALTED_BLAME = "halted-blame"

    @property
    def delivered(self) -> bool:
        return self.status == self.STATUS_DELIVERED


class MixChain:
    """A full anytrust chain: key ceremony, round orchestration, verification.

    In a real deployment every server verifies every other server's proofs
    and the one honest server guarantees detection.  The simulation performs
    each verification once on behalf of all members — equivalent in outcome,
    since XRD's guarantees only require that *some* verifier is honest.
    """

    def __init__(
        self, chain_id: int, members: Sequence[ChainMember], group, transport=None,
        stream_mix: bool = False,
    ) -> None:
        if not members:
            raise ProtocolError("a chain needs at least one member")
        self.chain_id = chain_id
        self.members = list(members)
        self.group = group
        #: Carries the batch hand-offs between consecutive members (§6.3);
        #: the deployment wires one shared transport into every chain.
        self.transport = transport if transport is not None else InProcTransport()
        #: Streamed intake (DESIGN.md §11.3): round batches stay in their
        #: wire encoding (one blob per hop) and the retained submission
        #: list shrinks to sender-only stubs.  Outputs are bit-identical to
        #: the eager mode; only memory residency changes.
        self.stream_mix = stream_mix
        self.public_keys: Optional[ChainPublicKeys] = None
        self._inner_publics: Dict[int, List[object]] = {}
        self._aggregate_inner: Dict[int, object] = {}
        self._submissions: Dict[int, List[ClientSubmission]] = {}
        self._entries: Dict[int, Sequence[BatchEntry]] = {}
        self._history: Dict[int, List[Sequence[BatchEntry]]] = {}

    def __len__(self) -> int:
        return len(self.members)

    # -- setup ---------------------------------------------------------------

    def setup(self) -> ChainPublicKeys:
        """Run the ordered key ceremony of §6.1, verifying every proof."""
        group = self.group
        base_points = []
        blinding_publics = []
        mixing_publics = []
        base = group.base()
        for member in self.members:
            bundle = member.generate_long_term_keys(base)
            context = setup_context(self.chain_id, member.position)
            if not verify_dlog(group, base, bundle.blinding_public, bundle.blinding_proof, context):
                raise ProofError(
                    f"server {member.server_name} failed to prove knowledge of its blinding key"
                )
            if not verify_dlog(group, base, bundle.mixing_public, bundle.mixing_proof, context):
                raise ProofError(
                    f"server {member.server_name} failed to prove knowledge of its mixing key"
                )
            base_points.append(base)
            blinding_publics.append(bundle.blinding_public)
            mixing_publics.append(bundle.mixing_public)
            base = bundle.blinding_public
        self.public_keys = ChainPublicKeys(
            chain_id=self.chain_id,
            base_points=base_points,
            blinding_publics=blinding_publics,
            mixing_publics=mixing_publics,
        )
        return self.public_keys

    # -- per-round flow ---------------------------------------------------------

    def begin_round(self, round_number: int):
        """Collect and verify every member's inner key announcement; return Σ ipk."""
        group = self.group
        publics = []
        for member in self.members:
            announcement = member.begin_round(round_number)
            context = inner_key_context(self.chain_id, member.position, round_number)
            if not verify_dlog(group, group.base(), announcement.inner_public, announcement.proof, context):
                raise ProofError(
                    f"server {member.server_name} failed to prove knowledge of its inner key"
                )
            publics.append(announcement.inner_public)
        self._inner_publics[round_number] = publics
        aggregate = group.sum(publics)
        self._aggregate_inner[round_number] = aggregate
        return aggregate

    def precompute_round(self, round_number: int, dh_publics: Sequence[object]) -> None:
        """Precompute every member's public-key work for the round (§5.2.1).

        ``dh_publics`` are the (decoded) DH keys of the submissions expected
        in the round's batch.  The precompute cascades down the chain:
        member 0 blinds the original publics, and each member's blinded
        outputs are the next member's inputs — exactly the keys it will see
        online, up to the predecessor's shuffle, which the members' keyed
        tables are insensitive to.  After this, :meth:`run_round`'s per-member
        online work is AEAD opens + shuffle + the aggregate DLEQ proof.

        Deterministic and side-effect-free beyond the member caches, so it
        may run concurrently with another round's mixing (the stagger
        window) and is safe to repeat or top up incrementally.
        """
        publics = list(dh_publics)
        for member in self.members:
            publics = member.precompute_round(round_number, publics)

    def invalidate_precompute(self, round_number: Optional[int] = None) -> None:
        """Drop every member's cached precompute tables.

        Re-forming a chain discards the members themselves, but the
        coordinator still invalidates explicitly (alongside the inner-key
        re-announce) so tables derived from retired key material can never
        be consulted through a stale reference.
        """
        for member in self.members:
            member.invalidate_precompute(round_number)

    def decode_submission_publics(self, submissions: Sequence[ClientSubmission]) -> List[object]:
        """The decodable DH publics of a pending batch, for :meth:`precompute_round`.

        Mirrors :meth:`accept_submissions`'s decode step without verifying
        proofs (proof checks stay online): submissions that will be rejected
        merely precompute an unused table entry, and undecodable or
        wrong-chain ones are skipped here exactly as they are rejected
        there.
        """
        publics: List[object] = []
        for submission in submissions:
            if submission.chain_id != self.chain_id:
                continue
            try:
                publics.append(self.group.decode(submission.dh_public))
            except Exception:
                continue
        return publics

    def aggregate_inner_public(self, round_number: int):
        """Return Σ ipk for the round (what users encrypt inner envelopes to)."""
        if round_number not in self._aggregate_inner:
            raise ProtocolError(f"round {round_number} has not begun on chain {self.chain_id}")
        return self._aggregate_inner[round_number]

    def accept_submissions(
        self, round_number: int, submissions: Sequence[ClientSubmission]
    ) -> Tuple[Sequence[BatchEntry], List[str]]:
        """Verify client NIZKs and build the round's input batch.

        Submissions whose knowledge-of-discrete-log proof does not verify are
        rejected immediately and their senders reported (§6.4: "the
        misbehaviour is detected and the adversary is immediately
        identified").

        With ``stream_mix`` the accepted batch is returned as an
        :class:`~repro.mixnet.messages.EncodedBatch` built directly from
        the submissions' wire bytes, and the retained submission list holds
        sender-only stubs — the caller may (and the engine does) drop its
        submission references once this returns.
        """
        group = self.group
        stream = self.stream_mix
        accepted: List[object] = []
        entries: List[BatchEntry] = []
        element_bytes: List[bytes] = []
        ciphertexts: List[bytes] = []
        rejected: List[str] = []
        for submission in submissions:
            if submission.chain_id != self.chain_id:
                rejected.append(submission.sender)
                continue
            try:
                dh_public = group.decode(submission.dh_public)
            except Exception:
                rejected.append(submission.sender)
                continue
            context = submission_context(self.chain_id, round_number, submission.sender)
            if not verify_dlog(group, group.base(), dh_public, submission.proof, context):
                rejected.append(submission.sender)
                continue
            if stream:
                # Streamed intake: keep the *wire bytes* (the decode above
                # validated them, and every accepted encoding is canonical,
                # so no re-encode is needed) plus a sender-only stub; the
                # decoded point dies here.
                accepted.append(_AcceptedSender(submission.sender))
                element_bytes.append(submission.dh_public)
                ciphertexts.append(submission.ciphertext)
            else:
                accepted.append(submission)
                entries.append(BatchEntry(dh_public=dh_public, ciphertext=submission.ciphertext))
        self._submissions[round_number] = accepted
        if stream:
            batch = EncodedBatch.from_parts(group, element_bytes, ciphertexts)
            self._entries[round_number] = batch
            return batch, rejected
        self._entries[round_number] = entries
        return entries, rejected

    def submissions_for_round(self, round_number: int) -> List[ClientSubmission]:
        """The accepted submissions (used by the blame protocol to identify users)."""
        return self._submissions.get(round_number, [])

    def history_for_round(self, round_number: int) -> List[List[BatchEntry]]:
        """Per-position input batches observed during the round (for blame/tests)."""
        return self._history.get(round_number, [])

    def _forward_batch(
        self, round_number: int, index: int, entries: List[BatchEntry]
    ) -> List[BatchEntry]:
        """Send member ``index``'s output batch to its successor over the transport."""
        if index + 1 >= len(self.members):
            return entries
        envelope = Envelope(
            kind=BATCH,
            source=self.members[index].server_name,
            destination=self.members[index + 1].server_name,
            round_number=round_number,
            payload=entries,
            chain_id=self.chain_id,
        )
        return self.transport.deliver(envelope)

    def run_round(self, round_number: int, retry_after_blame: bool = True) -> ChainRoundResult:
        """Execute the mixing phase for the round's accepted submissions.

        Returns a :class:`ChainRoundResult` whose status reflects whether the
        messages were delivered, a server was caught misbehaving (protocol
        halts, no privacy loss), or the blame protocol ran.  When
        ``retry_after_blame`` is set and blame convicts only *users*, their
        submissions are removed and mixing is re-run — mirroring §6.4's
        "those ciphertexts are removed from the set and the upstream servers
        repeat the AHS protocol".
        """
        from repro.mixnet.blame import run_blame_protocol  # local import to avoid a cycle

        group = self.group
        if round_number not in self._entries:
            raise ProtocolError("accept_submissions must run before run_round")
        stored = self._entries[round_number]
        # An EncodedBatch is immutable and blob-backed: copying it into a
        # list would decode the whole round up front, exactly what streamed
        # intake exists to avoid.
        entries: Sequence[BatchEntry] = stored if isinstance(stored, EncodedBatch) else list(stored)
        digest = batch_digest(group, entries)
        history: List[Sequence[BatchEntry]] = [
            entries if isinstance(entries, EncodedBatch) else list(entries)
        ]
        rejected_senders: List[str] = []

        for index, member in enumerate(self.members):
            result = member.process_round(round_number, entries)
            if result.halted:
                verdict = run_blame_protocol(
                    chain=self,
                    round_number=round_number,
                    accusing_position=member.position,
                    flagged_input_indices=result.failed_indices,
                    history=history,
                )
                if verdict.malicious_servers or not retry_after_blame or not verdict.malicious_users:
                    return ChainRoundResult(
                        chain_id=self.chain_id,
                        round_number=round_number,
                        status=ChainRoundResult.STATUS_HALTED_BLAME,
                        blame_verdict=verdict,
                        input_digest=digest,
                    )
                # Remove the convicted users' submissions and rerun the
                # round.  Index-based so the streamed batch can subset its
                # blob without decoding the survivors.
                rejected_senders.extend(verdict.malicious_users)
                malicious = set(verdict.malicious_users)
                stored_submissions = self._submissions[round_number]
                keep = [
                    index
                    for index, submission in enumerate(stored_submissions)
                    if submission.sender not in malicious
                ]
                self._submissions[round_number] = [stored_submissions[index] for index in keep]
                stored_entries = self._entries[round_number]
                if isinstance(stored_entries, EncodedBatch):
                    self._entries[round_number] = stored_entries.select(keep)
                else:
                    self._entries[round_number] = [stored_entries[index] for index in keep]
                rerun = self.run_round(round_number, retry_after_blame=retry_after_blame)
                rerun.rejected_senders = rejected_senders + rerun.rejected_senders
                rerun.blame_verdict = verdict
                return rerun
            # Aggregate blinding verification performed on behalf of every
            # other (in particular the honest) member.
            input_aggregate = group.sum(entry.dh_public for entry in entries) if entries else group.identity()
            output_aggregate = (
                group.sum(entry.dh_public for entry in result.entries)
                if result.entries
                else group.identity()
            )
            context = mixing_context(self.chain_id, member.position, round_number)
            valid = (
                result.proof is not None
                and len(result.entries) == len(entries)
                and verify_dleq(
                    group,
                    input_aggregate,
                    output_aggregate,
                    member.base_point,
                    member.blinding_public,
                    result.proof,
                    context,
                )
            )
            if not valid:
                return ChainRoundResult(
                    chain_id=self.chain_id,
                    round_number=round_number,
                    status=ChainRoundResult.STATUS_HALTED_SERVER,
                    misbehaving_server=member.server_name,
                    input_digest=digest,
                )
            # Hand the verified output batch to the next server (the real
            # server→server wire of §6.3); the last member's output stays
            # local for the inner-key reveal.
            entries = self._forward_batch(round_number, index, result.entries)
            history.append(entries if isinstance(entries, EncodedBatch) else list(entries))

        self._history[round_number] = history

        # Inner-key reveal and final decryption.
        inner_secrets: List[int] = []
        announced = self._inner_publics.get(round_number, [])
        for member, announced_public in zip(self.members, announced):
            secret = member.reveal_inner_secret(round_number)
            if group.base_mult(secret) != announced_public:
                return ChainRoundResult(
                    chain_id=self.chain_id,
                    round_number=round_number,
                    status=ChainRoundResult.STATUS_HALTED_SERVER,
                    misbehaving_server=member.server_name,
                    input_digest=digest,
                )
            inner_secrets.append(secret)

        mailbox_messages: List[MailboxMessage] = []
        invalid_inner = 0
        if isinstance(entries, EncodedBatch):
            final_ciphertexts = (entries.ciphertext(index) for index in range(len(entries)))
        else:
            final_ciphertexts = (entry.ciphertext for entry in entries)
        envelopes: List[Optional[InnerEnvelope]] = []
        for ciphertext in final_ciphertexts:
            try:
                envelopes.append(InnerEnvelope.from_bytes(ciphertext))
            except Exception:
                envelopes.append(None)
        parseable = [envelope for envelope in envelopes if envelope is not None]
        # Whole-batch final decryption: one many-points-one-scalar pass over
        # the aggregate inner secret plus one batched AEAD open, per-entry
        # results identical to decrypt_inner.
        opened = iter(decrypt_inner_batch(group, inner_secrets, round_number, parseable))
        for envelope in envelopes:
            if envelope is None:
                invalid_inner += 1
                continue
            ok, plaintext = next(opened)
            if not ok or plaintext is None:
                invalid_inner += 1
                continue
            try:
                mailbox_messages.append(MailboxMessage.from_bytes(plaintext))
            except Exception:
                invalid_inner += 1
        return ChainRoundResult(
            chain_id=self.chain_id,
            round_number=round_number,
            status=ChainRoundResult.STATUS_DELIVERED,
            mailbox_messages=mailbox_messages,
            rejected_senders=rejected_senders,
            invalid_inner_count=invalid_inner,
            input_digest=digest,
        )
