"""Mix-network substrate: chains, servers, the aggregate hybrid shuffle, blame.

The sub-modules map directly onto the paper:

* :mod:`repro.mixnet.messages` — fixed-size wire formats (§5.1, §6.2).
* :mod:`repro.mixnet.chain` — anytrust chain formation and the chain-length
  formula (§5.2.1).
* :mod:`repro.mixnet.server` — the baseline decrypt-and-shuffle server
  (Algorithm 1, honest-but-curious adversaries only).
* :mod:`repro.mixnet.ahs` — the aggregate hybrid shuffle (§6.1–§6.3).
* :mod:`repro.mixnet.blame` — the blame protocol (§6.4).
"""

from repro.mixnet.chain import form_chains, required_chain_length, stagger_positions
from repro.mixnet.messages import (
    BatchEntry,
    ClientSubmission,
    MailboxMessage,
    MessageBody,
    batch_digest,
)

__all__ = [
    "BatchEntry",
    "ClientSubmission",
    "MailboxMessage",
    "MessageBody",
    "batch_digest",
    "form_chains",
    "required_chain_length",
    "stagger_positions",
]
