"""Mailboxes and mailbox servers (§5.1).

Every user owns exactly one mailbox, publicly identified by her encoded
public key.  Mailbox servers expose only *put* and *get*; they are trusted
for availability, not privacy — all content they hold is encrypted for the
mailbox owner and their access pattern is uniform (every user fetches her
whole mailbox every round).  A deployment shards mailboxes across several
mailbox servers by hashing the owner's public key, exactly like e-mail
providers sharding by address.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.errors import MailboxError
from repro.mixnet.messages import MailboxMessage

__all__ = ["Mailbox", "MailboxServer", "MailboxHub"]


@dataclass
class Mailbox:
    """A single user's mailbox: per-round lists of sealed messages."""

    owner: bytes
    _rounds: Dict[int, List[MailboxMessage]] = field(default_factory=dict)

    def put(self, round_number: int, message: MailboxMessage) -> None:
        if message.recipient != self.owner:
            raise MailboxError("message recipient does not match mailbox owner")
        self._rounds.setdefault(round_number, []).append(message)

    def get(self, round_number: int) -> List[MailboxMessage]:
        """Return (without removing) every message delivered in ``round_number``."""
        return list(self._rounds.get(round_number, []))

    def drain(self, round_number: int) -> List[MailboxMessage]:
        """Return and delete the round's messages."""
        return self._rounds.pop(round_number, [])

    def message_count(self, round_number: int) -> int:
        return len(self._rounds.get(round_number, []))


class MailboxServer:
    """One mailbox server holding a subset of the deployment's mailboxes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._mailboxes: Dict[bytes, Mailbox] = {}

    def create_mailbox(self, owner: bytes) -> Mailbox:
        """Create (or return the existing) mailbox for ``owner``."""
        if owner not in self._mailboxes:
            self._mailboxes[owner] = Mailbox(owner=owner)
        return self._mailboxes[owner]

    def put(self, round_number: int, message: MailboxMessage) -> None:
        """Deliver one mailbox message; unknown recipients raise :class:`MailboxError`."""
        if message.recipient not in self._mailboxes:
            raise MailboxError("no mailbox registered for this recipient")
        self._mailboxes[message.recipient].put(round_number, message)

    def get(self, round_number: int, owner: bytes) -> List[MailboxMessage]:
        if owner not in self._mailboxes:
            raise MailboxError("no mailbox registered for this owner")
        return self._mailboxes[owner].get(round_number)

    def owners(self) -> List[bytes]:
        return list(self._mailboxes)

    def __contains__(self, owner: bytes) -> bool:
        return owner in self._mailboxes


class MailboxHub:
    """The deployment's set of mailbox servers, sharded by recipient public key."""

    def __init__(self, num_servers: int = 1) -> None:
        if num_servers < 1:
            raise MailboxError("a deployment needs at least one mailbox server")
        self.servers = [MailboxServer(name=f"mailbox-{index}") for index in range(num_servers)]

    def _server_for(self, owner: bytes) -> MailboxServer:
        digest = hashlib.sha256(owner).digest()
        return self.servers[int.from_bytes(digest[:8], "big") % len(self.servers)]

    def server_name_for(self, owner: bytes) -> str:
        """The name of the mailbox server holding ``owner``'s mailbox.

        Transport envelopes name their endpoints; this is how the engine
        labels a fetch with the true sharded source so per-link accounting
        survives a multi-server mailbox tier.
        """
        return self._server_for(owner).name

    def create_mailbox(self, owner: bytes) -> Mailbox:
        return self._server_for(owner).create_mailbox(owner)

    def put(self, round_number: int, message: MailboxMessage) -> None:
        self._server_for(message.recipient).put(round_number, message)

    def deliver_batch(self, round_number: int, messages: Iterable[MailboxMessage]) -> int:
        """Deliver a batch of messages, dropping ones addressed to unknown mailboxes.

        Messages for unknown recipients can only have been produced by
        malicious users (honest users address themselves or their partner),
        so dropping them is safe; the count of drops is returned for
        reporting.
        """
        dropped = 0
        for message in messages:
            try:
                self.put(round_number, message)
            except MailboxError:
                dropped += 1
        return dropped

    def get(self, round_number: int, owner: bytes) -> List[MailboxMessage]:
        return self._server_for(owner).get(round_number, owner)

    def message_counts(self, round_number: int, owners: Sequence[bytes]) -> Dict[bytes, int]:
        """Per-owner delivered-message counts — the adversary's observable in §5.3.3."""
        return {owner: len(self.get(round_number, owner)) for owner in owners}
