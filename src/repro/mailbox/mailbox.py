"""Mailboxes and mailbox servers (§5.1).

Every user owns exactly one mailbox, publicly identified by her encoded
public key.  Mailbox servers expose only *put* and *get*; they are trusted
for availability, not privacy — all content they hold is encrypted for the
mailbox owner and their access pattern is uniform (every user fetches her
whole mailbox every round).

A deployment shards mailboxes across servers with a **consistent-hash
ring** (:class:`ShardedMailboxHub`): each server contributes a fixed set of
virtual ring points, and an owner's mailbox lives on the server owning the
first point at or after the hash of her public key.  Adding or removing a
shard therefore moves only the owners in the vacated arcs — ``~1/n`` of
them — where the previous modulo scheme reshuffled nearly everyone.  The
owner→server mapping is cached at mailbox creation, so steady-state routing
is one dict lookup, and both delivery and fetch are *batched*: messages are
grouped per shard and appended with one list-extend per mailbox round
(O(batch) dict merges) instead of one guarded put per message.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import MailboxError
from repro.mixnet.messages import MailboxMessage

__all__ = ["Mailbox", "MailboxServer", "ShardedMailboxHub", "MailboxHub"]

#: Virtual ring points per mailbox server.  Enough that shard loads stay
#: within a few percent of uniform at deployment scale while keeping ring
#: construction trivial.
VIRTUAL_NODES_PER_SERVER = 64


@dataclass(slots=True)
class Mailbox:
    """A single user's mailbox: per-round lists of sealed messages."""

    owner: bytes
    _rounds: Dict[int, List[MailboxMessage]] = field(default_factory=dict)

    def put(self, round_number: int, message: MailboxMessage) -> None:
        if message.recipient != self.owner:
            raise MailboxError("message recipient does not match mailbox owner")
        self._rounds.setdefault(round_number, []).append(message)

    def put_batch(self, round_number: int, messages: Sequence[MailboxMessage]) -> None:
        """Append a whole round batch in one list merge.

        The caller (the hub's sharded delivery) has already routed by
        recipient, so the per-message ownership check reduces to one
        assertion over the batch.
        """
        for message in messages:
            if message.recipient != self.owner:
                raise MailboxError("message recipient does not match mailbox owner")
        self._rounds.setdefault(round_number, []).extend(messages)

    def get(self, round_number: int) -> List[MailboxMessage]:
        """Return (without removing) every message delivered in ``round_number``."""
        return list(self._rounds.get(round_number, []))

    def drain(self, round_number: int) -> List[MailboxMessage]:
        """Return and delete the round's messages."""
        return self._rounds.pop(round_number, [])

    def message_count(self, round_number: int) -> int:
        return len(self._rounds.get(round_number, []))


class MailboxServer:
    """One mailbox server holding a subset of the deployment's mailboxes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._mailboxes: Dict[bytes, Mailbox] = {}

    def create_mailbox(self, owner: bytes) -> Mailbox:
        """Create (or return the existing) mailbox for ``owner``."""
        if owner not in self._mailboxes:
            self._mailboxes[owner] = Mailbox(owner=owner)
        return self._mailboxes[owner]

    def put(self, round_number: int, message: MailboxMessage) -> None:
        """Deliver one mailbox message; unknown recipients raise :class:`MailboxError`."""
        if message.recipient not in self._mailboxes:
            raise MailboxError("no mailbox registered for this recipient")
        self._mailboxes[message.recipient].put(round_number, message)

    def deliver_grouped(
        self, round_number: int, groups: Dict[bytes, List[MailboxMessage]]
    ) -> int:
        """Deliver recipient-grouped messages; return the dropped count."""
        dropped = 0
        for recipient, messages in groups.items():
            mailbox = self._mailboxes.get(recipient)
            if mailbox is None:
                dropped += len(messages)
                continue
            mailbox.put_batch(round_number, messages)
        return dropped

    def get(self, round_number: int, owner: bytes) -> List[MailboxMessage]:
        if owner not in self._mailboxes:
            raise MailboxError("no mailbox registered for this owner")
        return self._mailboxes[owner].get(round_number)

    def owners(self) -> List[bytes]:
        return list(self._mailboxes)

    def __contains__(self, owner: bytes) -> bool:
        return owner in self._mailboxes


def _ring_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class ShardedMailboxHub:
    """The deployment's mailbox tier: consistent-hash shards, batched flows."""

    def __init__(self, num_servers: int = 1,
                 virtual_nodes: int = VIRTUAL_NODES_PER_SERVER) -> None:
        if num_servers < 1:
            raise MailboxError("a deployment needs at least one mailbox server")
        if virtual_nodes < 1:
            raise MailboxError("each shard needs at least one ring point")
        self.servers = [MailboxServer(name=f"mailbox-{index}") for index in range(num_servers)]
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, int]] = []
        for server_index, server in enumerate(self.servers):
            for virtual in range(virtual_nodes):
                token = _ring_hash(f"{server.name}|vnode-{virtual}".encode())
                points.append((token, server_index))
        points.sort()
        self._ring_tokens = [token for token, _ in points]
        self._ring_servers = [server_index for _, server_index in points]
        #: owner → shard, filled at mailbox creation so the steady state
        #: never walks the ring.
        self._owner_shard: Dict[bytes, MailboxServer] = {}

    def _server_for(self, owner: bytes) -> MailboxServer:
        cached = self._owner_shard.get(owner)
        if cached is not None:
            return cached
        index = bisect.bisect_left(self._ring_tokens, _ring_hash(owner))
        if index == len(self._ring_tokens):
            index = 0  # wrap: first point of the ring
        return self.servers[self._ring_servers[index]]

    def server_name_for(self, owner: bytes) -> str:
        """The name of the mailbox server holding ``owner``'s mailbox.

        Transport envelopes name their endpoints; this is how the engine
        labels a fetch with the true sharded source so per-link accounting
        survives a multi-server mailbox tier.
        """
        return self._server_for(owner).name

    def create_mailbox(self, owner: bytes) -> Mailbox:
        server = self._server_for(owner)
        self._owner_shard[owner] = server
        return server.create_mailbox(owner)

    def put(self, round_number: int, message: MailboxMessage) -> None:
        self._server_for(message.recipient).put(round_number, message)

    def deliver_batch(self, round_number: int, messages: Iterable[MailboxMessage]) -> int:
        """Deliver a batch of messages, dropping ones addressed to unknown mailboxes.

        Messages for unknown recipients can only have been produced by
        malicious users (honest users address themselves or their partner),
        so dropping them is safe; the count of drops is returned for
        reporting.  Delivery is grouped per (shard, recipient) so the hot
        path is dict merges, not per-message guarded puts.
        """
        per_server: Dict[int, Dict[bytes, List[MailboxMessage]]] = {}
        server_ids: Dict[int, MailboxServer] = {}
        for message in messages:
            server = self._server_for(message.recipient)
            key = id(server)
            server_ids[key] = server
            per_server.setdefault(key, {}).setdefault(message.recipient, []).append(message)
        dropped = 0
        for key, groups in per_server.items():
            dropped += server_ids[key].deliver_grouped(round_number, groups)
        return dropped

    def get(self, round_number: int, owner: bytes) -> List[MailboxMessage]:
        return self._server_for(owner).get(round_number, owner)

    def fetch_batch(
        self, round_number: int, owners: Sequence[bytes]
    ) -> List[Tuple[bytes, List[MailboxMessage]]]:
        """Every given owner's round download, in owner order.

        The population fetch path frames these per shard (see
        :meth:`shard_owners`); the lookup itself is one cached dict hit per
        owner.
        """
        return [(owner, self.get(round_number, owner)) for owner in owners]

    def shard_owners(self, owners: Sequence[bytes]) -> List[Tuple[MailboxServer, List[bytes]]]:
        """Group ``owners`` by their shard, preserving order within a shard."""
        grouped: Dict[int, List[bytes]] = {}
        servers: Dict[int, MailboxServer] = {}
        for owner in owners:
            server = self._server_for(owner)
            key = id(server)
            servers[key] = server
            grouped.setdefault(key, []).append(owner)
        return [(servers[key], group) for key, group in grouped.items()]

    def message_counts(self, round_number: int, owners: Sequence[bytes]) -> Dict[bytes, int]:
        """Per-owner delivered-message counts — the adversary's observable in §5.3.3."""
        return {owner: len(self.get(round_number, owner)) for owner in owners}


#: Historical name: the hub has always sharded by recipient key; it now does
#: so with a consistent-hash ring and batched flows.
MailboxHub = ShardedMailboxHub
