"""Mailbox servers (§5.1): per-user message stores trusted only for availability."""

from repro.mailbox.mailbox import Mailbox, MailboxHub, MailboxServer, ShardedMailboxHub

__all__ = ["Mailbox", "MailboxHub", "MailboxServer", "ShardedMailboxHub"]
