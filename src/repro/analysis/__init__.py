"""Figure/table generators, reproduction scorecard, and text rendering."""

from repro.analysis import figures
from repro.analysis.measured import (
    measured_vs_model_bandwidth,
    measured_vs_model_latency,
)
from repro.analysis.report import render_figure, render_table
from repro.analysis.scorecard import build_scorecard, render_scorecard

__all__ = [
    "build_scorecard",
    "figures",
    "measured_vs_model_bandwidth",
    "measured_vs_model_latency",
    "render_figure",
    "render_scorecard",
    "render_table",
]
