"""Figure/table generators, reproduction scorecard, and text rendering."""

from repro.analysis import figures
from repro.analysis.report import render_figure, render_table
from repro.analysis.scorecard import build_scorecard, render_scorecard

__all__ = ["build_scorecard", "figures", "render_figure", "render_scorecard", "render_table"]
