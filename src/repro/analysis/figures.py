"""One generator per figure of the paper's evaluation (§8).

Each ``figureN()`` function returns a dictionary with the x-axis values, one
series per system/configuration, the units, and (where the paper states
concrete numbers) the reference values we are trying to reproduce.  The
benchmark harness in ``benchmarks/`` calls these and prints the resulting
rows; EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.atom import AtomModel
from repro.baselines.pung import PungModel
from repro.baselines.stadium import StadiumModel
from repro.baselines.xrd_model import XRDModel
from repro.constants import DEFAULT_MALICIOUS_FRACTION
from repro.mixnet.chain import required_chain_length
from repro.simulation.churn import analytic_failure_rate, simulate_failure_rate
from repro.simulation.costmodel import CostModel
from repro.simulation.latency import blame_latency, recovery_latency, xrd_latency

__all__ = [
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure7_recovery",
    "figure8",
    "user_cost_table",
    "headline_comparison",
    "ALL_FIGURES",
]

_DEFAULT_SERVER_SWEEP = (100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000)
_DEFAULT_USER_SWEEP = (1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000)


def figure2(server_counts: Sequence[int] = _DEFAULT_SERVER_SWEEP) -> Dict:
    """User bandwidth per round vs. number of servers (Figure 2), in megabytes."""
    xrd = XRDModel()
    pung_xpir = PungModel("xpir")
    pung_seal = PungModel("sealpir")
    stadium = StadiumModel()
    to_mb = 1e-6
    return {
        "id": "fig2",
        "title": "Figure 2: user bandwidth per round vs. number of servers",
        "x": list(server_counts),
        "x_label": "servers",
        "unit": "MB/round/user",
        "series": {
            "Pung (XPIR; 4M users)": [pung_xpir.user_bandwidth(4_000_000, n) * to_mb for n in server_counts],
            "Pung (XPIR; 1M users)": [pung_xpir.user_bandwidth(1_000_000, n) * to_mb for n in server_counts],
            "Pung (SealPIR)": [pung_seal.user_bandwidth(1_000_000, n) * to_mb for n in server_counts],
            "XRD": [xrd.user_bandwidth(1_000_000, n) * to_mb for n in server_counts],
            "Stadium": [stadium.user_bandwidth(1_000_000, n) * to_mb for n in server_counts],
        },
        "paper_reference": {
            "XRD @ 100 servers": "~54 KB upload",
            "XRD @ 2000 servers": "~238 KB upload (~40 Kbps with 1-minute rounds)",
            "Pung XPIR @ 1M users": "~5.8 MB",
            "Pung XPIR @ 4M users": "~11 MB",
        },
    }


def figure3(server_counts: Sequence[int] = _DEFAULT_SERVER_SWEEP) -> Dict:
    """Single-core user computation per round vs. number of servers (Figure 3)."""
    xrd = XRDModel()
    pung_xpir = PungModel("xpir")
    pung_seal = PungModel("sealpir")
    stadium = StadiumModel()
    atom = AtomModel()
    return {
        "id": "fig3",
        "title": "Figure 3: user computation per round vs. number of servers",
        "x": list(server_counts),
        "x_label": "servers",
        "unit": "seconds/round/user",
        "series": {
            "XRD": [xrd.user_compute(1_000_000, n) for n in server_counts],
            "Pung (XPIR; 4M users)": [pung_xpir.user_compute(4_000_000, n) for n in server_counts],
            "Pung (XPIR; 1M users)": [pung_xpir.user_compute(1_000_000, n) for n in server_counts],
            "Pung (SealPIR)": [pung_seal.user_compute(1_000_000, n) for n in server_counts],
            "Atom": [atom.user_compute(1_000_000, n) for n in server_counts],
            "Stadium": [stadium.user_compute(1_000_000, n) for n in server_counts],
        },
        "paper_reference": {
            "XRD @ <2000 servers": "< 0.5 s (parallelisable across cores)",
        },
    }


def figure4(
    user_counts: Sequence[int] = _DEFAULT_USER_SWEEP,
    num_servers: int = 100,
    cost_model: Optional[CostModel] = None,
) -> Dict:
    """End-to-end latency vs. number of users with 100 servers (Figure 4)."""
    cost_model = cost_model or CostModel.paper_testbed()
    xrd = XRDModel(cost_model=cost_model)
    atom = AtomModel()
    pung = PungModel("xpir")
    stadium = StadiumModel()
    return {
        "id": "fig4",
        "title": f"Figure 4: end-to-end latency vs. users ({num_servers} servers)",
        "x": list(user_counts),
        "x_label": "users",
        "unit": "seconds",
        "series": {
            "Atom": [atom.latency(m, num_servers) for m in user_counts],
            "Pung": [pung.latency(m, num_servers) for m in user_counts],
            "XRD": [xrd.latency(m, num_servers) for m in user_counts],
            "Stadium": [stadium.latency(m, num_servers) for m in user_counts],
        },
        "paper_reference": {
            "XRD": "128 s @ 1M, 251 s @ 2M, 508 s @ 4M, 1009 s @ 8M",
            "Atom": "~1532 s @ 1M (12x XRD)",
            "Pung": "~272 s @ 1M, ~927 s @ 2M (2.1x / 3.7x XRD)",
            "Stadium": "~64 s @ 1M, ~138 s @ 2M (2x faster than XRD)",
        },
    }


def figure5(
    server_counts: Sequence[int] = (50, 75, 100, 125, 150, 175, 200, 500, 1000, 3000),
    num_users: int = 2_000_000,
    cost_model: Optional[CostModel] = None,
) -> Dict:
    """End-to-end latency vs. number of servers with 2M users (Figure 5)."""
    cost_model = cost_model or CostModel.paper_testbed()
    xrd = XRDModel(cost_model=cost_model)
    atom = AtomModel()
    pung = PungModel("xpir")
    stadium = StadiumModel()
    return {
        "id": "fig5",
        "title": f"Figure 5: end-to-end latency vs. servers ({num_users} users)",
        "x": list(server_counts),
        "x_label": "servers",
        "unit": "seconds",
        "series": {
            "Atom": [atom.latency(num_users, n) for n in server_counts],
            "Pung": [pung.latency(num_users, n) for n in server_counts],
            "XRD": [xrd.latency(num_users, n) for n in server_counts],
            "Stadium": [stadium.latency(num_users, n) for n in server_counts],
        },
        "paper_reference": {
            "XRD": "scales as sqrt(2/N); ~251 s @ 100, ~84 s @ 1000 (extrapolated)",
            "crossover": "Atom/Pung need ~3000/~1000 servers to match XRD at 2M users",
        },
    }


def figure6(
    fractions: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45),
    num_users: int = 2_000_000,
    num_servers: int = 100,
    cost_model: Optional[CostModel] = None,
) -> Dict:
    """Latency vs. assumed fraction of malicious servers f (Figure 6)."""
    cost_model = cost_model or CostModel.paper_testbed()
    latencies = [
        xrd_latency(num_users, num_servers, malicious_fraction=f, cost_model=cost_model)
        for f in fractions
    ]
    chain_lengths = [required_chain_length(f, num_servers) for f in fractions]
    return {
        "id": "fig6",
        "title": f"Figure 6: XRD latency vs. f ({num_users} users, {num_servers} servers)",
        "x": list(fractions),
        "x_label": "f",
        "unit": "seconds",
        "series": {
            "XRD latency": latencies,
            "chain length k": chain_lengths,
        },
        "paper_reference": {
            "shape": "latency grows as -1/log(f); ~251 s at f=0.2, steep beyond f=0.4",
        },
    }


def figure7(
    malicious_user_counts: Sequence[int] = (5_000, 20_000, 50_000, 80_000, 100_000),
    num_servers: int = 100,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    cost_model: Optional[CostModel] = None,
) -> Dict:
    """Worst-case blame-protocol latency vs. malicious users in a chain (Figure 7)."""
    cost_model = cost_model or CostModel.paper_testbed()
    return {
        "id": "fig7",
        "title": "Figure 7: blame protocol latency vs. malicious users in a chain",
        "x": list(malicious_user_counts),
        "x_label": "malicious users",
        "unit": "seconds",
        "series": {
            "blame latency": [
                blame_latency(count, num_servers, malicious_fraction, cost_model)
                for count in malicious_user_counts
            ],
        },
        "paper_reference": {
            "5000 users": "~13 s",
            "100000 users": "~150 s (linear growth)",
        },
    }


def figure7_recovery(
    chain_lengths: Sequence[int] = (2, 4, 8, 16, 32),
    cost_model: Optional[CostModel] = None,
) -> Dict:
    """Fig7 companion: blame + recovery latency after a *server* conviction.

    The paper's Figure 7 prices the blame protocol for malicious *users*;
    this companion prices the full detect → blame → evict → re-form path a
    tampering server triggers (the scenario the fault engine executes for
    real), as a function of chain length.  Re-formation's ordered key
    ceremony makes the growth linear in ``k``.
    """
    cost_model = cost_model or CostModel.paper_testbed()
    return {
        "id": "fig7_recovery",
        "title": "Figure 7 companion: blame + recovery latency vs. chain length",
        "x": list(chain_lengths),
        "x_label": "chain length k",
        "unit": "seconds",
        "series": {
            "blame + recovery latency": [
                recovery_latency(length, cost_model) for length in chain_lengths
            ],
        },
        "paper_reference": {
            "shape": "linear in k (ordered ceremony dominates); not measured in the paper",
        },
    }


def figure8(
    churn_rates: Sequence[float] = (0.0, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04),
    server_counts: Sequence[int] = (100, 500, 1000),
    monte_carlo: bool = False,
    trials: int = 5,
    conversations_per_trial: int = 200,
) -> Dict:
    """Conversation failure rate vs. server churn rate (Figure 8).

    The analytic series is the default; set ``monte_carlo`` to also run the
    Monte-Carlo simulation over the real chain-formation/selection code
    (slower but captures correlations between chains sharing servers).
    """
    series: Dict[str, List[float]] = {}
    for num_servers in server_counts:
        chain_length = required_chain_length(DEFAULT_MALICIOUS_FRACTION, num_servers)
        series[f"XRD ({num_servers} servers)"] = [
            analytic_failure_rate(rate, chain_length) for rate in churn_rates
        ]
        if monte_carlo:
            series[f"XRD ({num_servers} servers, MC)"] = [
                simulate_failure_rate(
                    num_servers,
                    rate,
                    trials=trials,
                    conversations_per_trial=conversations_per_trial,
                ).failure_rate
                for rate in churn_rates
            ]
    return {
        "id": "fig8",
        "title": "Figure 8: conversation failure rate vs. server churn rate",
        "x": list(churn_rates),
        "x_label": "server churn rate",
        "unit": "fraction of conversations failing",
        "series": series,
        "paper_reference": {
            "1% churn": "~27% of conversations fail",
            "4% churn": "~70% of conversations fail",
        },
    }


def user_cost_table(server_counts: Sequence[int] = (100, 500, 1000, 2000)) -> Dict:
    """The §8.1 user-cost numbers: upload bytes and sustained bandwidth."""
    xrd = XRDModel()
    rows = []
    for num_servers in server_counts:
        from repro.simulation.bandwidth import xrd_user_bandwidth

        cost = xrd_user_bandwidth(num_servers)
        rows.append(
            {
                "servers": num_servers,
                "ell": cost.ell,
                "chain_length": cost.chain_length,
                "upload_kb": cost.upload_bytes / 1e3,
                "download_kb": cost.download_bytes / 1e3,
                "kbps_1min_rounds": cost.bandwidth_kbps(),
            }
        )
    return {
        "id": "user-cost-table",
        "title": "User cost summary (§8.1)",
        "rows": rows,
        "paper_reference": {
            "100 servers": "~54 KB upload, ~1 Kbps",
            "2000 servers": "~238 KB upload, ~40 Kbps",
        },
    }


def headline_comparison(cost_model: Optional[CostModel] = None) -> Dict:
    """The abstract's headline claims: XRD vs Atom / Pung / Stadium at 2M users, 100 servers."""
    cost_model = cost_model or CostModel.paper_testbed()
    num_users, num_servers = 2_000_000, 100
    xrd = XRDModel(cost_model=cost_model).latency(num_users, num_servers)
    atom = AtomModel().latency(num_users, num_servers)
    pung = PungModel("xpir").latency(num_users, num_servers)
    stadium = StadiumModel().latency(num_users, num_servers)
    return {
        "id": "headline",
        "title": "Headline comparison at 2M users / 100 servers",
        "xrd_latency": xrd,
        "atom_latency": atom,
        "pung_latency": pung,
        "stadium_latency": stadium,
        "atom_speedup": atom / xrd,
        "pung_speedup": pung / xrd,
        "stadium_slowdown": xrd / stadium,
        "paper_reference": {
            "xrd_latency": 251.0,
            "atom_speedup": 12.0,
            "pung_speedup": 3.7,
            "stadium_slowdown": 1.8,
        },
    }


#: Registry used by the benchmark harness and EXPERIMENTS tooling.
ALL_FIGURES = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig7_recovery": figure7_recovery,
    "fig8": figure8,
}
