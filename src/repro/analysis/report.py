"""Plain-text rendering of figure data (no plotting dependencies needed)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["render_table", "render_figure", "format_value"]


def format_value(value) -> str:
    """Format a cell: floats get sensible precision, everything else str()."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.3g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width text table."""
    formatted = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)


def render_figure(figure: Mapping) -> str:
    """Render a figure dict (as produced by :mod:`repro.analysis.figures`) as text."""
    x_label = figure.get("x_label", "x")
    x_values = figure["x"]
    series: Dict[str, Sequence] = figure["series"]
    headers = [x_label] + list(series)
    rows: List[List] = []
    for index, x_value in enumerate(x_values):
        rows.append([x_value] + [series[name][index] for name in series])
    title = figure.get("title", "")
    unit = figure.get("unit", "")
    header_line = f"{title}" + (f" [{unit}]" if unit else "")
    return header_line + "\n" + render_table(headers, rows)
