"""Measured-from-traffic companions to the analytic figures.

The analytic models in :mod:`repro.simulation` *predict* XRD's costs from
closed forms; a deployment on the instrumented transport *measures* them
from the wire bytes its envelopes actually carried.  This module puts the
two side by side:

* :func:`measured_vs_model_bandwidth` — the Figure 2 companion: mean
  per-user upload/download bytes per round from the traffic ledger against
  :func:`repro.simulation.bandwidth.deployment_user_bandwidth` anchored to
  the same chain parameters.  The acceptance bar is agreement within 5%.
* :func:`measured_vs_model_latency` — the Figure 4/5 companion: the
  modelled time of the measured critical path (submission → slowest chain's
  hops → delivery → fetch) next to the network leg predicted from the
  configuration, and the closed-form end-to-end estimate (which also prices
  compute, so it is reported for context rather than compared).
"""

from __future__ import annotations

from typing import Dict

from repro.constants import AEAD_TAG_SIZE, GROUP_ELEMENT_SIZE, PAYLOAD_SIZE
from repro.crypto.onion import onion_size
from repro.errors import SimulationError
from repro.mixnet.messages import mailbox_message_size
from repro.simulation.bandwidth import deployment_user_bandwidth, submission_wire_size
from repro.simulation.latency import messages_per_chain

#: The codec's framing: each batch blob carries a 4-byte count, each framed
#: item a 4-byte length prefix (see ``repro.transport.codec``).
_FRAME_PREFIX = 4

__all__ = ["measured_vs_model_bandwidth", "measured_vs_model_latency"]


def _ledger_or_raise(deployment):
    ledger = deployment.traffic_ledger
    if ledger is None:
        raise SimulationError(
            "measured figures need a deployment on the instrumented transport"
        )
    return ledger


def _population_per_user_bytes(deployment, round_number: int) -> Dict:
    """Per-user upload/download bytes reconstructed from batch frames.

    A batched deployment uploads one framed ``SUBMISSION_BATCH`` per
    (chain, round) and downloads one ``MAILBOX_FETCH_BATCH`` per shard, so
    the ledger carries frame totals rather than per-user records.  The
    split is exact under the same full-attendance assumption the mean
    comparison already makes: every submission of a deployment has the same
    wire size, so a chain frame divides evenly over its roster, and a fetch
    frame's per-owner share is re-encoded from the hub's stored messages.
    """
    from repro.transport import (
        COVER_SUBMISSION_BATCH,
        MAILBOX_FETCH_BATCH,
        SUBMISSION_BATCH,
    )
    from repro.transport.codec import _encode_mailbox_batch, _pack_bytes

    ledger = _ledger_or_raise(deployment)
    population = deployment.population
    uploads: Dict[str, float] = {}
    downloads: Dict[str, float] = {}
    for record in ledger.records_for_round(round_number):
        if record.kind in (SUBMISSION_BATCH, COVER_SUBMISSION_BATCH):
            roster = population.chain_rosters.get(record.chain_id, [])
            if roster:
                share = record.num_bytes / len(roster)
                for sender in roster:
                    uploads[sender] = uploads.get(sender, 0.0) + share
        elif record.kind == MAILBOX_FETCH_BATCH:
            # Re-encode each owner's framed share with the codec itself
            # (length-prefixed owner key plus her mailbox batch encoding) so
            # the reconstruction tracks the wire format by construction; the
            # frame's own count header is spread evenly.
            shard_users = [
                user
                for user in population.users
                if deployment.mailboxes.server_name_for(user.public_bytes) == record.source
            ]
            header_share = _FRAME_PREFIX / len(shard_users) if shard_users else 0.0
            for user in shard_users:
                messages = deployment.mailboxes.get(round_number, user.public_bytes)
                pair_bytes = len(_pack_bytes(user.public_bytes)) + len(
                    _encode_mailbox_batch(messages)
                )
                downloads[user.name] = (
                    downloads.get(user.name, 0.0) + pair_bytes + header_share
                )
    return {
        user: (uploads.get(user, 0.0), downloads.get(user, 0.0))
        for user in set(uploads) | set(downloads)
    }


def measured_vs_model_bandwidth(deployment, round_number: int) -> Dict:
    """Mean measured per-user bytes for one round vs. the analytic prediction.

    The comparison is only meaningful for a round in which every user was
    online (offline users upload nothing, pulling the measured mean down).
    On a batched deployment the per-user split is reconstructed from the
    population's batch frames (:func:`_population_per_user_bytes`); batching
    carries the owner key on the download wire explicitly, so its framing
    overhead is slightly higher than the object path's.
    """
    ledger = _ledger_or_raise(deployment)
    per_user = ledger.per_user_bytes(round_number)
    if not per_user and getattr(deployment, "population", None) is not None:
        per_user = _population_per_user_bytes(deployment, round_number)
    if not per_user:
        raise SimulationError(f"no traffic recorded for round {round_number}")
    uploads = [upload for upload, _ in per_user.values()]
    downloads = [download for _, download in per_user.values()]
    config = deployment.config
    model = deployment_user_bandwidth(
        deployment.num_chains,
        config.resolved_chain_length(),
        payload_size=PAYLOAD_SIZE,
        cover_messages=config.use_cover_messages,
        num_servers=config.num_servers,
    )
    measured_upload = sum(uploads) / len(uploads)
    measured_download = sum(downloads) / len(downloads)
    return {
        "round": round_number,
        "users_measured": len(per_user),
        "measured_upload_bytes": measured_upload,
        "measured_download_bytes": measured_download,
        "model_upload_bytes": model.upload_bytes,
        "model_download_bytes": model.download_bytes,
        "upload_ratio": measured_upload / model.upload_bytes,
        "download_ratio": measured_download / model.download_bytes,
    }


def measured_vs_model_latency(deployment, round_number: int) -> Dict:
    """The measured critical path's link time vs. the configured network model.

    ``modelled_network_seconds`` rebuilds the same critical path from the
    configuration alone (uniform chain load ``R = M·ℓ/n``, per-hop batch
    sizes shrinking by one AEAD tag per layer), so measured vs. modelled
    quantifies how far real chain loads deviate from the uniform-load
    assumption — the network share of the Figure 4/5 analytic curves.
    """
    ledger = _ledger_or_raise(deployment)
    cost_model = getattr(deployment.transport, "cost_model", None)
    if cost_model is None:
        raise SimulationError("the deployment's transport carries no link cost model")
    config = deployment.config
    num_chains = deployment.num_chains
    chain_length = config.resolved_chain_length()
    ell = deployment.ell()
    load = messages_per_chain(config.num_users, num_chains)
    # Entry ciphertexts start at onion size minus the separately-carried DH
    # key and lose one AEAD tag per hop; each batch entry adds the key back
    # plus a length prefix, each batch blob a count prefix.
    first_ciphertext = onion_size(chain_length, PAYLOAD_SIZE) - GROUP_ELEMENT_SIZE
    hops = 0.0
    for hop in range(1, chain_length):
        entry_bytes = GROUP_ELEMENT_SIZE + _FRAME_PREFIX + (first_ciphertext - hop * AEAD_TAG_SIZE)
        hops += cost_model.link_time(_FRAME_PREFIX + load * entry_bytes)
    framed_mailbox = _FRAME_PREFIX + mailbox_message_size(PAYLOAD_SIZE)
    delivery = cost_model.link_time(_FRAME_PREFIX + load * framed_mailbox)
    submission = cost_model.link_time(submission_wire_size(chain_length))
    fetch = cost_model.link_time(_FRAME_PREFIX + ell * framed_mailbox)
    return {
        "round": round_number,
        "measured_seconds": ledger.round_latency_seconds(round_number),
        "modelled_network_seconds": submission + hops + delivery + fetch,
        "chain_hop_seconds": ledger.chain_hop_seconds(round_number),
    }
