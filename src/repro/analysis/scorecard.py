"""Reproduction scorecard: paper-reported values vs. this repository's output.

The scorecard is the machine-checkable counterpart of EXPERIMENTS.md: each
:class:`ScorecardEntry` names a quantity the paper reports, the paper's
value, the value this reproduction computes, and the tolerance within which
we consider it reproduced.  ``build_scorecard()`` evaluates every entry from
the live models, so the table can be regenerated (and asserted on) at any
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import render_table
from repro.baselines import AtomModel, PungModel, StadiumModel, XRDModel
from repro.simulation.bandwidth import xrd_user_bandwidth, xrd_user_compute
from repro.simulation.churn import analytic_failure_rate
from repro.simulation.latency import blame_latency, xrd_latency
from repro.mixnet.chain import required_chain_length

__all__ = ["ScorecardEntry", "build_scorecard", "render_scorecard"]


@dataclass(frozen=True)
class ScorecardEntry:
    """One quantity the paper reports, compared against this reproduction."""

    figure: str
    quantity: str
    paper_value: float
    reproduced_value: float
    tolerance: float
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.reproduced_value else 1.0
        return self.reproduced_value / self.paper_value

    @property
    def within_tolerance(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance


def build_scorecard() -> List[ScorecardEntry]:
    """Evaluate every scorecard entry from the live models."""
    xrd = XRDModel()
    atom = AtomModel()
    pung = PungModel("xpir")
    stadium = StadiumModel()
    entries = [
        ScorecardEntry(
            "fig4", "XRD latency @ 1M users, 100 servers (s)",
            128.0, xrd_latency(1_000_000, 100), 0.10,
        ),
        ScorecardEntry(
            "fig4", "XRD latency @ 2M users, 100 servers (s)",
            251.0, xrd_latency(2_000_000, 100), 0.10,
        ),
        ScorecardEntry(
            "fig4", "XRD latency @ 4M users, 100 servers (s)",
            508.0, xrd_latency(4_000_000, 100), 0.10,
        ),
        ScorecardEntry(
            "fig4", "XRD latency @ 8M users, 100 servers (s)",
            1009.0, xrd_latency(8_000_000, 100), 0.10,
        ),
        ScorecardEntry(
            "fig4", "Atom/XRD latency ratio @ 1M users",
            12.0, atom.latency(1_000_000, 100) / xrd.latency(1_000_000, 100), 0.15,
        ),
        ScorecardEntry(
            "fig4", "Pung/XRD latency ratio @ 2M users",
            3.7, pung.latency(2_000_000, 100) / xrd.latency(2_000_000, 100), 0.15,
        ),
        ScorecardEntry(
            "fig4", "Pung/XRD latency ratio @ 4M users",
            7.1, pung.latency(4_000_000, 100) / xrd.latency(4_000_000, 100), 0.25,
        ),
        ScorecardEntry(
            "fig4", "XRD/Stadium latency ratio @ 1M users",
            2.0, xrd.latency(1_000_000, 100) / stadium.latency(1_000_000, 100), 0.25,
        ),
        ScorecardEntry(
            "fig5", "XRD latency @ 2M users, 1000 servers (s)",
            84.0, xrd_latency(2_000_000, 1000), 0.15,
        ),
        ScorecardEntry(
            "fig6", "chain length k at f=0.2, ~6000 chains",
            32.0, float(required_chain_length(0.2, 6000)), 0.10,
        ),
        ScorecardEntry(
            "fig7", "blame latency @ 100k malicious users (s)",
            150.0, blame_latency(100_000), 0.80,
            note="shape linear; absolute constant ~2-3x lower (see EXPERIMENTS.md)",
        ),
        ScorecardEntry(
            "fig8", "conversation failure rate @ 1% churn",
            0.27, analytic_failure_rate(0.01, required_chain_length(0.2, 100)), 0.10,
        ),
        ScorecardEntry(
            "fig8", "conversation failure rate @ 4% churn",
            0.70, analytic_failure_rate(0.04, required_chain_length(0.2, 100)), 0.10,
        ),
        ScorecardEntry(
            "fig2", "Pung XPIR user bandwidth @ 1M users (MB)",
            5.8, pung.user_bandwidth(1_000_000, 100) / 1e6, 0.05,
        ),
        ScorecardEntry(
            "§8.1", "XRD upload @ 100 servers (KB)",
            54.0, xrd_user_bandwidth(100).upload_bytes / 1e3, 0.60,
            note="leaner wire format; same sqrt(2N) scaling",
        ),
        ScorecardEntry(
            "§8.1", "XRD upload @ 2000 servers (KB)",
            238.0, xrd_user_bandwidth(2000).upload_bytes / 1e3, 0.60,
            note="leaner wire format; same sqrt(2N) scaling",
        ),
        ScorecardEntry(
            "fig3", "XRD user compute @ 2000 servers (s)",
            0.45, xrd_user_compute(2000).compute_seconds, 0.30,
        ),
    ]
    return entries


def render_scorecard(entries: List[ScorecardEntry] | None = None) -> str:
    """Render the scorecard as a text table."""
    entries = entries if entries is not None else build_scorecard()
    rows = []
    for entry in entries:
        rows.append(
            [
                entry.figure,
                entry.quantity,
                entry.paper_value,
                entry.reproduced_value,
                f"{entry.ratio:.2f}x",
                "ok" if entry.within_tolerance else "off",
            ]
        )
    return render_table(
        ["figure", "quantity", "paper", "reproduced", "ratio", "status"], rows
    )
