"""Adversarial behaviours for tests and experiments.

The paper's security argument (§6, Appendix A/B) is about what an *active*
adversary — malicious servers tampering with messages, malicious users
submitting misauthenticated ciphertexts — can and cannot get away with.
This module implements those behaviours so the test suite and the blame
benchmarks can exercise them:

* :class:`TamperingMember` wraps an honest :class:`ChainMember` and corrupts
  its output in one of several ways;
* :func:`install_tampering_server` swaps a chain position over to the
  tampering wrapper inside an existing deployment;
* :func:`forge_misauthenticated_submission` builds the malicious-user
  submission of §8.2's blame experiment: outer layers that authenticate at
  the first ``fail_at_position`` servers and garbage below.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Sequence

from repro.client.user import ChainKeysView
from repro.crypto.nizk import prove_dlog
from repro.errors import ConfigurationError
from repro.mixnet.ahs import ChainMember, MixStepResult, submission_context
from repro.mixnet.messages import BatchEntry, ClientSubmission

__all__ = [
    "TamperingMember",
    "install_tampering_server",
    "forge_misauthenticated_submission",
    "forge_invalid_proof_submission",
]

#: Corrupt the ciphertext of one output entry while leaving the DH keys (and
#: therefore the aggregate blinding proof) intact.  Detected downstream by
#: authenticated decryption failing at the next honest server, which starts
#: the blame protocol and convicts this server.
MODE_TAMPER_CIPHERTEXT = "tamper-ciphertext"

#: Replace one output DH key without fixing the aggregate.  Detected
#: immediately because the aggregate blinding proof no longer verifies.
MODE_BREAK_AGGREGATE = "break-aggregate"

#: Shift one output DH key by +Δ and another by −Δ so the aggregate (and the
#: proof) still verifies, mimicking the strongest algebraic attack the
#: security proof considers.  Detected downstream via authentication failure
#: and convicted by the blame protocol's per-message DLEQ check.
MODE_PRESERVE_AGGREGATE = "preserve-aggregate"

#: Drop one message entirely (the classic mix-net active attack).  The batch
#: size and aggregate both change, so verification fails immediately.
MODE_DROP_MESSAGE = "drop-message"

_MODES = (
    MODE_TAMPER_CIPHERTEXT,
    MODE_BREAK_AGGREGATE,
    MODE_PRESERVE_AGGREGATE,
    MODE_DROP_MESSAGE,
)


def _derived_seed(*context: object) -> int:
    """A deterministic 256-bit seed bound to the adversarial call context.

    Adversarial randomness must be exactly as reproducible as honest
    randomness: the parity matrix and the fault runner's scenario reports
    compare round outputs byte for byte, so an adversary that reached for
    OS entropy when no RNG was supplied would make the *same seeded
    deployment* produce different bytes on every run.  When a caller does
    not provide a seeded RNG we therefore derive one from the call context
    instead of falling back to ``os.urandom``/``secrets``.
    """
    hasher = hashlib.sha256()
    for part in context:
        data = part if isinstance(part, bytes) else str(part).encode()
        hasher.update(len(data).to_bytes(8, "big"))
        hasher.update(data)
    return int.from_bytes(hasher.digest(), "big")


def _derived_rng(*context: object) -> random.Random:
    """A deterministic ``random.Random`` seeded from :func:`_derived_seed`."""
    return random.Random(_derived_seed(*context))


class TamperingMember:
    """A malicious chain member: honest key material, corrupted mixing step.

    The wrapper delegates everything except :meth:`process_round` to the
    wrapped honest member, so its keys, proofs of knowledge, and blame
    reveals are all "real" — exactly the situation the AHS verification has
    to catch.

    The wrapper's own randomness (the delta scalars of the aggregate-breaking
    modes) is drawn from a per-(wrapper, round) stream — mirroring
    :class:`ChainMember`'s per-round streams, so adversarial rounds are
    exactly as reproducible as honest ones and bit-identical under every
    execution backend and scheduler.  The stream is derived from ``rng`` when
    one is supplied; otherwise it is derived deterministically from the
    wrapped member's identity and the tampering parameters (never from OS
    entropy — see :func:`_derived_seed`).  ``rounds`` restricts the
    corruption to the named round numbers (the wrapper behaves honestly
    elsewhere), which is how fault plans schedule "tamper at round r"
    without installing and removing wrappers mid-scenario.
    """

    def __init__(
        self,
        member: ChainMember,
        mode: str,
        target_index: int = 0,
        rng: Optional[random.Random] = None,
        rounds: Optional[Iterable[int]] = None,
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(f"unknown tampering mode {mode!r}")
        self._member = member
        self.mode = mode
        self.target_index = target_index
        self.rounds = frozenset(rounds) if rounds is not None else None
        if rng is not None:
            self._seed_base = rng.getrandbits(256)
        else:
            self._seed_base = _derived_seed(
                "tampering-member",
                getattr(member, "server_name", "?"),
                getattr(member, "position", -1),
                mode,
                target_index,
            )
        self._round_rngs: dict = {}

    def __getattr__(self, name: str):
        return getattr(self._member, name)

    def _round_rng(self, round_number: int) -> random.Random:
        """The wrapper's independent randomness stream for one round."""
        if round_number not in self._round_rngs:
            self._round_rngs[round_number] = random.Random(
                (self._seed_base << 64) | round_number
            )
        return self._round_rngs[round_number]

    def process_round(self, round_number: int, entries: Sequence[BatchEntry]) -> MixStepResult:
        result = self._member.process_round(round_number, entries)
        if self.rounds is not None and round_number not in self.rounds:
            return result
        if result.halted or not result.entries:
            return result
        group = self._member.group
        rng = self._round_rng(round_number)
        outputs: List[BatchEntry] = list(result.entries)
        target = self.target_index % len(outputs)
        if self.mode == MODE_TAMPER_CIPHERTEXT:
            corrupted = bytes(outputs[target].ciphertext[:-1]) + bytes(
                [outputs[target].ciphertext[-1] ^ 0x01]
            )
            outputs[target] = BatchEntry(outputs[target].dh_public, corrupted)
        elif self.mode == MODE_BREAK_AGGREGATE:
            outputs[target] = BatchEntry(
                group.base_mult(group.random_scalar(rng)), outputs[target].ciphertext
            )
        elif self.mode == MODE_PRESERVE_AGGREGATE:
            other = (target + 1) % len(outputs)
            if other == target:
                return MixStepResult(result.position, outputs, result.proof)
            delta = group.base_mult(group.random_scalar(rng))
            outputs[target] = BatchEntry(
                group.add(outputs[target].dh_public, delta), outputs[target].ciphertext
            )
            outputs[other] = BatchEntry(
                group.sub(outputs[other].dh_public, delta), outputs[other].ciphertext
            )
        elif self.mode == MODE_DROP_MESSAGE:
            del outputs[target]
        return MixStepResult(position=result.position, entries=outputs, proof=result.proof)


def install_tampering_server(
    deployment,
    chain_id: int,
    position: int,
    mode: str,
    target_index: int = 0,
    rng: Optional[random.Random] = None,
    rounds: Optional[Iterable[int]] = None,
) -> TamperingMember:
    """Replace one chain position in ``deployment`` with a tampering wrapper."""
    chain = deployment.chain(chain_id)
    if not 0 <= position < len(chain.members):
        raise ConfigurationError("position out of range for this chain")
    wrapper = TamperingMember(chain.members[position], mode, target_index, rng=rng, rounds=rounds)
    chain.members[position] = wrapper
    return wrapper


def forge_misauthenticated_submission(
    group,
    chain_keys: ChainKeysView,
    round_number: int,
    sender_name: str,
    fail_at_position: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ClientSubmission:
    """Build a malicious user's submission that fails authentication mid-chain.

    The outer layers for servers ``0 … fail_at_position-1`` are well formed;
    the layer the server at ``fail_at_position`` tries to open is random
    bytes, so its authenticated decryption fails and the blame protocol runs.
    The submission's knowledge-of-discrete-log NIZK is valid (the malicious
    user *does* know her ephemeral secret), which is exactly why the blame
    walk-back is needed to convict her.  ``fail_at_position`` defaults to the
    last server — the paper's worst case (§8.2, "impact of blame protocol").

    ``rng`` may be omitted, in which case the forgery's randomness is derived
    deterministically from ``(chain, round, sender, fail position)`` so
    adversarial rounds stay reproducible (see :func:`_derived_seed`).
    """
    from repro.crypto.onion import encrypt_outer_layers

    mixing_publics = list(chain_keys.mixing_publics)
    chain_length = len(mixing_publics)
    if fail_at_position is None:
        fail_at_position = chain_length - 1
    if not 0 <= fail_at_position < chain_length:
        raise ConfigurationError("fail_at_position out of range")
    if rng is None:
        rng = _derived_rng(
            "forge-misauthenticated",
            chain_keys.chain_id,
            round_number,
            sender_name,
            fail_at_position,
        )
    ephemeral_secret = group.random_scalar(rng)
    garbage = rng.randbytes(64)
    ciphertext = encrypt_outer_layers(
        group, mixing_publics[:fail_at_position], round_number, garbage, ephemeral_secret
    )
    proof = prove_dlog(
        group,
        group.base(),
        ephemeral_secret,
        submission_context(chain_keys.chain_id, round_number, sender_name),
        rng,
    )
    return ClientSubmission(
        chain_id=chain_keys.chain_id,
        sender=sender_name,
        dh_public=group.encode(group.base_mult(ephemeral_secret)),
        ciphertext=ciphertext,
        proof=proof,
    )


def forge_invalid_proof_submission(
    group,
    chain_keys: ChainKeysView,
    round_number: int,
    sender_name: str,
    rng: Optional[random.Random] = None,
) -> ClientSubmission:
    """A submission whose knowledge-of-discrete-log proof is for the wrong key.

    Such submissions are rejected immediately at intake (§6.4: misbehaviour
    detected without running the blame protocol).  As with
    :func:`forge_misauthenticated_submission`, an omitted ``rng`` is derived
    deterministically from the call context.
    """
    if rng is None:
        rng = _derived_rng(
            "forge-invalid-proof", chain_keys.chain_id, round_number, sender_name
        )
    ephemeral_secret = group.random_scalar(rng)
    wrong_secret = group.random_scalar(rng)
    proof = prove_dlog(
        group,
        group.base(),
        wrong_secret,
        submission_context(chain_keys.chain_id, round_number, sender_name),
        rng,
    )
    return ClientSubmission(
        chain_id=chain_keys.chain_id,
        sender=sender_name,
        dh_public=group.encode(group.base_mult(ephemeral_secret)),
        ciphertext=rng.randbytes(128),
        proof=proof,
    )
