"""Deployment construction and round orchestration (Figure 1).

A :class:`Deployment` wires together every entity of the paper's Figure 1 —
users, mix servers organised into anytrust chains, and mailbox servers — and
drives communication rounds:

1. users send one onion-encrypted message to each of their assigned chains
   (plus cover messages for the next round),
2. each chain runs the aggregate hybrid shuffle,
3. the recovered mailbox messages are delivered to the mailbox servers, and
4. users fetch and decrypt their mailboxes.

Round execution itself lives in :mod:`repro.engine`: the deployment is a
thin facade that builds a :class:`~repro.engine.round_engine.RoundEngine`
with the configured execution backend and delegates
:meth:`Deployment.run_round` to it.  Chains may therefore be mixed serially
or concurrently, and consecutive rounds may be staggered
(:meth:`Deployment.run_rounds`), without any change to the protocol code.

The deployment is an in-process simulation, but every cross-node interaction
— submissions, server→server batches, mailbox delivery, mailbox fetch —
travels as a typed envelope over a pluggable :class:`~repro.transport.base.
Transport` wired at construction (see DESIGN.md §5).  The protocol logic,
message formats, and cryptography are exactly those a networked
implementation would use; the instrumented transport measures the real wire
bytes, and only physical sockets are elided (DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.client.chain_selection import ell_for_chains
from repro.client.user import ChainKeysView, User
from repro.crypto.group import Ed25519Group, ModPGroup
from repro.crypto.keys import KeyDirectory, KeyPair
from repro.crypto.randomness import PublicRandomnessBeacon
from repro.engine import (
    ExecutionBackend,
    RoundEngine,
    RoundReport,
    RoundSpec,
    StaggeredScheduler,
    make_backend,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.mailbox import MailboxHub
from repro.mixnet.ahs import ChainMember, MixChain
from repro.mixnet.chain import ChainTopology, form_chains, required_chain_length
from repro.mixnet.messages import ClientSubmission
from repro.transport import Transport, make_transport

__all__ = ["DeploymentConfig", "MixServerNode", "Deployment", "RoundReport", "RoundSpec"]


@dataclass
class DeploymentConfig:
    """Parameters of a simulated XRD deployment.

    ``num_chains`` defaults to ``num_servers`` (the paper sets ``n = N``) and
    ``chain_length`` defaults to the anytrust formula for the configured
    ``malicious_fraction`` and ``security_bits``.  ``group_kind`` selects the
    cryptographic group: ``"ed25519"`` for the real curve or ``"modp"`` for
    the small test group (fast, insecure — test use only).
    """

    num_servers: int = 4
    num_users: int = 8
    num_chains: Optional[int] = None
    chain_length: Optional[int] = None
    malicious_fraction: float = 0.0
    security_bits: int = 16
    num_mailbox_servers: int = 1
    seed: Optional[int] = None
    use_cover_messages: bool = True
    group_kind: str = "ed25519"
    modp_bits: int = 96
    #: How the mix stage executes the per-chain work: ``"serial"`` (default,
    #: reference semantics), ``"parallel"`` (chains on a thread pool), or
    #: ``"multiprocess"`` (chains forked to worker processes that ship their
    #: round results back as wire bytes — escapes the GIL).
    execution_backend: str = "serial"
    #: Worker cap for the parallel/multiprocess backends (``None`` → CPU count).
    max_workers: Optional[int] = None
    #: How cross-node messages travel: ``"inproc"`` (default, reference
    #: semantics — delivery is a hand-off) or ``"instrumented"`` (every
    #: envelope is serialised to its real wire encoding and accounted in a
    #: traffic ledger; observable behaviour is bit-identical).
    transport: str = "inproc"

    def resolved_num_chains(self) -> int:
        return self.num_chains if self.num_chains is not None else self.num_servers

    def resolved_chain_length(self) -> int:
        if self.chain_length is not None:
            return self.chain_length
        length = required_chain_length(
            self.malicious_fraction, self.resolved_num_chains(), self.security_bits
        )
        return min(length, self.num_servers)

    def validate(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError("a deployment needs at least one mix server")
        if self.num_users < 0:
            raise ConfigurationError("number of users must be non-negative")
        if self.resolved_num_chains() < 1:
            raise ConfigurationError("a deployment needs at least one chain")
        if self.resolved_chain_length() < 1:
            raise ConfigurationError("chains need at least one server")
        if not 0.0 <= self.malicious_fraction < 1.0:
            raise ConfigurationError("malicious fraction must be in [0, 1)")
        if self.group_kind not in ("ed25519", "modp"):
            raise ConfigurationError("group_kind must be 'ed25519' or 'modp'")
        if self.execution_backend not in ("serial", "parallel", "multiprocess"):
            raise ConfigurationError(
                "execution_backend must be 'serial', 'parallel', or 'multiprocess'"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be positive when set")
        if self.transport not in ("inproc", "instrumented"):
            raise ConfigurationError("transport must be 'inproc' or 'instrumented'")


class MixServerNode:
    """A physical mix server, holding one :class:`ChainMember` per chain it joins."""

    def __init__(self, name: str, group, rng: Optional[random.Random] = None) -> None:
        self.name = name
        self.group = group
        self._rng = rng
        self.chain_members: Dict[int, ChainMember] = {}

    def join_chain(self, chain_id: int, position: int) -> ChainMember:
        """Create this server's member state for one chain."""
        member_rng = self._rng if self._rng is not None else random.SystemRandom()
        member = ChainMember(
            server_name=self.name,
            chain_id=chain_id,
            position=position,
            group=self.group,
            rng=member_rng,
        )
        self.chain_members[chain_id] = member
        return member

    def chains(self) -> List[int]:
        return list(self.chain_members)


class Deployment:
    """A complete simulated XRD network."""

    def __init__(
        self,
        config: DeploymentConfig,
        group,
        beacon: PublicRandomnessBeacon,
        directory: KeyDirectory,
        server_nodes: List[MixServerNode],
        topologies: List[ChainTopology],
        chains: List[MixChain],
        mailboxes: MailboxHub,
        users: List[User],
        transport: Optional[Transport] = None,
    ) -> None:
        self.config = config
        self.group = group
        self.beacon = beacon
        self.directory = directory
        self.server_nodes = server_nodes
        self.topologies = topologies
        self.chains = chains
        self.mailboxes = mailboxes
        self.users = users
        self.transport = (
            transport if transport is not None else make_transport(config.transport, group=group)
        )
        for chain in self.chains:
            chain.transport = self.transport
        #: chain id → the server users submit to (the first server of the chain).
        self.entry_servers: Dict[int, str] = {
            topology.chain_id: topology.servers[0] for topology in topologies
        }
        self.next_round = 1
        self._users_by_name = {user.name: user for user in users}
        self._chains_by_id = {chain.chain_id: chain for chain in chains}
        self._cover_store: Dict[str, List[ClientSubmission]] = {}
        self._begun_rounds: Dict[int, Dict[int, object]] = {}
        self.engine = RoundEngine(
            self, backend=make_backend(config.execution_backend, config.max_workers)
        )

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(cls, config: DeploymentConfig) -> "Deployment":
        """Build a deployment: servers, chains (with key ceremony), mailboxes, users."""
        config.validate()
        if config.group_kind == "modp":
            group = ModPGroup(bits=config.modp_bits)
        else:
            group = Ed25519Group()
        master_rng = random.Random(config.seed) if config.seed is not None else None
        beacon_seed = (
            b"xrd-deployment-" + str(config.seed).encode()
            if config.seed is not None
            else b"xrd-deployment"
        )
        beacon = PublicRandomnessBeacon(seed=beacon_seed)
        directory = KeyDirectory(group=group)

        def node_rng() -> Optional[random.Random]:
            if master_rng is None:
                return None
            return random.Random(master_rng.getrandbits(64))

        server_nodes = [
            MixServerNode(name=f"server-{index}", group=group, rng=node_rng())
            for index in range(config.num_servers)
        ]
        nodes_by_name = {node.name: node for node in server_nodes}

        topologies = form_chains(
            [node.name for node in server_nodes],
            config.resolved_num_chains(),
            config.resolved_chain_length(),
            beacon=beacon,
            epoch=0,
        )
        chains: List[MixChain] = []
        for topology in topologies:
            members = [
                nodes_by_name[server_name].join_chain(topology.chain_id, position)
                for position, server_name in enumerate(topology.servers)
            ]
            chain = MixChain(chain_id=topology.chain_id, members=members, group=group)
            chain.setup()
            chains.append(chain)

        mailboxes = MailboxHub(num_servers=config.num_mailbox_servers)
        users: List[User] = []
        for index in range(config.num_users):
            keypair = KeyPair.generate(group, node_rng())
            user = User(name=f"user-{index}", group=group, keypair=keypair, rng=node_rng())
            directory.register_user(user.name, user.public_bytes)
            mailboxes.create_mailbox(user.public_bytes)
            users.append(user)
        for node in server_nodes:
            directory.register_server(node.name, b"")

        return cls(
            config=config,
            group=group,
            beacon=beacon,
            directory=directory,
            server_nodes=server_nodes,
            topologies=topologies,
            chains=chains,
            mailboxes=mailboxes,
            users=users,
        )

    # -- lookups ------------------------------------------------------------------

    def user(self, name: str) -> User:
        if name not in self._users_by_name:
            raise ConfigurationError(f"unknown user {name!r}")
        return self._users_by_name[name]

    def chain(self, chain_id: int) -> MixChain:
        if chain_id not in self._chains_by_id:
            raise ConfigurationError(f"unknown chain {chain_id}")
        return self._chains_by_id[chain_id]

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def ell(self) -> int:
        """Number of chains each user sends to per round."""
        return ell_for_chains(self.num_chains)

    # -- conversations ----------------------------------------------------------------

    def start_conversation(self, name_a: str, name_b: str, round_number: Optional[int] = None) -> None:
        """Out-of-band agreement for two users to start talking (§3.1 / Alpenhorn)."""
        round_number = round_number if round_number is not None else self.next_round
        user_a = self.user(name_a)
        user_b = self.user(name_b)
        user_a.start_conversation(name_b, user_b.public_bytes, round_number)
        user_b.start_conversation(name_a, user_a.public_bytes, round_number)

    def end_conversation(self, name_a: str, name_b: str) -> None:
        self.user(name_a).end_conversation()
        self.user(name_b).end_conversation()

    # -- round orchestration -------------------------------------------------------------

    def _begin_round_on_chains(self, round_number: int) -> Dict[int, object]:
        """Announce (idempotently) the per-round inner keys on every chain."""
        if round_number not in self._begun_rounds:
            aggregates = {}
            for chain in self.chains:
                aggregates[chain.chain_id] = chain.begin_round(round_number)
            self._begun_rounds[round_number] = aggregates
        return self._begun_rounds[round_number]

    def chain_keys_view(self, round_number: int) -> Dict[int, ChainKeysView]:
        """The public key material users need to build submissions for a round."""
        aggregates = self._begin_round_on_chains(round_number)
        views = {}
        for chain in self.chains:
            if chain.public_keys is None:
                raise ProtocolError("chain setup has not completed")
            views[chain.chain_id] = ChainKeysView(
                chain_id=chain.chain_id,
                mixing_publics=chain.public_keys.mixing_publics,
                aggregate_inner_public=aggregates[chain.chain_id],
            )
        return views

    def round_spec(
        self,
        payloads: Optional[Dict[str, bytes]] = None,
        offline_users: Optional[Iterable[str]] = None,
        extra_submissions: Optional[List[ClientSubmission]] = None,
        retry_after_blame: bool = True,
    ) -> RoundSpec:
        """Normalise ``run_round``-style arguments into a :class:`RoundSpec`."""
        return RoundSpec(
            payloads=dict(payloads or {}),
            offline_users=set(offline_users or []),
            extra_submissions=list(extra_submissions or []),
            retry_after_blame=retry_after_blame,
        )

    def run_round(
        self,
        payloads: Optional[Dict[str, bytes]] = None,
        offline_users: Optional[Iterable[str]] = None,
        extra_submissions: Optional[List[ClientSubmission]] = None,
        retry_after_blame: bool = True,
    ) -> RoundReport:
        """Execute one full communication round through the round engine.

        ``payloads`` maps user names to the conversation payload they want to
        send this round (users in a conversation with no payload send an
        empty data message; users not in a conversation ignore the payload).
        ``offline_users`` did not show up this round: if cover messages are
        enabled and they submitted covers last round, the covers are played
        in their place (§5.3.3).  ``extra_submissions`` lets adversarial
        tests inject arbitrary (e.g., malformed) submissions.
        """
        spec = self.round_spec(payloads, offline_users, extra_submissions, retry_after_blame)
        return self.engine.execute_round(spec)

    def run_rounds(
        self,
        specs: Sequence[Union[RoundSpec, Dict[str, bytes]]],
        staggered: bool = False,
    ) -> List[RoundReport]:
        """Execute several rounds, optionally pipelined with the stagger trick.

        Each spec is either a :class:`RoundSpec` or a plain payload dict
        (shorthand for a round where everyone is online).  With
        ``staggered=True`` round *r + 1*'s submission collection overlaps
        round *r*'s mixing (§5.2.2); reports are bit-identical either way
        under a fixed seed.
        """
        normalised = [
            spec if isinstance(spec, RoundSpec) else self.round_spec(payloads=spec)
            for spec in specs
        ]
        if staggered:
            return StaggeredScheduler(self.engine).run_rounds(normalised)
        return self.engine.execute_rounds(normalised)

    def use_backend(self, backend: ExecutionBackend) -> None:
        """Swap the mix-stage execution backend (closing the previous one)."""
        self.engine.backend.close()
        self.engine.backend = backend

    def use_transport(self, transport: Transport) -> None:
        """Swap the deployment's transport (closing the previous one).

        Every chain shares the deployment's transport, so the swap rewires
        the server→server batch links too.
        """
        old = self.transport
        self.transport = transport
        for chain in self.chains:
            chain.transport = transport
        if old is not transport:
            old.close()

    @property
    def traffic_ledger(self):
        """The instrumented transport's ledger, or ``None`` on other transports."""
        return getattr(self.transport, "ledger", None)

    def close(self) -> None:
        """Release engine and transport resources (thread pools).

        The deployment stays usable: a parallel backend lazily rebuilds its
        pool on the next round.
        """
        self.engine.close()
        self.transport.close()
