"""Deployment construction and round orchestration (Figure 1).

A :class:`Deployment` wires together every entity of the paper's Figure 1 —
users, mix servers organised into anytrust chains, and mailbox servers — and
drives communication rounds:

1. users send one onion-encrypted message to each of their assigned chains
   (plus cover messages for the next round),
2. each chain runs the aggregate hybrid shuffle,
3. the recovered mailbox messages are delivered to the mailbox servers, and
4. users fetch and decrypt their mailboxes.

Round execution itself lives in :mod:`repro.engine`: the deployment is a
thin facade that builds a :class:`~repro.engine.round_engine.RoundEngine`
with the configured execution backend and delegates
:meth:`Deployment.run_round` to it.  Chains may therefore be mixed serially
or concurrently, and consecutive rounds may be staggered
(:meth:`Deployment.run_rounds`), without any change to the protocol code.

The deployment is an in-process simulation, but every cross-node interaction
— submissions, server→server batches, mailbox delivery, mailbox fetch —
travels as a typed envelope over a pluggable :class:`~repro.transport.base.
Transport` wired at construction (see DESIGN.md §5).  The protocol logic,
message formats, and cryptography are exactly those a networked
implementation would use; the instrumented transport measures the real wire
bytes, and only physical sockets are elided (DESIGN.md §3).
"""

from __future__ import annotations

import os
import random
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.client.chain_selection import ell_for_chains
from repro.client.user import ChainKeysView, User
from repro.crypto.group import Ed25519Group, ModPGroup, reset_window_table_caches
from repro.crypto.keys import KeyDirectory, KeyPair
from repro.crypto.randomness import PublicRandomnessBeacon
from repro.engine import (
    ExecutionBackend,
    RoundEngine,
    RoundReport,
    RoundSpec,
    StaggeredScheduler,
    make_backend,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.mailbox import MailboxHub
from repro.mixnet.ahs import ChainMember, MixChain
import repro.population  # noqa: F401 - registers the population factories
from repro.mixnet.chain import ChainTopology, form_chains, required_chain_length
from repro.mixnet.messages import ClientSubmission
from repro.registry import (
    CRYPTO_KERNELS,
    EXECUTION_BACKENDS,
    POPULATIONS,
    TRANSPORTS,
    CryptoKernelKind,
    ExecutionBackendKind,
    PopulationKind,
    TransportKind,
)
from repro.transport import Transport, make_transport

__all__ = [
    "DeploymentConfig",
    "MixServerNode",
    "Deployment",
    "RecoveryAction",
    "RoundReport",
    "RoundSpec",
]


@dataclass(frozen=True)
class RecoveryAction:
    """One applied recovery: who was evicted and how the chain was re-formed."""

    round_number: int
    chain_id: int
    evicted: List[str]
    new_servers: List[str]


@dataclass
class DeploymentConfig:
    """Parameters of a simulated XRD deployment.

    ``num_chains`` defaults to ``num_servers`` (the paper sets ``n = N``) and
    ``chain_length`` defaults to the anytrust formula for the configured
    ``malicious_fraction`` and ``security_bits``.  ``group_kind`` selects the
    cryptographic group: ``"ed25519"`` for the real curve or ``"modp"`` for
    the small test group (fast, insecure — test use only).
    """

    num_servers: int = 4
    num_users: int = 8
    num_chains: Optional[int] = None
    chain_length: Optional[int] = None
    malicious_fraction: float = 0.0
    security_bits: int = 16
    num_mailbox_servers: int = 1
    seed: Optional[int] = None
    use_cover_messages: bool = True
    group_kind: str = "ed25519"
    modp_bits: int = 96
    #: How the mix stage executes the per-chain work: a typed
    #: :class:`~repro.registry.ExecutionBackendKind` — ``SERIAL`` (default,
    #: reference semantics), ``PARALLEL`` (chains on a thread pool), or
    #: ``MULTIPROCESS`` (chains forked to worker processes that ship their
    #: round results back as wire bytes — escapes the GIL) — or the name of
    #: a backend registered in :data:`repro.registry.EXECUTION_BACKENDS`.
    #: Plain built-in strings still work through a deprecation shim.
    execution_backend: Union[str, ExecutionBackendKind] = ExecutionBackendKind.SERIAL
    #: Worker cap for the parallel/multiprocess backends (``None`` → CPU count).
    max_workers: Optional[int] = None
    #: How cross-node messages travel: a typed
    #: :class:`~repro.registry.TransportKind` — ``INPROC`` (default,
    #: reference semantics — delivery is a hand-off), ``INSTRUMENTED``
    #: (every envelope is serialised to its real wire encoding and accounted
    #: in a traffic ledger; observable behaviour is bit-identical), or
    #: ``TCP`` (the wire encoding crosses a real loopback socket and is
    #: parsed back — DESIGN.md §10; process-per-role deployments are wired
    #: by :mod:`repro.runner` instead of this knob) — or the name of a
    #: transport registered in :data:`repro.registry.TRANSPORTS`.
    transport: Union[str, TransportKind] = TransportKind.INPROC
    #: How the honest user side executes: a typed
    #: :class:`~repro.registry.PopulationKind` — ``OBJECT`` (default — one
    #: :class:`~repro.client.user.User` at a time, the reference semantics)
    #: or ``BATCHED`` (a :class:`~repro.population.UserPopulation` builds
    #: and fetches whole chains at once over framed batch envelopes;
    #: bit-identical, DESIGN.md §7) — or a registered population name.
    population: Union[str, PopulationKind] = PopulationKind.OBJECT
    #: Whether the engine runs the AHS precompute stage (§5.2.1 / DESIGN.md
    #: §8): the chains' public-key work (DH blinding, outer-layer key
    #: derivation) executes ahead of the online mix phase — overlapped with
    #: the previous round's mixing under the staggered scheduler — leaving
    #: the online phase as symmetric crypto plus the aggregate proofs.
    #: ``False`` restores the online-only reference path (bit-identical
    #: output; the benchmarks compare the two).
    precompute: bool = True
    #: Streaming population builds (DESIGN.md §9): when set, the batched
    #: population path builds, uploads, delivers, and fetches in chunks of
    #: this many users instead of one whole-population pass, so peak memory
    #: is O(chunk).  ``None`` (default) keeps the monolithic reference pass.
    #: Requires ``population="batched"``.
    population_chunk_size: Optional[int] = None
    #: Fork-based worker pool for the chunk builds (0 = build chunks in
    #: process).  Workers inherit the population copy-on-write and ship
    #: encoded batch envelopes plus RNG-stream cursors back to the parent,
    #: which replays the draws so determinism is preserved.  Requires
    #: ``population_chunk_size`` (and therefore ``population="batched"``).
    population_build_workers: int = 0
    #: Which crypto kernel tier steers the batched hot loops: a typed
    #: :class:`~repro.registry.CryptoKernelKind` — ``PYTHON`` (scalar
    #: reference), ``NUMPY`` (vectorised ChaCha20 batches), or ``NATIVE``
    #: (the ``_xrdkernels`` cffi extension, DESIGN.md §11; degrades to the
    #: best lower tier with one warning when the extension is unavailable)
    #: — or the name of a kernel registered in
    #: :data:`repro.registry.CRYPTO_KERNELS`.  ``None`` (default) keeps the
    #: process's lazy resolution (``XRD_CRYPTO_KERNEL`` env, else best
    #: available).  Note the selection is process-global, like the numpy
    #: fast path always was: the last deployment created wins.
    crypto_kernel: Union[str, CryptoKernelKind, None] = None
    #: Streamed mix intake (DESIGN.md §11.3): chains keep each round's
    #: accepted batch in its wire encoding (:class:`~repro.mixnet.messages.
    #: EncodedBatch`) and decode entries transiently during the mix, so
    #: per-round retained memory is the blob instead of per-entry decoded
    #: objects.  Bit-identical output; the scale benchmarks measure the
    #: retained-RSS difference.
    stream_mix: bool = False

    def __post_init__(self) -> None:
        # The deprecation shim: plain built-in strings are coerced to their
        # typed enum members (with one DeprecationWarning); strings naming
        # registered external components pass through untouched.  Unknown
        # names also pass through here — validate() is the loud gate.
        self.execution_backend = EXECUTION_BACKENDS.coerce(
            self.execution_backend, field="execution_backend"
        )
        self.transport = TRANSPORTS.coerce(self.transport, field="transport")
        self.population = POPULATIONS.coerce(self.population, field="population")
        if self.crypto_kernel is not None:
            self.crypto_kernel = CRYPTO_KERNELS.coerce(
                self.crypto_kernel, field="crypto_kernel"
            )

    def resolved_num_chains(self) -> int:
        return self.num_chains if self.num_chains is not None else self.num_servers

    def resolved_chain_length(self) -> int:
        if self.chain_length is not None:
            return self.chain_length
        length = required_chain_length(
            self.malicious_fraction, self.resolved_num_chains(), self.security_bits
        )
        return min(length, self.num_servers)

    def validate(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError("a deployment needs at least one mix server")
        if self.num_users < 0:
            raise ConfigurationError("number of users must be non-negative")
        if self.resolved_num_chains() < 1:
            raise ConfigurationError("a deployment needs at least one chain")
        if self.resolved_chain_length() < 1:
            raise ConfigurationError("chains need at least one server")
        if not 0.0 <= self.malicious_fraction < 1.0:
            raise ConfigurationError("malicious fraction must be in [0, 1)")
        if self.group_kind not in ("ed25519", "modp"):
            raise ConfigurationError("group_kind must be 'ed25519' or 'modp'")
        EXECUTION_BACKENDS.ensure_known(self.execution_backend, field="execution_backend")
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be positive when set")
        TRANSPORTS.ensure_known(self.transport, field="transport")
        POPULATIONS.ensure_known(self.population, field="population")
        if self.crypto_kernel is not None:
            CRYPTO_KERNELS.ensure_known(self.crypto_kernel, field="crypto_kernel")
        if self.population_chunk_size is not None and self.population_chunk_size < 1:
            raise ConfigurationError("population_chunk_size must be positive when set")
        if self.population_build_workers < 0:
            raise ConfigurationError("population_build_workers must be non-negative")
        if self.population != "batched":
            if self.population_chunk_size is not None:
                raise ConfigurationError(
                    "population_chunk_size requires population='batched' "
                    "(the object path has no chunked build)"
                )
            if self.population_build_workers > 0:
                raise ConfigurationError(
                    "population_build_workers requires population='batched' "
                    "(the object path has no chunked build)"
                )
        if self.population_build_workers > 0:
            if self.population_chunk_size is None:
                raise ConfigurationError(
                    "population_build_workers needs population_chunk_size: "
                    "workers parallelise over chunks"
                )
            if not hasattr(os, "fork"):
                raise ConfigurationError(
                    "population_build_workers requires POSIX fork"
                )


class MixServerNode:
    """A physical mix server, holding one :class:`ChainMember` per chain it joins."""

    def __init__(self, name: str, group, rng: Optional[random.Random] = None) -> None:
        self.name = name
        self.group = group
        self._rng = rng
        self.chain_members: Dict[int, ChainMember] = {}

    def join_chain(self, chain_id: int, position: int) -> ChainMember:
        """Create this server's member state for one chain."""
        # xrdlint: disable=XRD101 - CSPRNG is the production default; seeded runs pass rng
        member_rng = self._rng if self._rng is not None else random.SystemRandom()
        member = ChainMember(
            server_name=self.name,
            chain_id=chain_id,
            position=position,
            group=self.group,
            rng=member_rng,
        )
        self.chain_members[chain_id] = member
        return member

    def chains(self) -> List[int]:
        return list(self.chain_members)


class Deployment:
    """A complete simulated XRD network."""

    def __init__(
        self,
        config: DeploymentConfig,
        group,
        beacon: PublicRandomnessBeacon,
        directory: KeyDirectory,
        server_nodes: List[MixServerNode],
        topologies: List[ChainTopology],
        chains: List[MixChain],
        mailboxes: MailboxHub,
        users: List[User],
        transport: Optional[Transport] = None,
    ) -> None:
        self.config = config
        self.group = group
        self.beacon = beacon
        self.directory = directory
        self.server_nodes = server_nodes
        self.topologies = topologies
        self.chains = chains
        self.mailboxes = mailboxes
        self.users = users
        self.transport = (
            transport if transport is not None else make_transport(config.transport, group=group)
        )
        for chain in self.chains:
            chain.transport = self.transport
        #: chain id → the server users submit to (the first server of the chain).
        self.entry_servers: Dict[int, str] = {
            topology.chain_id: topology.servers[0] for topology in topologies
        }
        #: Columnar batch views over the honest users (``None`` on the
        #: per-user object path).  Chain assignments derive from public keys
        #: alone, so the views survive churn recovery and chain re-formation
        #: unchanged; per-round key material is always passed in fresh.
        self.population = POPULATIONS.create(
            config.population, group=group, users=users, num_chains=len(chains)
        )
        self.next_round = 1
        self._users_by_name = {user.name: user for user in users}
        self._chains_by_id = {chain.chain_id: chain for chain in chains}
        self._nodes_by_name = {node.name: node for node in server_nodes}
        self._cover_store: Dict[str, List[ClientSubmission]] = {}
        self._begun_rounds: Dict[int, Dict[int, object]] = {}
        #: Servers removed from the coordinator's pool by blame convictions.
        self.evicted_servers: set = set()
        #: Convictions recorded by the engine's deliver stage, awaiting
        #: :meth:`recover` — ``(round_number, chain_id, server_names)``.
        self._pending_recoveries: List[tuple] = []
        self._reform_counts: Dict[int, int] = {}
        #: When set (by the distributed runner), the engine's mix stage
        #: dispatches each chain's round as an RPC to the owning mix process
        #: instead of running it through the local execution backend.
        self.remote_mix = None
        self._check_fork_safety(self.transport)
        self.engine = RoundEngine(
            self, backend=make_backend(config.execution_backend, config.max_workers)
        )

    def _check_fork_safety(self, transport: Transport) -> None:
        """A forked mix worker cannot inherit live sockets or event loops."""
        if not transport.fork_safe and (
            self.config.execution_backend == ExecutionBackendKind.MULTIPROCESS
        ):
            raise ConfigurationError(
                f"transport {transport.name!r} is not fork-safe and cannot be "
                "combined with the multiprocess execution backend"
            )

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(cls, config: DeploymentConfig) -> "Deployment":
        """Build a deployment: servers, chains (with key ceremony), mailboxes, users."""
        config.validate()
        if config.crypto_kernel is not None:
            # The registry factory for a kernel *is* the tier selection
            # (process-global, like the numpy fast path before it).
            CRYPTO_KERNELS.create(config.crypto_kernel)
        if config.group_kind == "modp":
            group = ModPGroup(bits=config.modp_bits)
        else:
            group = Ed25519Group()
        master_rng = random.Random(config.seed) if config.seed is not None else None
        beacon_seed = (
            b"xrd-deployment-" + str(config.seed).encode()
            if config.seed is not None
            else b"xrd-deployment"
        )
        beacon = PublicRandomnessBeacon(seed=beacon_seed)
        directory = KeyDirectory(group=group)

        def node_rng() -> Optional[random.Random]:
            if master_rng is None:
                return None
            return random.Random(master_rng.getrandbits(64))

        server_nodes = [
            MixServerNode(name=f"server-{index}", group=group, rng=node_rng())
            for index in range(config.num_servers)
        ]
        nodes_by_name = {node.name: node for node in server_nodes}

        topologies = form_chains(
            [node.name for node in server_nodes],
            config.resolved_num_chains(),
            config.resolved_chain_length(),
            beacon=beacon,
            epoch=0,
        )
        chains: List[MixChain] = []
        for topology in topologies:
            members = [
                nodes_by_name[server_name].join_chain(topology.chain_id, position)
                for position, server_name in enumerate(topology.servers)
            ]
            chain = MixChain(
                chain_id=topology.chain_id,
                members=members,
                group=group,
                stream_mix=config.stream_mix,
            )
            chain.setup()
            chains.append(chain)

        mailboxes = MailboxHub(num_servers=config.num_mailbox_servers)
        users: List[User] = []
        for index in range(config.num_users):
            keypair = KeyPair.generate(group, node_rng())
            user = User(name=f"user-{index}", group=group, keypair=keypair, rng=node_rng())
            directory.register_user(user.name, user.public_bytes)
            mailboxes.create_mailbox(user.public_bytes)
            users.append(user)
        for node in server_nodes:
            directory.register_server(node.name, b"")

        return cls(
            config=config,
            group=group,
            beacon=beacon,
            directory=directory,
            server_nodes=server_nodes,
            topologies=topologies,
            chains=chains,
            mailboxes=mailboxes,
            users=users,
        )

    # -- lookups ------------------------------------------------------------------

    def user(self, name: str) -> User:
        if name not in self._users_by_name:
            raise ConfigurationError(f"unknown user {name!r}")
        return self._users_by_name[name]

    def chain(self, chain_id: int) -> MixChain:
        if chain_id not in self._chains_by_id:
            raise ConfigurationError(f"unknown chain {chain_id}")
        return self._chains_by_id[chain_id]

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def ell(self) -> int:
        """Number of chains each user sends to per round."""
        return ell_for_chains(self.num_chains)

    # -- conversations ----------------------------------------------------------------

    def start_conversation(self, name_a: str, name_b: str, round_number: Optional[int] = None) -> None:
        """Out-of-band agreement for two users to start talking (§3.1 / Alpenhorn)."""
        round_number = round_number if round_number is not None else self.next_round
        user_a = self.user(name_a)
        user_b = self.user(name_b)
        user_a.start_conversation(name_b, user_b.public_bytes, round_number)
        user_b.start_conversation(name_a, user_a.public_bytes, round_number)

    def end_conversation(self, name_a: str, name_b: str) -> None:
        self.user(name_a).end_conversation()
        self.user(name_b).end_conversation()

    # -- round orchestration -------------------------------------------------------------

    def _begin_round_on_chains(self, round_number: int) -> Dict[int, object]:
        """Announce (idempotently) the per-round inner keys on every chain."""
        if round_number not in self._begun_rounds:
            aggregates = {}
            for chain in self.chains:
                aggregates[chain.chain_id] = chain.begin_round(round_number)
            self._begun_rounds[round_number] = aggregates
        return self._begun_rounds[round_number]

    def chain_keys_view(self, round_number: int) -> Dict[int, ChainKeysView]:
        """The public key material users need to build submissions for a round."""
        aggregates = self._begin_round_on_chains(round_number)
        views = {}
        for chain in self.chains:
            if chain.public_keys is None:
                raise ProtocolError("chain setup has not completed")
            views[chain.chain_id] = ChainKeysView(
                chain_id=chain.chain_id,
                mixing_publics=chain.public_keys.mixing_publics,
                aggregate_inner_public=aggregates[chain.chain_id],
            )
        return views

    def round_spec(
        self,
        payloads: Optional[Dict[str, bytes]] = None,
        offline_users: Optional[Iterable[str]] = None,
        extra_submissions: Optional[List[ClientSubmission]] = None,
        retry_after_blame: bool = True,
    ) -> RoundSpec:
        """Normalise ``run_round``-style arguments into a :class:`RoundSpec`."""
        return RoundSpec(
            payloads=dict(payloads or {}),
            offline_users=set(offline_users or []),
            extra_submissions=list(extra_submissions or []),
            retry_after_blame=retry_after_blame,
        )

    def run_round(
        self,
        payloads: Optional[Dict[str, bytes]] = None,
        offline_users: Optional[Iterable[str]] = None,
        extra_submissions: Optional[List[ClientSubmission]] = None,
        retry_after_blame: bool = True,
    ) -> RoundReport:
        """Execute one full communication round through the round engine.

        ``payloads`` maps user names to the conversation payload they want to
        send this round (users in a conversation with no payload send an
        empty data message; users not in a conversation ignore the payload).
        ``offline_users`` did not show up this round: if cover messages are
        enabled and they submitted covers last round, the covers are played
        in their place (§5.3.3).  ``extra_submissions`` lets adversarial
        tests inject arbitrary (e.g., malformed) submissions.
        """
        spec = self.round_spec(payloads, offline_users, extra_submissions, retry_after_blame)
        return self.engine.execute_round(spec)

    def run_rounds(
        self,
        specs: Sequence[Union[RoundSpec, Dict[str, bytes]]],
        staggered: bool = False,
    ) -> List[RoundReport]:
        """Execute several rounds, optionally pipelined with the stagger trick.

        Each spec is either a :class:`RoundSpec` or a plain payload dict
        (shorthand for a round where everyone is online).  With
        ``staggered=True`` round *r + 1*'s submission collection overlaps
        round *r*'s mixing (§5.2.2); reports are bit-identical either way
        under a fixed seed.
        """
        normalised = [
            spec if isinstance(spec, RoundSpec) else self.round_spec(payloads=spec)
            for spec in specs
        ]
        if staggered:
            return StaggeredScheduler(self.engine).run_rounds(normalised)
        return self.engine.execute_rounds(normalised)

    # -- blame recovery: eviction and chain re-formation -------------------------

    def note_convictions(self, round_number: int, chain_id: int, servers: Sequence[str]) -> None:
        """Record a round's server convictions for a later :meth:`recover`.

        Called by the engine's deliver stage (in chain order, on the
        coordinating thread) whenever a chain's round outcome convicts a
        server — via a blame verdict or an aggregate-proof failure — so the
        recorded sequence is identical under every backend and scheduler.
        """
        if servers:
            self._pending_recoveries.append((round_number, chain_id, tuple(servers)))

    @property
    def pending_recoveries(self) -> List[tuple]:
        """Convictions recorded but not yet acted on (read-only view)."""
        return list(self._pending_recoveries)

    def recover(self) -> List[RecoveryAction]:
        """Act on recorded convictions: evict the servers, re-form the chains.

        This is the recovery half the paper assumes after a blame verdict
        (§6.4: the honest servers delete their inner keys and the convicted
        server is removed): each convicted server leaves the coordinator's
        pool permanently, and every chain that produced a conviction is
        re-formed from the remaining pool — new beacon sample, fresh key
        ceremony, fresh per-round inner keys for any round already announced.
        Subsequent rounds run on the re-formed chain; banked covers built for
        the old chain's keys are discarded (their owners bank fresh covers
        the next time they are online).

        Recovery is an explicit coordinator action between rounds — never
        implicit inside a pipelined ``run_rounds`` — so staggered and
        sequential schedules see identical state at every stage boundary.
        """
        pending, self._pending_recoveries = self._pending_recoveries, []
        actions: List[RecoveryAction] = []
        # Apply *every* eviction before re-forming *any* chain: a chain
        # re-formed mid-batch could otherwise sample a server a later
        # pending conviction evicts, and would never be re-formed again.
        per_chain: Dict[int, List] = {}
        last_round = 0
        for round_number, chain_id, servers in pending:
            last_round = max(last_round, round_number)
            newly_evicted = [name for name in servers if name not in self.evicted_servers]
            self.evicted_servers.update(servers)
            entry = per_chain.setdefault(chain_id, [round_number, []])
            # A chain convicted in several rounds reports the *latest*
            # convicting round, matching the ``last_round`` the secondary
            # re-formations below use — not the first, which would make a
            # multi-conviction action sequence internally inconsistent.
            entry[0] = max(entry[0], round_number)
            entry[1].extend(name for name in newly_evicted if name not in entry[1])
        reformed: set = set()
        for chain_id, (round_number, newly_evicted) in per_chain.items():
            topology = self.reform_chain(chain_id)
            reformed.add(chain_id)
            actions.append(
                RecoveryAction(
                    round_number=round_number,
                    chain_id=chain_id,
                    evicted=newly_evicted,
                    new_servers=list(topology.servers),
                )
            )
        if pending:
            # §6.4 removes the convicted server from the *system*, not just
            # from the chain that caught it: every other chain it still sits
            # in is re-formed too (in chain order, so the action sequence is
            # deterministic).  Its eviction is already recorded above, so
            # these secondary actions carry an empty eviction list.
            for chain in list(self.chains):
                if chain.chain_id in reformed:
                    continue
                if any(
                    member.server_name in self.evicted_servers for member in chain.members
                ):
                    topology = self.reform_chain(chain.chain_id)
                    reformed.add(chain.chain_id)
                    actions.append(
                        RecoveryAction(
                            round_number=last_round,
                            chain_id=chain.chain_id,
                            evicted=[],
                            new_servers=list(topology.servers),
                        )
                    )
        return actions

    def reform_chain(self, chain_id: int) -> ChainTopology:
        """Re-form one chain from the non-evicted server pool.

        The new topology is sampled from the public randomness beacon (every
        participant derives the same chain), the sampled servers run a fresh
        key ceremony, and per-round inner keys are re-announced for every
        future round the old chain had already announced — so users building
        submissions for those rounds see the new chain's key material, under
        any scheduler's announce horizon.
        """
        index = next(
            (i for i, chain in enumerate(self.chains) if chain.chain_id == chain_id), None
        )
        if index is None:
            raise ConfigurationError(f"unknown chain {chain_id}")
        old_chain = self.chains[index]
        pool = [
            node.name for node in self.server_nodes if node.name not in self.evicted_servers
        ]
        length = min(len(old_chain.members), len(pool))
        if length < 1:
            raise ConfigurationError("no servers left in the pool to re-form the chain")
        if length < len(old_chain.members):
            # The anytrust bound n·f^k ≤ 2^-λ weakens with every lost
            # position; shrink rather than halt, but never silently.
            warnings.warn(
                f"chain {chain_id} re-formed with {length} servers "
                f"(was {len(old_chain.members)}): the eviction-depleted pool "
                "no longer supports the configured chain length, weakening "
                "the anytrust security margin",
                RuntimeWarning,
                stacklevel=2,
            )
        generation = self._reform_counts.get(chain_id, 0) + 1
        self._reform_counts[chain_id] = generation
        servers = self.beacon.sample_without_replacement(
            generation, pool, length, purpose=f"reform-chain-{chain_id}"
        )
        topology = ChainTopology(chain_id=chain_id, servers=list(servers))

        old_names = {member.server_name for member in old_chain.members}
        members = [
            self._nodes_by_name[name].join_chain(chain_id, position)
            for position, name in enumerate(topology.servers)
        ]
        for name in sorted(old_names - set(topology.servers)):
            self._nodes_by_name[name].chain_members.pop(chain_id, None)
        chain = MixChain(
            chain_id=chain_id,
            members=members,
            group=self.group,
            stream_mix=self.config.stream_mix,
        )
        chain.setup()
        chain.transport = self.transport
        self.chains[index] = chain
        self._chains_by_id[chain_id] = chain
        for position, existing in enumerate(self.topologies):
            if existing.chain_id == chain_id:
                self.topologies[position] = topology
        self.entry_servers[chain_id] = topology.servers[0]

        # Future rounds the old chain already announced (a scheduler may have
        # announced several ahead): replace the cached aggregates with the
        # new chain's, so cached and freshly-computed views agree.
        for cached_round in sorted(self._begun_rounds):
            if cached_round >= self.next_round:
                self._begun_rounds[cached_round][chain_id] = chain.begin_round(cached_round)

        # Precomputed public-key tables for the old chain's future rounds
        # were derived from the retired ceremony's secrets and are stale;
        # invalidate them alongside the key re-announce.  The replaced
        # members are dropped with the old chain, so this is defensive — it
        # guarantees no stale table is ever consulted through a lingering
        # reference (adversarial wrappers, tests).
        old_chain.invalidate_precompute()

        # The retired ceremony's points may be pinned in the fixed-point
        # window-table caches; an epoch re-form is the natural reset point
        # (mirrors reset_assignment_caches for the population layer).
        reset_window_table_caches()

        # Banked covers that target the re-formed chain were built for key
        # material that no longer exists; playing them would misauthenticate.
        stale = [
            user_name
            for user_name, covers in self._cover_store.items()
            if any(
                submission is not None and submission.chain_id == chain_id
                for submission in covers
            )
        ]
        for user_name in stale:
            del self._cover_store[user_name]
        return topology

    def use_backend(self, backend: ExecutionBackend) -> None:
        """Swap the mix-stage execution backend (closing the previous one)."""
        self.engine.backend.close()
        self.engine.backend = backend

    def use_transport(self, transport: Transport, close_previous: bool = True) -> None:
        """Swap the deployment's transport (closing the previous one).

        Every chain shares the deployment's transport, so the swap rewires
        the server→server batch links too.  Pass ``close_previous=False``
        when the new transport *wraps* the old one (e.g.
        :class:`~repro.transport.faulty.FaultyTransport`) and will keep
        delegating to it.
        """
        self._check_fork_safety(transport)
        old = self.transport
        self.transport = transport
        for chain in self.chains:
            chain.transport = transport
        if close_previous and old is not transport:
            old.close()

    @property
    def traffic_ledger(self):
        """The instrumented transport's ledger, or ``None`` on other transports."""
        return getattr(self.transport, "ledger", None)

    def close(self) -> None:
        """Release engine and transport resources (thread pools).

        The deployment stays usable: a parallel backend lazily rebuilds its
        pool on the next round.
        """
        self.engine.close()
        self.transport.close()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
