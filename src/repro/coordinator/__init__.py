"""Deployment construction and round orchestration."""

from repro.coordinator.network import (
    Deployment,
    DeploymentConfig,
    MixServerNode,
    RoundReport,
    RoundSpec,
)

__all__ = ["Deployment", "DeploymentConfig", "MixServerNode", "RoundReport", "RoundSpec"]
