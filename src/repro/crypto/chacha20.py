"""ChaCha20 stream cipher (RFC 8439) implemented from scratch.

The paper's prototype uses NaCl secretbox for authenticated encryption, whose
modern IETF equivalent is ChaCha20-Poly1305.  This module provides the keyed
permutation and block/stream functions; :mod:`repro.crypto.poly1305` and
:mod:`repro.crypto.aead` build the AEAD construction on top.

Two implementations share one block function contract:

* the scalar reference path (:func:`chacha20_block`), used for single
  messages; and
* a batched path (:func:`chacha20_blocks_batch`) that evaluates many
  independent blocks at once.  When numpy is available the 20 rounds run as
  vectorised ``uint32`` column operations over the whole batch — the state
  matrices of *B* blocks form a ``(16, B)`` array, so each quarter-round is
  a handful of array ops regardless of batch size.  Without numpy the batch
  falls back to the scalar block in a loop.  Both paths are bit-identical
  (the batched output is compared against the scalar reference in the test
  suite), so callers may batch opportunistically without observable change.

The batched path is what makes the population layer's whole-chain AEAD
passes (seal → inner envelope → ℓ outer layers, for every user of a chain
at once) affordable in pure Python; see DESIGN.md §7.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from repro.crypto import kernels as _kernels
from repro.errors import CryptoError

try:  # optional vectorisation; every caller has a scalar fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Return one 64-byte keystream block (RFC 8439 §2.3)."""
    if len(key) != KEY_SIZE:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 2**32:
        raise CryptoError("ChaCha20 block counter out of range")
    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter)
    state.extend(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16L", *output)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, initial_counter: int = 0) -> bytes:
    """Return ``length`` bytes of keystream starting at ``initial_counter``."""
    blocks = []
    produced = 0
    counter = initial_counter
    while produced < length:
        blocks.append(chacha20_block(key, counter, nonce))
        produced += BLOCK_SIZE
        counter += 1
    return b"".join(blocks)[:length]


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR ``left`` against the prefix of ``right`` (``len(left)`` bytes).

    One big-integer XOR instead of a per-byte Python loop — ~20× faster for
    the 300-byte payloads that dominate this codebase.
    """
    length = len(left)
    return (
        int.from_bytes(left, "little") ^ int.from_bytes(right[:length], "little")
    ).to_bytes(length, "little")


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` with the ChaCha20 stream cipher.

    The default initial counter of 1 matches the AEAD construction, which
    reserves counter 0 for the Poly1305 one-time key.
    """
    keystream = chacha20_keystream(key, nonce, len(plaintext), initial_counter)
    return xor_bytes(plaintext, keystream)


chacha20_decrypt = chacha20_encrypt


# ---------------------------------------------------------------------------
# Batched keystream generation
# ---------------------------------------------------------------------------

#: Below this many blocks the numpy dispatch overhead beats its per-block
#: savings and the scalar loop wins.
_BATCH_THRESHOLD = 16


def _blocks_batch_numpy(keys: Sequence[bytes], nonces: Sequence[bytes],
                        counters: Sequence[int]) -> bytes:
    """All requested blocks, concatenated, via vectorised uint32 columns."""
    count = len(keys)
    state = _np.empty((16, count), dtype=_np.uint32)
    for index, constant in enumerate(_CONSTANTS):
        state[index] = constant
    state[4:12] = _np.frombuffer(b"".join(keys), dtype="<u4").reshape(count, 8).T
    state[12] = _np.asarray(counters, dtype=_np.uint32)
    state[13:16] = _np.frombuffer(b"".join(nonces), dtype="<u4").reshape(count, 3).T
    working = state.copy()

    def quarter_round(a: int, b: int, c: int, d: int) -> None:
        working[a] += working[b]
        mixed = working[d] ^ working[a]
        working[d] = (mixed << _np.uint32(16)) | (mixed >> _np.uint32(16))
        working[c] += working[d]
        mixed = working[b] ^ working[c]
        working[b] = (mixed << _np.uint32(12)) | (mixed >> _np.uint32(20))
        working[a] += working[b]
        mixed = working[d] ^ working[a]
        working[d] = (mixed << _np.uint32(8)) | (mixed >> _np.uint32(24))
        working[c] += working[d]
        mixed = working[b] ^ working[c]
        working[b] = (mixed << _np.uint32(7)) | (mixed >> _np.uint32(25))

    for _ in range(10):
        quarter_round(0, 4, 8, 12)
        quarter_round(1, 5, 9, 13)
        quarter_round(2, 6, 10, 14)
        quarter_round(3, 7, 11, 15)
        quarter_round(0, 5, 10, 15)
        quarter_round(1, 6, 11, 12)
        quarter_round(2, 7, 8, 13)
        quarter_round(3, 4, 9, 14)
    working += state
    # Transpose so each block's 16 little-endian words are contiguous.
    return working.T.astype("<u4").tobytes()


def chacha20_blocks_batch(keys: Sequence[bytes], nonces: Sequence[bytes],
                          counters: Sequence[int]) -> bytes:
    """Concatenation of ``chacha20_block(keys[i], counters[i], nonces[i])``.

    Inputs are validated like the scalar block function; the output is
    bit-identical to calling it in a loop.
    """
    if not (len(keys) == len(nonces) == len(counters)):
        raise CryptoError(
            "one nonce and one counter per key required "
            f"(got {len(keys)} keys, {len(nonces)} nonces, {len(counters)} counters)"
        )
    for key, nonce, counter in zip(keys, nonces, counters):
        if len(key) != KEY_SIZE:
            raise CryptoError("ChaCha20 key must be 32 bytes")
        if len(nonce) != NONCE_SIZE:
            raise CryptoError("ChaCha20 nonce must be 12 bytes")
        if not 0 <= counter < 2**32:
            raise CryptoError("ChaCha20 block counter out of range")
    if _kernels.native_enabled():
        native = _kernels.chacha20_blocks(keys, nonces, counters)
        if native is not None:
            return native
    if _np is not None and _kernels.numpy_enabled() and len(keys) >= _BATCH_THRESHOLD:
        return _blocks_batch_numpy(keys, nonces, counters)
    return b"".join(
        chacha20_block(key, counter, nonce)
        for key, nonce, counter in zip(keys, nonces, counters)
    )


def chacha20_keystreams(keys: Sequence[bytes], nonces: Sequence[bytes],
                        lengths: Sequence[int], initial_counter: int = 1) -> List[bytes]:
    """Per-message keystreams for a batch of independent (key, nonce) pairs.

    Message ``i`` receives ``lengths[i]`` keystream bytes starting at block
    ``initial_counter`` — exactly what ``chacha20_keystream`` would return
    for it — but the blocks of the whole batch are evaluated in one
    vectorised pass.  Ragged lengths are supported.
    """
    block_keys: List[bytes] = []
    block_nonces: List[bytes] = []
    block_counters: List[int] = []
    block_counts: List[int] = []
    for key, nonce, length in zip(keys, nonces, lengths):
        blocks = max(0, (length + BLOCK_SIZE - 1) // BLOCK_SIZE)
        block_counts.append(blocks)
        block_keys.extend([key] * blocks)
        block_nonces.extend([nonce] * blocks)
        block_counters.extend(range(initial_counter, initial_counter + blocks))
    flat = chacha20_blocks_batch(block_keys, block_nonces, block_counters)
    streams: List[bytes] = []
    offset = 0
    for blocks, length in zip(block_counts, lengths):
        streams.append(flat[offset:offset + length])
        offset += blocks * BLOCK_SIZE
    return streams
