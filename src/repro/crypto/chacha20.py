"""ChaCha20 stream cipher (RFC 8439) implemented from scratch.

The paper's prototype uses NaCl secretbox for authenticated encryption, whose
modern IETF equivalent is ChaCha20-Poly1305.  This module provides the keyed
permutation and block/stream functions; :mod:`repro.crypto.poly1305` and
:mod:`repro.crypto.aead` build the AEAD construction on top.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import CryptoError

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Return one 64-byte keystream block (RFC 8439 §2.3)."""
    if len(key) != KEY_SIZE:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 2**32:
        raise CryptoError("ChaCha20 block counter out of range")
    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter)
    state.extend(struct.unpack("<3L", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16L", *output)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, initial_counter: int = 0) -> bytes:
    """Return ``length`` bytes of keystream starting at ``initial_counter``."""
    blocks = []
    produced = 0
    counter = initial_counter
    while produced < length:
        blocks.append(chacha20_block(key, counter, nonce))
        produced += BLOCK_SIZE
        counter += 1
    return b"".join(blocks)[:length]


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` with the ChaCha20 stream cipher.

    The default initial counter of 1 matches the AEAD construction, which
    reserves counter 0 for the Poly1305 one-time key.
    """
    keystream = chacha20_keystream(key, nonce, len(plaintext), initial_counter)
    return bytes(p ^ k for p, k in zip(plaintext, keystream))


chacha20_decrypt = chacha20_encrypt
