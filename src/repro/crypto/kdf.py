"""Key derivation: HKDF-SHA256 and the XRD-specific key schedules.

The paper writes ``KDF(s, pk)`` for deriving per-direction symmetric keys
from a Diffie-Hellman shared secret (§5.3.2) and uses per-chain loopback keys
known only to the mailbox owner (Algorithm 2 step 1a).  Those derivations are
implemented here on top of a standard HKDF.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.constants import AEAD_NONCE_SIZE
from repro.errors import CryptoError

__all__ = [
    "hkdf_extract",
    "hkdf_expand",
    "derive_key",
    "nonce_from_round",
    "loopback_key",
    "conversation_key",
    "shared_key_from_element",
]

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract (RFC 5869): return a pseudorandom key."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869): derive ``length`` bytes of output key material."""
    if length > 255 * _HASH_LEN:
        raise CryptoError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(block) for block in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(secret: bytes, label: bytes, context: bytes = b"", length: int = 32) -> bytes:
    """Derive a symmetric key from ``secret`` with domain separation ``label``."""
    pseudo_random_key = hkdf_extract(label, secret)
    return hkdf_expand(pseudo_random_key, context, length)


def shared_key_from_element(encoded_element: bytes, label: bytes, context: bytes = b"") -> bytes:
    """Derive an AEAD key from an encoded Diffie-Hellman shared group element."""
    return derive_key(encoded_element, label, context, length=32)


def loopback_key(identity_secret: bytes, chain_id: int) -> bytes:
    """Per-chain loopback key ``s_xA`` known only to the mailbox owner."""
    return derive_key(identity_secret, b"xrd/loopback", chain_id.to_bytes(8, "big"))


def conversation_key(shared_secret: bytes, recipient_public_key: bytes) -> bytes:
    """The paper's ``KDF(s_AB, pk_B)``: per-direction conversation key."""
    return derive_key(shared_secret, b"xrd/conversation", recipient_public_key)


def nonce_from_round(round_number: int) -> bytes:
    """Encode a round number as a 12-byte AEAD nonce."""
    if round_number < 0:
        raise CryptoError("round number must be non-negative")
    return round_number.to_bytes(AEAD_NONCE_SIZE, "big")
