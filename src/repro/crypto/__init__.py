"""Cryptographic substrate for the XRD reproduction.

This package implements, from scratch, every primitive the paper relies on:

* a prime-order group where the decisional Diffie-Hellman assumption is
  plausible (:mod:`repro.crypto.group` — Ed25519 in pure Python, plus a small
  Schnorr-style modular group used for fast property tests),
* authenticated encryption (:mod:`repro.crypto.aead` — ChaCha20-Poly1305, the
  primitive the paper's NaCl-based prototype uses),
* key derivation (:mod:`repro.crypto.kdf` — HKDF-SHA256),
* non-interactive zero-knowledge proofs (:mod:`repro.crypto.nizk` — Schnorr
  knowledge-of-discrete-log and Chaum-Pedersen discrete-log equality),
* onion encryption in both the baseline (Algorithm 2) and aggregate hybrid
  shuffle (§6.2) flavours (:mod:`repro.crypto.onion`),
* key management (:mod:`repro.crypto.keys`) and a simulated public
  randomness beacon (:mod:`repro.crypto.randomness`).
"""

from repro.crypto.aead import AuthenticatedCiphertext, adec, aenc
from repro.crypto.group import Ed25519Group, ModPGroup, Point, default_group
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract, nonce_from_round
from repro.crypto.keys import KeyDirectory, KeyPair
from repro.crypto.nizk import DleqProof, SchnorrProof, prove_dleq, prove_dlog, verify_dleq, verify_dlog
from repro.crypto.randomness import PublicRandomnessBeacon

__all__ = [
    "AuthenticatedCiphertext",
    "DleqProof",
    "Ed25519Group",
    "KeyDirectory",
    "KeyPair",
    "ModPGroup",
    "Point",
    "PublicRandomnessBeacon",
    "SchnorrProof",
    "adec",
    "aenc",
    "default_group",
    "derive_key",
    "hkdf_expand",
    "hkdf_extract",
    "nonce_from_round",
    "prove_dleq",
    "prove_dlog",
    "verify_dleq",
    "verify_dlog",
]
