"""Onion encryption for XRD messages.

Two flavours are implemented, matching the paper:

* **Baseline onion** (Algorithm 2): every layer carries a *fresh* ephemeral
  Diffie-Hellman key, i.e. layer ``i`` is
  ``(g^{x_i}, AEnc(DH(mpk_i, x_i), ρ, layer_{i+1}))``.  Used by the base
  design of §5 which only resists passive adversaries.
* **AHS double envelope** (§6.2): the user first builds an *inner envelope*
  encrypted under the aggregate per-round inner key ``Σ ipk_i`` in one shot,
  then wraps it in outer layers that all share a *single* ephemeral secret
  ``x``.  Because the same ``x`` is used for every layer, the servers can
  blind the accompanying public key ``X = g^x`` and prove in aggregate that
  no message was dropped or substituted (§6.3).

Padding helpers enforce the paper's fixed 256-byte payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.constants import (
    AEAD_TAG_SIZE,
    GROUP_ELEMENT_SIZE,
    KDF_LABEL_INNER,
    KDF_LABEL_OUTER,
    PAYLOAD_SIZE,
)
from repro.crypto.aead import adec, adec_batch, aenc
from repro.crypto.kdf import shared_key_from_element
from repro.errors import CryptoError

__all__ = [
    "InnerEnvelope",
    "pad_payload",
    "unpad_payload",
    "outer_layer_key",
    "inner_envelope_key",
    "encrypt_inner",
    "decrypt_inner",
    "decrypt_inner_batch",
    "encrypt_outer_layers",
    "decrypt_outer_layer",
    "encrypt_onion_baseline",
    "decrypt_baseline_layer",
    "onion_size",
]


# --------------------------------------------------------------------------
# Padding
# --------------------------------------------------------------------------

def pad_payload(payload: bytes, size: int = PAYLOAD_SIZE) -> bytes:
    """Pad ``payload`` to a fixed ``size`` with a 2-byte length prefix.

    The paper requires every message to be exactly the same size; short
    messages are padded and long ones must be split by the caller.
    """
    if len(payload) > size - 2:
        raise CryptoError(
            f"payload of {len(payload)} bytes exceeds the {size - 2}-byte limit; split it"
        )
    return len(payload).to_bytes(2, "big") + payload + b"\x00" * (size - 2 - len(payload))


def unpad_payload(padded: bytes) -> bytes:
    """Invert :func:`pad_payload`."""
    if len(padded) < 2:
        raise CryptoError("padded payload too short")
    length = int.from_bytes(padded[:2], "big")
    if length > len(padded) - 2:
        raise CryptoError("padded payload has an invalid length prefix")
    return padded[2:2 + length]


# --------------------------------------------------------------------------
# Key derivation helpers shared by senders and servers
# --------------------------------------------------------------------------

def outer_layer_key(group, dh_element) -> bytes:
    """AEAD key for one outer layer, derived from the DH shared element."""
    return shared_key_from_element(group.encode(dh_element), KDF_LABEL_OUTER)


def inner_envelope_key(group, dh_element) -> bytes:
    """AEAD key for the inner envelope, derived from the DH shared element."""
    return shared_key_from_element(group.encode(dh_element), KDF_LABEL_INNER)


# --------------------------------------------------------------------------
# Inner envelope (AHS)
# --------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class InnerEnvelope:
    """The inner ciphertext ``e = (g^y, AEnc(DH(Σ ipk, y), ρ, m))`` of §6.2."""

    ephemeral_public: bytes
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        return self.ephemeral_public + self.ciphertext

    @classmethod
    def from_bytes(cls, data: bytes) -> "InnerEnvelope":
        if len(data) < GROUP_ELEMENT_SIZE + AEAD_TAG_SIZE:
            raise CryptoError("inner envelope too short")
        return cls(ephemeral_public=data[:GROUP_ELEMENT_SIZE], ciphertext=data[GROUP_ELEMENT_SIZE:])

    def __len__(self) -> int:
        return len(self.ephemeral_public) + len(self.ciphertext)


def encrypt_inner(group, aggregate_inner_public, round_number: int, plaintext: bytes, rng=None) -> InnerEnvelope:
    """Encrypt ``plaintext`` under the aggregate inner public key ``Σ ipk_i``.

    The "one-shot" onion of §6.2: decryption requires knowledge of *all*
    per-round inner secrets, which the servers only reveal once the shuffle
    has been verified.
    """
    ephemeral_secret = group.random_scalar(rng)
    ephemeral_public = group.base_mult(ephemeral_secret)
    shared = group.scalar_mult(aggregate_inner_public, ephemeral_secret)
    key = inner_envelope_key(group, shared)
    ciphertext = aenc(key, round_number, plaintext)
    return InnerEnvelope(ephemeral_public=group.encode(ephemeral_public), ciphertext=ciphertext)


def decrypt_inner(group, inner_secrets: Sequence[int], round_number: int, envelope: InnerEnvelope) -> Tuple[bool, Optional[bytes]]:
    """Decrypt an inner envelope given every server's revealed inner secret."""
    aggregate_secret = sum(inner_secrets) % group.order
    ephemeral_public = group.decode(envelope.ephemeral_public)
    shared = group.scalar_mult(ephemeral_public, aggregate_secret)
    key = inner_envelope_key(group, shared)
    return adec(key, round_number, envelope.ciphertext)


def decrypt_inner_batch(
    group, inner_secrets: Sequence[int], round_number: int,
    envelopes: Sequence[InnerEnvelope],
) -> List[Tuple[bool, Optional[bytes]]]:
    """Batched :func:`decrypt_inner` over one round's recovered envelopes.

    Per-envelope results are identical to the scalar path (an envelope whose
    ephemeral key fails to decode yields ``(False, None)``); the DH shared
    elements use the many-points-one-scalar fast path and the AEAD opens run
    as one batched keystream pass.
    """
    from repro.crypto.group import scalar_mult_batch  # deferred: group imports field only

    aggregate_secret = sum(inner_secrets) % group.order
    results: List[Tuple[bool, Optional[bytes]]] = [(False, None)] * len(envelopes)
    decodable = []
    points = []
    for index, envelope in enumerate(envelopes):
        try:
            points.append(group.decode(envelope.ephemeral_public))
        except Exception:
            continue
        decodable.append(index)
    shared_elements = scalar_mult_batch(group, points, aggregate_secret)
    keys = [inner_envelope_key(group, shared) for shared in shared_elements]
    opened = adec_batch(keys, round_number, [envelopes[i].ciphertext for i in decodable])
    for index, result in zip(decodable, opened):
        results[index] = result
    return results


# --------------------------------------------------------------------------
# Outer layers (AHS): one ephemeral secret shared by every layer
# --------------------------------------------------------------------------

def encrypt_outer_layers(
    group,
    mixing_public_keys: Sequence,
    round_number: int,
    payload: bytes,
    ephemeral_secret: int,
) -> bytes:
    """Wrap ``payload`` in one authenticated layer per mixing key (innermost last key).

    ``ephemeral_secret`` is the single ``x`` of §6.2; the caller transmits
    ``X = g^x`` alongside the returned ciphertext.
    """
    ciphertext = payload
    for mixing_public in reversed(list(mixing_public_keys)):
        shared = group.scalar_mult(mixing_public, ephemeral_secret)
        key = outer_layer_key(group, shared)
        ciphertext = aenc(key, round_number, ciphertext)
    return ciphertext


def decrypt_outer_layer(group, mixing_secret: int, round_number: int, dh_public, ciphertext: bytes) -> Tuple[bool, Optional[bytes]]:
    """Remove one outer layer: ``ADec(DH(X_i, msk_i), ρ, c_i)`` (§6.3 step 1)."""
    shared = group.scalar_mult(dh_public, mixing_secret)
    key = outer_layer_key(group, shared)
    return adec(key, round_number, ciphertext)


# --------------------------------------------------------------------------
# Baseline onion (Algorithm 2): fresh DH key per layer
# --------------------------------------------------------------------------

def encrypt_onion_baseline(group, mixing_public_keys: Sequence, round_number: int, payload: bytes, rng=None) -> bytes:
    """Onion-encrypt ``payload`` with a fresh ephemeral key per layer.

    Layer format: ``g^{x_i} (32 bytes) || AEnc(DH(mpk_i, x_i), ρ, next_layer)``.
    """
    ciphertext = payload
    for mixing_public in reversed(list(mixing_public_keys)):
        ephemeral_secret = group.random_scalar(rng)
        ephemeral_public = group.base_mult(ephemeral_secret)
        shared = group.scalar_mult(mixing_public, ephemeral_secret)
        key = outer_layer_key(group, shared)
        ciphertext = group.encode(ephemeral_public) + aenc(key, round_number, ciphertext)
    return ciphertext


def decrypt_baseline_layer(group, mixing_secret: int, round_number: int, data: bytes) -> Tuple[bool, Optional[bytes]]:
    """Remove one baseline onion layer (Algorithm 1 step 1)."""
    if len(data) < GROUP_ELEMENT_SIZE + AEAD_TAG_SIZE:
        return False, None
    try:
        ephemeral_public = group.decode(data[:GROUP_ELEMENT_SIZE])
    except Exception:
        return False, None
    shared = group.scalar_mult(ephemeral_public, mixing_secret)
    key = outer_layer_key(group, shared)
    return adec(key, round_number, data[GROUP_ELEMENT_SIZE:])


# --------------------------------------------------------------------------
# Size accounting (used by the bandwidth model)
# --------------------------------------------------------------------------

def onion_size(chain_length: int, payload_size: int = PAYLOAD_SIZE, ahs: bool = True) -> int:
    """Wire size in bytes of one onion-encrypted message.

    For AHS: ``X (32) || k AEAD layers around (inner envelope = 32 + payload
    envelope)``.  The mailbox plaintext inside the inner envelope is
    ``recipient pk (32) || AEnc(payload) (payload + 16)``.
    For the baseline onion each layer additionally carries its own 32-byte
    ephemeral key.
    """
    mailbox_message = GROUP_ELEMENT_SIZE + payload_size + AEAD_TAG_SIZE
    if ahs:
        inner = GROUP_ELEMENT_SIZE + mailbox_message + AEAD_TAG_SIZE
        return GROUP_ELEMENT_SIZE + inner + chain_length * AEAD_TAG_SIZE
    size = mailbox_message
    for _ in range(chain_length):
        size = GROUP_ELEMENT_SIZE + size + AEAD_TAG_SIZE
    return size


def onion_layers_sizes(chain_length: int, payload_size: int = PAYLOAD_SIZE) -> List[int]:
    """Per-layer sizes of an AHS onion, outermost first (for debugging/tests)."""
    mailbox_message = GROUP_ELEMENT_SIZE + payload_size + AEAD_TAG_SIZE
    inner = GROUP_ELEMENT_SIZE + mailbox_message + AEAD_TAG_SIZE
    sizes = [inner + AEAD_TAG_SIZE * layer for layer in range(1, chain_length + 1)]
    return list(reversed(sizes))
