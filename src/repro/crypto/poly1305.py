"""Poly1305 one-time authenticator (RFC 8439 §2.5) implemented from scratch."""

from __future__ import annotations

from repro.errors import CryptoError

TAG_SIZE = 16
KEY_SIZE = 32

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(message: bytes, key: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a one-time ``key``."""
    if len(key) != KEY_SIZE:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        block = message[offset:offset + 16]
        value = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + value) * r) % _P
    tag = (accumulator + s) % (1 << 128)
    return tag.to_bytes(16, "little")


def poly1305_verify(message: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-time-ish comparison of a computed tag against ``tag``."""
    if len(tag) != TAG_SIZE:
        return False
    expected = poly1305_mac(message, key)
    result = 0
    for a, b in zip(expected, tag):
        result |= a ^ b
    return result == 0
