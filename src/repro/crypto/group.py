"""Prime-order groups used for all Diffie-Hellman operations in XRD.

The paper assumes "a group of prime order p with a generator g in which
discrete log is hard and the decisional Diffie-Hellman assumption holds"
(§3.1).  Two implementations are provided behind one interface:

* :class:`Ed25519Group` — the edwards25519 curve (RFC 8032 parameters) in
  pure Python using extended twisted-Edwards coordinates.  All protocol code
  uses this group by default; its prime-order subgroup has the standard
  ~2^252 order.
* :class:`ModPGroup` — the quadratic-residue subgroup of ``Z_p*`` for a
  deterministically generated safe prime.  It is far too small to be secure
  but is convenient for fast property-based tests of group-generic code.

Group elements are represented by :class:`Point` (for the curve) or plain
integers (for the modular group); all operations go through the group object
so protocol code stays agnostic of the representation.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.crypto import field
from repro.crypto import kernels as _kernels
from repro.errors import ConfigurationError, DecodingError

__all__ = [
    "Point",
    "Ed25519Group",
    "ModPGroup",
    "default_group",
    "multi_scalar_mult",
    "multi_scalar_accumulate",
    "scalar_mult_batch",
    "fixed_point_mult_batch",
    "reset_window_table_caches",
]

# --- edwards25519 parameters (RFC 8032) -------------------------------------

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * field.inverse_mod(121666, _P)) % _P
_BASE_Y = (4 * field.inverse_mod(5, _P)) % _P


@dataclass(frozen=True)
class Point:
    """A point on edwards25519 in extended homogeneous coordinates.

    The coordinates satisfy ``x = X/Z``, ``y = Y/Z`` and ``T = XY/Z``.
    Instances are immutable; equality compares the underlying affine point.
    """

    x: int
    y: int
    z: int
    t: int

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if (self.x * other.z - other.x * self.z) % _P != 0:
            return False
        return (self.y * other.z - other.y * self.z) % _P == 0

    def __hash__(self) -> int:
        return hash(self.affine())

    def affine(self) -> tuple:
        """Return the affine ``(x, y)`` coordinates of this point."""
        z_inv = field.inverse_mod(self.z, _P)
        return ((self.x * z_inv) % _P, (self.y * z_inv) % _P)

    def is_identity(self) -> bool:
        """Return ``True`` when this point is the group identity (0, 1)."""
        return self.x % _P == 0 and (self.y - self.z) % _P == 0


def _point_from_affine(x: int, y: int) -> Point:
    return Point(x % _P, y % _P, 1, (x * y) % _P)


_IDENTITY = Point(0, 1, 1, 0)


def _edwards_add(p: Point, q: Point) -> Point:
    """Complete point addition (add-2008-hwcd-3 for a = -1)."""
    a = ((p.y - p.x) * (q.y - q.x)) % _P
    b = ((p.y + p.x) * (q.y + q.x)) % _P
    c = (p.t * 2 * _D * q.t) % _P
    d = (p.z * 2 * q.z) % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return Point((e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P)


def _edwards_double(p: Point) -> Point:
    """Point doubling (dbl-2008-hwcd for a = -1)."""
    a = (p.x * p.x) % _P
    b = (p.y * p.y) % _P
    c = (2 * p.z * p.z) % _P
    h = a + b
    e = h - ((p.x + p.y) * (p.x + p.y)) % _P
    g = a - b
    f = c + g
    return Point((e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P)


def _recover_x(y: int, sign: int) -> int:
    """Recover the x coordinate from y and the sign bit (RFC 8032 §5.1.3)."""
    y2 = (y * y) % _P
    u = (y2 - 1) % _P
    v = (_D * y2 + 1) % _P
    x2 = (u * field.inverse_mod(v, _P)) % _P
    if x2 == 0:
        if sign:
            raise DecodingError("invalid point encoding: x would be zero with sign bit set")
        return 0
    x = field.sqrt_mod_p58(x2, _P)
    if x & 1 != sign:
        x = _P - x
    return x


_BASE_POINT = _point_from_affine(_recover_x(_BASE_Y, 0), _BASE_Y)

# --- fixed-base and fixed-point precomputation ------------------------------
#
# The hot paths of the protocol multiply a small set of long-lived points
# (the base point, chain mixing/blinding keys, users' DH keys during proof
# verification) by fresh scalars thousands of times per round.  Three layers
# of precomputation speed this up without changing any observable output:
#
# * a comb table for the base point: ``_BASE_COMB[j][d] = d · 16^j · B`` so a
#   base multiplication is ~63 additions and no doublings;
# * per-point 4-bit window tables (``[P, 2P, …, 15P]``), cached by object
#   identity for points that are reused across calls;
# * Straus interleaving for Σ sᵢ·Pᵢ, sharing one doubling chain between all
#   terms (used by NIZK verification, which checks ``s·G − c·P == R``).

_WINDOW_BITS = 4
_WINDOW_SIZE = 1 << _WINDOW_BITS  # 16
_SCALAR_WINDOWS = (253 + _WINDOW_BITS - 1) // _WINDOW_BITS  # 64 windows cover any scalar < L

_BASE_COMB: Optional[List[List[Point]]] = None

#: Window tables are cached at two levels.  The durable cache is keyed by
#: the point's canonical 32-byte encoding, so distinct :class:`Point`
#: instances decoding the same wire bytes (every round re-decodes the chain
#: mixing keys) share one table — the rebuild-per-call behaviour this
#: replaces cost 14 additions per ``multi_scalar_accumulate`` term.  An
#: identity-keyed probation level sits in front for instances whose
#: encoding is not yet known: computing an encoding costs an affine field
#: inversion (comparable to building the table), so one-shot internal
#: points — blinded keys flowing between chain members — must never pay
#: it.  A table is only *promoted* to the durable cache on a second
#: sighting (by instance or by encoding), so the flood of one-shot
#: ephemeral DH keys through mixing and proof verification cannot evict
#: the genuinely hot entries.  The id-keyed dicts keep a strong reference
#: to the point so a recycled ``id()`` can never alias a different point;
#: all levels are bounded and evicted FIFO.
_WINDOW_TABLE_CACHE: "dict[int, tuple]" = {}
_WINDOW_SEEN_ONCE: "dict[int, Point]" = {}
_WINDOW_TABLE_BY_ENCODING: "dict[bytes, List[Point]]" = {}
_ENCODING_SEEN_ONCE: "dict[bytes, None]" = {}
_WINDOW_TABLE_CACHE_LIMIT = 512

_BASE_WINDOW_TABLE: Optional[List[Point]] = None


def _evict_one(cache: dict) -> None:
    try:  # benign race: concurrent mix threads may evict the same key
        cache.pop(next(iter(cache)), None)
    except (RuntimeError, StopIteration):
        pass


def reset_window_table_caches() -> None:
    """Drop every cached per-point window table (the epoch-reset hook).

    Mirrors ``reset_assignment_caches``: call when the set of long-lived
    points changes wholesale — a chain re-forms after blame, a scale
    benchmark rebuilds its deployment — so the bounded caches are not
    left holding tables for points that will never be seen again.  The
    base-point comb and window table are derived from a compile-time
    constant and survive resets.
    """
    _WINDOW_TABLE_CACHE.clear()
    _WINDOW_SEEN_ONCE.clear()
    _WINDOW_TABLE_BY_ENCODING.clear()
    _ENCODING_SEEN_ONCE.clear()


def _point_encoding(point: Point) -> bytes:
    """The canonical 32-byte encoding, memoised on the instance.

    ``Point`` is frozen but not slotted, so the memo rides in the instance
    ``__dict__`` via ``object.__setattr__``; ``encode``/``decode`` seed it
    for free on every point that touches the wire.
    """
    enc = point.__dict__.get("_enc")
    if enc is None:
        x, y = point.affine()
        data = bytearray(y.to_bytes(32, "little"))
        if x & 1:
            data[31] |= 0x80
        enc = bytes(data)
        object.__setattr__(point, "_enc", enc)
    return enc


def _promote_window_table(enc: bytes, table: List[Point]) -> None:
    _ENCODING_SEEN_ONCE.pop(enc, None)
    if len(_WINDOW_TABLE_BY_ENCODING) >= _WINDOW_TABLE_CACHE_LIMIT:
        _evict_one(_WINDOW_TABLE_BY_ENCODING)
    _WINDOW_TABLE_BY_ENCODING[enc] = table


def _window_table(point: Point) -> List[Point]:
    """Return ``[1·P, 2·P, …, 15·P]``, cached for points that are reused."""
    global _BASE_WINDOW_TABLE
    if point is _BASE_POINT:  # pinned: the hottest point in every verification
        if _BASE_WINDOW_TABLE is None:
            _BASE_WINDOW_TABLE = _build_window_table(point)
        return _BASE_WINDOW_TABLE
    enc = point.__dict__.get("_enc")
    if enc is not None:
        # Encoding known (the point crossed the wire): the durable cache is
        # shared across instances, with its own second-sighting probation.
        table = _WINDOW_TABLE_BY_ENCODING.get(enc)
        if table is not None:
            return table
        table = _build_window_table(point)
        if enc in _ENCODING_SEEN_ONCE:
            _promote_window_table(enc, table)
        else:
            if len(_ENCODING_SEEN_ONCE) >= _WINDOW_TABLE_CACHE_LIMIT:
                _evict_one(_ENCODING_SEEN_ONCE)
            _ENCODING_SEEN_ONCE[enc] = None
        return table
    # Encoding unknown (an internal, never-encoded point): identity-keyed
    # probation avoids the affine inversion an encoding would cost.
    key = id(point)
    cached = _WINDOW_TABLE_CACHE.get(key)
    if cached is not None and cached[0] is point:
        return cached[1]
    seen = _WINDOW_SEEN_ONCE.get(key)
    if seen is not None and seen is point:
        _WINDOW_SEEN_ONCE.pop(key, None)
        # Second sighting: worth the encoding cost — promotion makes the
        # table outlive this instance and reach equal decoded points.
        enc = _point_encoding(point)
        table = _WINDOW_TABLE_BY_ENCODING.get(enc)
        if table is None:
            table = _build_window_table(point)
            _promote_window_table(enc, table)
        if len(_WINDOW_TABLE_CACHE) >= _WINDOW_TABLE_CACHE_LIMIT:
            _evict_one(_WINDOW_TABLE_CACHE)
        _WINDOW_TABLE_CACHE[key] = (point, table)
        return table
    table = _build_window_table(point)
    if len(_WINDOW_SEEN_ONCE) >= _WINDOW_TABLE_CACHE_LIMIT:
        _evict_one(_WINDOW_SEEN_ONCE)
    _WINDOW_SEEN_ONCE[key] = point
    return table


def _build_window_table(point: Point) -> List[Point]:
    table = [point]
    for _ in range(_WINDOW_SIZE - 2):
        table.append(_edwards_add(table[-1], point))
    return table


def _scalar_windows(scalar: int) -> List[int]:
    """Split a reduced scalar into ``_SCALAR_WINDOWS`` 4-bit digits, LSB first."""
    return [(scalar >> (_WINDOW_BITS * j)) & (_WINDOW_SIZE - 1) for j in range(_SCALAR_WINDOWS)]


def _base_comb() -> List[List[Point]]:
    """Build (once) the fixed-base comb table ``comb[j][d] = d · 16^j · B``."""
    global _BASE_COMB
    if _BASE_COMB is None:
        comb: List[List[Point]] = []
        row_base = _BASE_POINT
        for _ in range(_SCALAR_WINDOWS):
            row = [row_base]
            for _ in range(_WINDOW_SIZE - 2):
                row.append(_edwards_add(row[-1], row_base))
            comb.append(row)
            for _ in range(_WINDOW_BITS):
                row_base = _edwards_double(row_base)
        _BASE_COMB = comb
    return _BASE_COMB


def _windowed_mult_with_table(table: List[Point], digits: List[int]) -> Point:
    """The 4-bit window ladder over a prebuilt table — the one copy of it."""
    result = _IDENTITY
    for digit in reversed(digits):
        result = _edwards_double(_edwards_double(_edwards_double(_edwards_double(result))))
        if digit:
            result = _edwards_add(result, table[digit - 1])
    return result


def _windowed_mult(point: Point, digits: List[int]) -> Point:
    """Multiply ``point`` by the scalar whose 4-bit digits (LSB first) are given."""
    return _windowed_mult_with_table(_window_table(point), digits)


class Ed25519Group:
    """The prime-order subgroup of edwards25519 used for all XRD DH operations."""

    #: Size of an encoded element in bytes.
    element_size = 32
    #: Size of an encoded scalar in bytes.
    scalar_size = 32

    def __init__(self) -> None:
        self.order = _L
        self.prime = _P

    # -- scalars -------------------------------------------------------------

    def random_scalar(self, rng: Optional[object] = None) -> int:
        """Sample a uniformly random non-zero scalar.

        ``rng`` may be a :class:`random.Random`-like object for deterministic
        tests; by default the OS CSPRNG is used.
        """
        while True:
            if rng is None:
                # xrdlint: disable=XRD101 - CSPRNG is the production default; seeded runs pass rng
                value = secrets.randbelow(self.order)
            else:
                value = rng.randrange(self.order)
            if value != 0:
                return value

    def scalar_from_bytes(self, data: bytes) -> int:
        """Reduce arbitrary bytes into a scalar (used by Fiat-Shamir hashing)."""
        return int.from_bytes(hashlib.sha512(data).digest(), "little") % self.order

    def encode_scalar(self, scalar: int) -> bytes:
        """Encode a scalar as 32 little-endian bytes."""
        return (scalar % self.order).to_bytes(self.scalar_size, "little")

    def decode_scalar(self, data: bytes) -> int:
        """Decode a 32-byte little-endian scalar."""
        if len(data) != self.scalar_size:
            raise DecodingError(f"scalar encoding must be {self.scalar_size} bytes")
        return int.from_bytes(data, "little") % self.order

    # -- elements ------------------------------------------------------------

    def identity(self) -> Point:
        """Return the group identity element."""
        return _IDENTITY

    def base(self) -> Point:
        """Return the standard base point of the prime-order subgroup."""
        return _BASE_POINT

    def add(self, left: Point, right: Point) -> Point:
        """Return the group operation (point addition) of two elements."""
        return _edwards_add(left, right)

    def neg(self, point: Point) -> Point:
        """Return the inverse element of ``point``."""
        return Point((-point.x) % _P, point.y, point.z, (-point.t) % _P)

    def sub(self, left: Point, right: Point) -> Point:
        """Return ``left - right`` (the "division" used by the blame analysis)."""
        return self.add(left, self.neg(right))

    def sum(self, points: Iterable[Point]) -> Point:
        """Return the aggregate (sum) of the points, used by AHS verification."""
        total = _IDENTITY
        for point in points:
            total = _edwards_add(total, point)
        return total

    def scalar_mult(self, point: Point, scalar: int) -> Point:
        """Return ``scalar * point`` using a 4-bit fixed-window ladder.

        Multiplications by the standard base point are routed to the
        precomputed comb table of :meth:`base_mult`.
        """
        scalar %= self.order
        if scalar == 0 or point.is_identity():
            return _IDENTITY
        if point is _BASE_POINT or point == _BASE_POINT:
            return self.base_mult(scalar)
        return _windowed_mult(point, _scalar_windows(scalar))

    def scalar_mult_slow(self, point: Point, scalar: int) -> Point:
        """Reference double-and-add ladder (kept for tests and benchmarks)."""
        scalar %= self.order
        if scalar == 0 or point.is_identity():
            return _IDENTITY
        result = _IDENTITY
        addend = point
        while scalar:
            if scalar & 1:
                result = _edwards_add(result, addend)
            addend = _edwards_double(addend)
            scalar >>= 1
        return result

    def base_mult(self, scalar: int) -> Point:
        """Return ``scalar * B`` via the fixed-base comb table (additions only)."""
        scalar %= self.order
        if scalar == 0:
            return _IDENTITY
        comb = _base_comb()
        result = _IDENTITY
        index = 0
        while scalar:
            digit = scalar & (_WINDOW_SIZE - 1)
            if digit:
                result = _edwards_add(result, comb[index][digit - 1])
            scalar >>= _WINDOW_BITS
            index += 1
        return result

    def scalar_mult_batch(self, points: Sequence[Point], scalar: int) -> List[Point]:
        """Return ``[scalar · P for P in points]``, recoding the scalar once.

        This is the blinding fast path of :meth:`ChainMember.process_round
        <repro.mixnet.ahs.ChainMember.process_round>`: one chain member
        multiplies every submission's DH key by the same blinding secret.
        """
        scalar %= self.order
        if scalar == 0:
            return [_IDENTITY for _ in points]
        digits = _scalar_windows(scalar)
        return [
            _IDENTITY if point.is_identity() else _windowed_mult(point, digits)
            for point in points
        ]

    def multi_scalar_accumulate(self, points: Sequence[Point], scalars: Sequence[int]) -> Point:
        """Return ``Σ sᵢ·Pᵢ`` with one shared doubling chain (Straus's trick)."""
        if len(points) != len(scalars):
            raise ConfigurationError("points and scalars must have the same length")
        terms = []
        for point, scalar in zip(points, scalars):
            scalar %= self.order
            if scalar == 0 or point.is_identity():
                continue
            terms.append((_window_table(point), _scalar_windows(scalar)))
        if not terms:
            return _IDENTITY
        result = _IDENTITY
        for index in range(_SCALAR_WINDOWS - 1, -1, -1):
            result = _edwards_double(_edwards_double(_edwards_double(_edwards_double(result))))
            for table, digits in terms:
                digit = digits[index]
                if digit:
                    result = _edwards_add(result, table[digit - 1])
        return result

    def exp(self, point: Point, scalar: int) -> Point:
        """Alias of :meth:`scalar_mult` using the paper's multiplicative notation."""
        return self.scalar_mult(point, scalar)

    def diffie_hellman(self, public: Point, secret: int) -> Point:
        """Return the Diffie-Hellman shared element ``DH(public, secret)``."""
        return self.scalar_mult(public, secret)

    # -- encoding ------------------------------------------------------------

    def encode(self, point: Point) -> bytes:
        """Encode a point in the standard 32-byte compressed form."""
        return _point_encoding(point)

    def decode(self, data: bytes) -> Point:
        """Decode a 32-byte compressed point.

        Raises :class:`DecodingError` for malformed encodings.  The caller is
        responsible for rejecting points outside the prime-order subgroup
        where that matters (the protocol only ever transmits multiples of the
        base point, and tests verify subgroup membership explicitly).
        """
        if len(data) != self.element_size:
            raise DecodingError(f"element encoding must be {self.element_size} bytes")
        sign = data[31] >> 7
        y = int.from_bytes(bytes(data[:31]) + bytes([data[31] & 0x7F]), "little")
        if y >= _P:
            raise DecodingError("point y coordinate out of range")
        x = _recover_x(y, sign)
        point = _point_from_affine(x, y)
        # The input bytes ARE the canonical encoding (encode(decode(d)) == d
        # for any accepted d), so memoise them: the window-table cache keys
        # on it, and re-encoding later would cost an affine inversion.
        object.__setattr__(point, "_enc", bytes(data))
        return point

    def is_in_prime_subgroup(self, point: Point) -> bool:
        """Return ``True`` when ``point`` lies in the prime-order subgroup."""
        return self.scalar_mult(point, self.order).is_identity()

    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash a transcript into a scalar (Fiat-Shamir challenge derivation)."""
        hasher = hashlib.sha512()
        for part in parts:
            hasher.update(len(part).to_bytes(8, "big"))
            hasher.update(part)
        return int.from_bytes(hasher.digest(), "little") % self.order


class ModPGroup:
    """Quadratic-residue subgroup of ``Z_p*`` for a deterministically found safe prime.

    Elements are plain integers in ``[1, p-1]``.  This group is *not* secure
    (the primes are tiny); it exists so that property-based tests of
    group-generic protocol code can run orders of magnitude faster than with
    the curve.  The interface mirrors :class:`Ed25519Group`.
    """

    def __init__(self, bits: int = 96, seed: str = "xrd-modp") -> None:
        self.prime = field.find_safe_prime(bits, seed=seed)
        self.order = (self.prime - 1) // 2
        self.generator = field.find_generator_of_prime_subgroup(self.prime)
        # Encode elements in the same 32-byte width as the curve group so the
        # fixed-size wire formats are identical regardless of the group used.
        self.element_size = 32
        self.scalar_size = 32
        if (self.prime.bit_length() + 7) // 8 > self.element_size:
            raise ConfigurationError("ModPGroup primes above 256 bits are not supported")

    # -- scalars -------------------------------------------------------------

    def random_scalar(self, rng: Optional[object] = None) -> int:
        while True:
            if rng is None:
                # xrdlint: disable=XRD101 - CSPRNG is the production default; seeded runs pass rng
                value = secrets.randbelow(self.order)
            else:
                value = rng.randrange(self.order)
            if value != 0:
                return value

    def encode_scalar(self, scalar: int) -> bytes:
        return (scalar % self.order).to_bytes(self.scalar_size, "big")

    def decode_scalar(self, data: bytes) -> int:
        return int.from_bytes(data, "big") % self.order

    # -- elements ------------------------------------------------------------

    def identity(self) -> int:
        return 1

    def base(self) -> int:
        return self.generator

    def add(self, left: int, right: int) -> int:
        return (left * right) % self.prime

    def neg(self, element: int) -> int:
        return field.inverse_mod(element, self.prime)

    def sub(self, left: int, right: int) -> int:
        return (left * field.inverse_mod(right, self.prime)) % self.prime

    def sum(self, elements: Iterable[int]) -> int:
        total = 1
        for element in elements:
            total = (total * element) % self.prime
        return total

    def scalar_mult(self, element: int, scalar: int) -> int:
        return pow(element, scalar % self.order, self.prime)

    def base_mult(self, scalar: int) -> int:
        return pow(self.generator, scalar % self.order, self.prime)

    def scalar_mult_batch(self, elements: Sequence[int], scalar: int) -> List[int]:
        exponent = scalar % self.order
        native = _kernels.modp_scalar_mult_batch(self.prime, elements, exponent)
        if native is not None:
            return native
        return [pow(element, exponent, self.prime) for element in elements]

    def fixed_point_mult_batch(self, element: int, scalars: Sequence[int]) -> List[int]:
        """Return ``[element^s for s in scalars]`` — one base, many exponents.

        The population layer's shape: every user of a chain exponentiates
        the same mixing (or aggregate inner) key by her own scalar.  The
        native kernel builds the base's window table once for the batch.
        """
        exponents = [scalar % self.order for scalar in scalars]
        native = _kernels.modp_fixed_mult_batch(self.prime, element, exponents)
        if native is not None:
            return native
        return [pow(element, exponent, self.prime) for exponent in exponents]

    def multi_scalar_accumulate(self, elements: Sequence[int], scalars: Sequence[int]) -> int:
        if len(elements) != len(scalars):
            raise ConfigurationError("elements and scalars must have the same length")
        exponents = [scalar % self.order for scalar in scalars]
        native = _kernels.modp_multi_scalar_accumulate(self.prime, elements, exponents)
        if native is not None:
            return native
        total = 1
        for element, exponent in zip(elements, exponents):
            total = (total * pow(element, exponent, self.prime)) % self.prime
        return total

    def exp(self, element: int, scalar: int) -> int:
        return self.scalar_mult(element, scalar)

    def diffie_hellman(self, public: int, secret: int) -> int:
        return self.scalar_mult(public, secret)

    def encode(self, element: int) -> bytes:
        return int(element).to_bytes(self.element_size, "big")

    def decode(self, data: bytes) -> int:
        if len(data) != self.element_size:
            raise DecodingError(f"element encoding must be {self.element_size} bytes")
        value = int.from_bytes(data, "big")
        if not 1 <= value < self.prime:
            raise DecodingError("element out of range")
        return value

    def is_in_prime_subgroup(self, element: int) -> bool:
        return pow(element, self.order, self.prime) == 1

    def hash_to_scalar(self, *parts: bytes) -> int:
        hasher = hashlib.sha512()
        for part in parts:
            hasher.update(len(part).to_bytes(8, "big"))
            hasher.update(part)
        return int.from_bytes(hasher.digest(), "big") % self.order


_DEFAULT_GROUP: Optional[Ed25519Group] = None


def default_group() -> Ed25519Group:
    """Return the process-wide default group (edwards25519)."""
    global _DEFAULT_GROUP
    if _DEFAULT_GROUP is None:
        _DEFAULT_GROUP = Ed25519Group()
    return _DEFAULT_GROUP


def aggregate_public_keys(group, public_keys: Sequence) -> object:
    """Return the aggregate (sum/product) of a sequence of public keys.

    Used for the AHS inner envelope, which is encrypted under the aggregate
    inner public key ``Σ ipk_i`` so that decryption requires every server's
    per-round inner secret.
    """
    return group.sum(public_keys)


def multi_scalar_mult(group, points: Sequence, scalars: Sequence[int]) -> List:
    """Return ``[s_i * P_i]`` element-wise; a convenience for batch blinding."""
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have the same length")
    return [group.scalar_mult(point, scalar) for point, scalar in zip(points, scalars)]


def multi_scalar_accumulate(group, points: Sequence, scalars: Sequence[int]):
    """Return ``Σ s_i·P_i``, via the group's fused fast path when it has one.

    NIZK verification rewrites its equality checks as one accumulation
    (``s·G − c·P == R``), which shares the doubling chain between the two
    terms on the curve; groups without a fast path fall back to the generic
    multiply-then-sum.
    """
    fused = getattr(group, "multi_scalar_accumulate", None)
    if fused is not None:
        return fused(points, scalars)
    return group.sum(multi_scalar_mult(group, points, scalars))


def scalar_mult_batch(group, points: Sequence, scalar: int) -> List:
    """Return ``[scalar·P for P in points]`` via the group's batch fast path."""
    batch = getattr(group, "scalar_mult_batch", None)
    if batch is not None:
        return batch(points, scalar)
    return [group.scalar_mult(point, scalar) for point in points]


def fixed_point_mult_batch(group, point, scalars: Sequence[int]) -> List:
    """Return ``[s·P for s in scalars]`` — one point, many scalars.

    The dual of :func:`scalar_mult_batch`, and the shape of the population
    layer's whole-chain client crypto: every user of a chain multiplies the
    *same* public key (the aggregate inner key, or one mixing key) by her own
    fresh scalar.  On the curve the point's window table is built once for
    the whole batch; ``scalar_mult`` would rebuild or cache-lookup it per
    call.
    """
    if isinstance(group, Ed25519Group):
        reduced = [scalar % group.order for scalar in scalars]
        if point is _BASE_POINT or point == _BASE_POINT:
            return [group.base_mult(scalar) for scalar in reduced]
        if point.is_identity():
            return [_IDENTITY for _ in reduced]
        table = _window_table(point)
        return [
            _IDENTITY
            if scalar == 0
            else _windowed_mult_with_table(table, _scalar_windows(scalar))
            for scalar in reduced
        ]
    batch = getattr(group, "fixed_point_mult_batch", None)
    if batch is not None:
        return batch(point, scalars)
    return [group.scalar_mult(point, scalar) for scalar in scalars]
