"""Key pairs and the public-key directory (PKI stand-in).

XRD assumes "a public key infrastructure that can be used to securely share
public keys of online servers and users with all participants" (§3.1).  The
:class:`KeyDirectory` plays that role inside a simulation: users and servers
register their public keys and every participant reads from the same
directory.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.group import default_group
from repro.errors import ConfigurationError

__all__ = ["KeyPair", "KeyDirectory"]


@dataclass(frozen=True)
class KeyPair:
    """A Diffie-Hellman key pair ``(pk = sk·B, sk)`` over the protocol group."""

    secret: int = field(repr=False)
    public: object = field(repr=False)
    public_bytes: bytes = field(repr=False)

    @classmethod
    def generate(cls, group=None, rng: Optional[object] = None) -> "KeyPair":
        """Generate a fresh key pair on ``group`` (default: edwards25519)."""
        group = group or default_group()
        secret = group.random_scalar(rng)
        public = group.base_mult(secret)
        return cls(secret=secret, public=public, public_bytes=group.encode(public))

    @classmethod
    def from_secret(cls, secret: int, group=None) -> "KeyPair":
        """Reconstruct a key pair from an existing secret scalar."""
        group = group or default_group()
        secret %= group.order
        if secret == 0:
            raise ConfigurationError("secret scalar must be non-zero")
        public = group.base_mult(secret)
        return cls(secret=secret, public=public, public_bytes=group.encode(public))

    def identity_secret_bytes(self) -> bytes:
        """Secret bytes used to derive per-chain loopback keys."""
        return self.secret.to_bytes(32, "little")


@dataclass
class KeyDirectory:
    """In-memory public-key directory shared by all simulated participants.

    The directory maps an opaque participant name to its encoded public key,
    and keeps users and servers in separate namespaces.  It also hands out
    deterministic registration order, which the chain-selection algorithm
    uses to place users into groups reproducibly.
    """

    group: object = field(default_factory=default_group)
    _users: Dict[str, bytes] = field(default_factory=dict)
    _servers: Dict[str, bytes] = field(default_factory=dict)

    def register_user(self, name: str, public_bytes: bytes) -> None:
        """Register (or re-register) a user's public key."""
        self._users[name] = bytes(public_bytes)

    def register_server(self, name: str, public_bytes: bytes) -> None:
        """Register (or re-register) a server's long-term public key."""
        self._servers[name] = bytes(public_bytes)

    def user_public_key(self, name: str) -> bytes:
        if name not in self._users:
            raise ConfigurationError(f"unknown user {name!r}")
        return self._users[name]

    def server_public_key(self, name: str) -> bytes:
        if name not in self._servers:
            raise ConfigurationError(f"unknown server {name!r}")
        return self._servers[name]

    def users(self) -> List[str]:
        """Return the registered user names in registration order."""
        return list(self._users)

    def servers(self) -> List[str]:
        """Return the registered server names in registration order."""
        return list(self._servers)

    def __contains__(self, name: str) -> bool:
        return name in self._users or name in self._servers

    def __len__(self) -> int:
        return len(self._users) + len(self._servers)


def random_bytes(length: int) -> bytes:
    """Return ``length`` cryptographically random bytes."""
    return secrets.token_bytes(length)
