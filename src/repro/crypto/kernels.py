"""Crypto kernel tier selection and native-call wrappers (DESIGN.md §11).

Three tiers run the batched hot loops, all bit-identical:

* ``python`` — the scalar reference implementations, numpy disabled;
* ``numpy``  — the vectorised ChaCha20 column batch (the pre-native
  default whenever numpy is importable);
* ``native`` — the ``_xrdkernels`` cffi extension for the four proven
  hot kernels, falling back *per function* to the lower tiers for
  anything it does not cover (or cannot run, e.g. a >256-bit modulus).

The active tier is process-global state, resolved lazily on first query
from, in priority order: an explicit :func:`set_active_kernel` call
(``DeploymentConfig.crypto_kernel`` routes here), the
``XRD_CRYPTO_KERNEL`` environment variable, then ``auto`` (best
available).  Requesting ``native`` when the extension cannot be loaded
downgrades with a single :class:`RuntimeWarning` — never an error — so
the repo installs and passes tier-1 on a machine with no C compiler.

The wrappers in this module (:func:`chacha20_blocks`,
:func:`aead_seal_batch`, ...) return ``None`` when the native path is
unavailable or declines the input; callers treat ``None`` as "use the
reference path".  That convention keeps every fallback decision local to
one ``if`` at each call site and makes the differential fuzzers trivial
to aim at the raw kernels.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.registry import CRYPTO_KERNELS, CryptoKernelKind

__all__ = [
    "active_kernel",
    "set_active_kernel",
    "resolve_kernel",
    "native_enabled",
    "numpy_enabled",
    "native_available",
    "chacha20_blocks",
    "aead_seal_batch",
    "aead_open_batch",
    "modp_scalar_mult_batch",
    "modp_fixed_mult_batch",
    "modp_multi_scalar_accumulate",
]

#: Largest modulus the native Montgomery kernels accept (4×64-bit limbs,
#: matching the 32-byte ModPGroup element encoding).
_MODP_LIMIT_BITS = 256

_active: Optional[CryptoKernelKind] = None
_warned_downgrade = False


def _best_available() -> CryptoKernelKind:
    if _load_native() is not None:
        return CryptoKernelKind.NATIVE
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on numpy-less installs
        return CryptoKernelKind.PYTHON
    return CryptoKernelKind.NUMPY


def _load_native():
    from repro import native

    return native.load()


def _downgrade_warning(requested: str, got: CryptoKernelKind) -> None:
    global _warned_downgrade
    if _warned_downgrade:
        return
    _warned_downgrade = True
    from repro import native

    cause = native.load_error()
    detail = f" ({cause})" if cause is not None else ""
    warnings.warn(
        f"crypto kernel {requested!r} requested but the _xrdkernels extension "
        f"is unavailable{detail}; falling back to {got.value!r}",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_kernel(requested: Union[str, CryptoKernelKind, None]) -> CryptoKernelKind:
    """Map a requested tier (or ``None``/``"auto"``) to a usable one.

    ``native`` degrades to the best lower tier (with one warning) when the
    extension is unavailable; ``python`` and ``numpy`` are always usable
    (the numpy tier itself falls back scalar-wise inside chacha20.py when
    numpy is not importable, preserving pre-registry behaviour).
    """
    if requested is None or requested == "auto":
        return _best_available()
    kind = CryptoKernelKind(requested)
    if kind is CryptoKernelKind.NATIVE and _load_native() is None:
        best = _best_available()
        _downgrade_warning(str(requested), best)
        return best
    return kind


def active_kernel() -> CryptoKernelKind:
    """The tier currently steering the batched hot loops."""
    global _active
    if _active is None:
        env = os.environ.get("XRD_CRYPTO_KERNEL", "auto").strip().lower()
        if env not in ("auto", "") and env not in set(CryptoKernelKind):
            raise ConfigurationError(
                f"XRD_CRYPTO_KERNEL must be one of "
                f"{[k.value for k in CryptoKernelKind]} or 'auto', got {env!r}"
            )
        _active = resolve_kernel(env if env else "auto")
    return _active


def set_active_kernel(kind: Union[str, CryptoKernelKind, None]) -> CryptoKernelKind:
    """Select the kernel tier for this process; returns the resolved tier.

    ``None`` re-enables lazy resolution (environment / auto).  Note this
    is process-global: a ``DeploymentConfig.crypto_kernel`` setting
    applies to every deployment in the process, matching how the numpy
    fast path has always behaved.
    """
    global _active
    if kind is None:
        _active = None
        return active_kernel()
    _active = resolve_kernel(kind)
    return _active


def native_enabled() -> bool:
    return active_kernel() is CryptoKernelKind.NATIVE


def numpy_enabled() -> bool:
    """Whether the vectorised numpy paths may run (native tier includes them
    as its own fallback for anything the extension does not cover)."""
    return active_kernel() is not CryptoKernelKind.PYTHON


def native_available() -> bool:
    """Whether the extension itself is loadable (independent of the tier)."""
    return _load_native() is not None


def _handle():
    if not native_enabled():
        return None
    return _load_native()


# ---------------------------------------------------------------------------
# Native-call wrappers.  Each returns None when the native path is off,
# unavailable, or declines the input — the caller then runs its reference
# path.  Outputs are plain bytes in exactly the layouts the Python
# reference produces.
# ---------------------------------------------------------------------------


def chacha20_blocks(keys: Sequence[bytes], nonces: Sequence[bytes],
                    counters: Sequence[int]) -> Optional[bytes]:
    """Concatenated 64-byte keystream blocks, or ``None``.

    Inputs must already be validated (32-byte keys, 12-byte nonces,
    uint32 counters) — this mirrors where the dispatch sits inside
    ``chacha20_blocks_batch``.
    """
    handle = _handle()
    if handle is None:
        return None
    ffi, lib = handle
    count = len(keys)
    out = bytearray(64 * count)
    if count:
        rc = lib.xrd_chacha20_blocks(
            b"".join(keys), b"".join(nonces),
            ffi.new("uint32_t[]", list(counters)), count,
            ffi.from_buffer(out, require_writable=True),
        )
        if rc != 0:  # pragma: no cover - no rejecting inputs after validation
            return None
    return bytes(out)


def _offsets(lengths: Sequence[int]) -> List[int]:
    offs = [0]
    for length in lengths:
        offs.append(offs[-1] + length)
    return offs


def aead_seal_batch(keys: Sequence[bytes], nonces: Sequence[bytes],
                    plaintexts: Sequence[bytes], aad: bytes) -> Optional[List[bytes]]:
    """Whole-batch ChaCha20-Poly1305 seal (ct || tag per message), or ``None``."""
    handle = _handle()
    if handle is None:
        return None
    ffi, lib = handle
    count = len(keys)
    pt_offs = _offsets([len(pt) for pt in plaintexts])
    out_offs = _offsets([len(pt) + 16 for pt in plaintexts])
    out = bytearray(out_offs[-1])
    if count:
        rc = lib.xrd_aead_seal_batch(
            b"".join(keys), b"".join(nonces), count,
            b"".join(plaintexts), ffi.new("uint64_t[]", pt_offs),
            aad, len(aad),
            ffi.from_buffer(out, require_writable=True),
            ffi.new("uint64_t[]", out_offs),
        )
        if rc != 0:  # pragma: no cover - offsets are constructed consistent
            return None
    return [bytes(out[out_offs[i]:out_offs[i + 1]]) for i in range(count)]


def aead_open_batch(keys: Sequence[bytes], nonces: Sequence[bytes],
                    datas: Sequence[bytes], aad: bytes,
                    ) -> Optional[List[Tuple[bool, Optional[bytes]]]]:
    """Whole-batch verify-then-decrypt cascade, or ``None``.

    Per message: ``(True, plaintext)`` on tag match, ``(False, None)``
    otherwise (including data shorter than one tag) — the exact contract
    of the reference ``adec``.
    """
    handle = _handle()
    if handle is None:
        return None
    ffi, lib = handle
    count = len(keys)
    ct_offs = _offsets([len(d) for d in datas])
    pt_offs = _offsets([max(0, len(d) - 16) for d in datas])
    plain = bytearray(pt_offs[-1])
    ok = bytearray(count)
    if count:
        rc = lib.xrd_aead_open_batch(
            b"".join(keys), b"".join(nonces), count,
            b"".join(datas), ffi.new("uint64_t[]", ct_offs),
            aad, len(aad),
            ffi.from_buffer(plain, require_writable=True),
            ffi.new("uint64_t[]", pt_offs),
            ffi.from_buffer(ok, require_writable=True),
        )
        if rc != 0:  # pragma: no cover - offsets are constructed consistent
            return None
    return [
        (True, bytes(plain[pt_offs[i]:pt_offs[i + 1]])) if ok[i] else (False, None)
        for i in range(count)
    ]


def _modp_ready(prime: int) -> bool:
    return prime.bit_length() <= _MODP_LIMIT_BITS and prime % 2 == 1


def modp_scalar_mult_batch(prime: int, elements: Sequence[int],
                           exponent: int) -> Optional[List[int]]:
    """``[pow(e, exponent, prime) for e in elements]`` natively, or ``None``.

    ``exponent`` must already be reduced into ``[0, 2^256)`` (callers
    reduce mod the group order first, as the reference path does).
    """
    handle = _handle()
    if handle is None or not _modp_ready(prime):
        return None
    ffi, lib = handle
    count = len(elements)
    out = bytearray(32 * count)
    if count:
        try:
            rc = lib.xrd_modp_scalar_mult_batch(
                prime.to_bytes(32, "big"),
                b"".join(e.to_bytes(32, "big") for e in elements), count,
                exponent.to_bytes(32, "big"),
                ffi.from_buffer(out, require_writable=True),
            )
        except OverflowError:  # an input outside [0, 2^256): let pow() handle it
            return None
        if rc != 0:
            return None
    return [int.from_bytes(out[32 * i:32 * i + 32], "big") for i in range(count)]


def modp_fixed_mult_batch(prime: int, element: int,
                          exponents: Sequence[int]) -> Optional[List[int]]:
    """``[pow(element, x, prime) for x in exponents]`` natively, or ``None``."""
    handle = _handle()
    if handle is None or not _modp_ready(prime):
        return None
    ffi, lib = handle
    count = len(exponents)
    out = bytearray(32 * count)
    if count:
        try:
            rc = lib.xrd_modp_fixed_mult_batch(
                prime.to_bytes(32, "big"), element.to_bytes(32, "big"),
                b"".join(x.to_bytes(32, "big") for x in exponents), count,
                ffi.from_buffer(out, require_writable=True),
            )
        except OverflowError:
            return None
        if rc != 0:
            return None
    return [int.from_bytes(out[32 * i:32 * i + 32], "big") for i in range(count)]


def modp_multi_scalar_accumulate(prime: int, elements: Sequence[int],
                                 exponents: Sequence[int]) -> Optional[int]:
    """``prod(pow(e, x, prime))`` fused in one native pass, or ``None``."""
    handle = _handle()
    if handle is None or not _modp_ready(prime):
        return None
    ffi, lib = handle
    count = len(elements)
    out = bytearray(32)
    try:
        rc = lib.xrd_modp_multi_scalar_accumulate(
            prime.to_bytes(32, "big"),
            b"".join(e.to_bytes(32, "big") for e in elements),
            b"".join(x.to_bytes(32, "big") for x in exponents), count,
            ffi.from_buffer(out, require_writable=True),
        )
    except OverflowError:
        return None
    if rc != 0:
        return None
    return int.from_bytes(out, "big")


# The registry's factory contract instantiates components; for kernels the
# "component" is the process-wide tier itself, so each factory selects its
# tier and returns the resolved kind.
for _kind in CryptoKernelKind:
    CRYPTO_KERNELS.register(_kind, (lambda k: lambda: set_active_kernel(k))(_kind))
del _kind


def reset_kernel_for_tests() -> None:
    """Forget the resolved tier and downgrade warning (test hook only)."""
    global _active, _warned_downgrade
    _active = None
    _warned_downgrade = False
