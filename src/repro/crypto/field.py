"""Modular-arithmetic helpers shared by the group implementations.

The functions here are deliberately small and dependency-free: modular
inverse, modular square roots for ``p ≡ 5 (mod 8)`` (the Ed25519 prime),
Miller-Rabin primality testing, and deterministic safe-prime search used by
the test-oriented :class:`repro.crypto.group.ModPGroup`.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.errors import CryptoError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)


def inverse_mod(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`CryptoError` if the inverse does not exist.
    """
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    value %= modulus
    if value == 0:
        raise CryptoError("zero has no multiplicative inverse")
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # pragma: no cover - only for composite moduli
        raise CryptoError(f"no inverse for {value} mod {modulus}") from exc


def sqrt_mod_p58(value: int, prime: int) -> int:
    """Return a square root of ``value`` modulo a prime ``p ≡ 5 (mod 8)``.

    This is the standard Ed25519 decompression square root: compute
    ``r = value ** ((p + 3) / 8)``; if ``r**2 == -value`` then multiply by
    ``sqrt(-1) = 2 ** ((p - 1) / 4)``.  Raises :class:`CryptoError` when
    ``value`` is not a quadratic residue.
    """
    if prime % 8 != 5:
        raise CryptoError("sqrt_mod_p58 requires p ≡ 5 (mod 8)")
    value %= prime
    root = pow(value, (prime + 3) // 8, prime)
    if (root * root - value) % prime == 0:
        return root
    sqrt_minus_one = pow(2, (prime - 1) // 4, prime)
    root = (root * sqrt_minus_one) % prime
    if (root * root - value) % prime == 0:
        return root
    raise CryptoError("value is not a quadratic residue")


def is_probable_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with deterministic, hash-derived bases.

    The bases are derived from the candidate itself so the test is
    reproducible across runs while still exercising ``rounds`` independent
    witnesses.
    """
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for i in range(rounds):
        seed = hashlib.sha256(f"mr|{candidate}|{i}".encode()).digest()
        base = 2 + int.from_bytes(seed, "big") % (candidate - 3)
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def find_safe_prime(bits: int, seed: str = "xrd-safe-prime") -> int:
    """Deterministically find a safe prime ``p = 2q + 1`` with ``bits`` bits.

    Used only by the test-oriented :class:`~repro.crypto.group.ModPGroup`;
    the searches are seeded so every run of the test suite uses the same
    parameters.  ``bits`` larger than ~192 becomes slow in pure Python and is
    rejected.
    """
    if bits < 8:
        raise CryptoError("safe prime must have at least 8 bits")
    if bits > 192:
        raise CryptoError("safe-prime search above 192 bits is too slow; use Ed25519Group")
    counter = 0
    while True:
        material = hashlib.sha256(f"{seed}|{bits}|{counter}".encode()).digest()
        q = int.from_bytes(material, "big") % (1 << (bits - 1))
        q |= (1 << (bits - 2)) | 1  # force top bit (of q) and oddness
        counter += 1
        if not is_probable_prime(q, rounds=16):
            continue
        p = 2 * q + 1
        if is_probable_prime(p, rounds=16):
            return p


def find_generator_of_prime_subgroup(prime: int) -> int:
    """Return a generator of the order-``q`` subgroup of ``Z_p*`` for a safe prime.

    For a safe prime ``p = 2q + 1`` the quadratic residues form the subgroup
    of prime order ``q``; squaring any element other than ``±1`` lands in it.
    """
    q = (prime - 1) // 2
    candidate = 2
    while True:
        generator = pow(candidate, 2, prime)
        if generator not in (0, 1, prime - 1) and pow(generator, q, prime) == 1:
            return generator
        candidate += 1


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer as fixed-length big-endian bytes."""
    return int(value).to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode big-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "big")
