"""Authenticated encryption: ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

The paper abstracts this as ``AEnc(s, nonce, m)`` / ``ADec(s, nonce, c)``
(§3.1) with two properties that XRD relies on: a ciphertext that
authenticates under a key cannot be produced without that key, and the same
ciphertext does not authenticate under two different keys (except with
negligible probability).  The encrypt-then-MAC style construction here has
both properties.

``ADec`` follows the paper's convention of returning a ``(ok, plaintext)``
pair instead of raising, because the mix servers must treat authentication
failure as a signal to start the blame protocol rather than as an exception.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.constants import AEAD_NONCE_SIZE, AEAD_TAG_SIZE
from repro.crypto.chacha20 import chacha20_block, chacha20_encrypt
from repro.crypto.poly1305 import poly1305_mac, poly1305_verify
from repro.errors import CryptoError

__all__ = ["AuthenticatedCiphertext", "aenc", "adec", "ciphertext_overhead"]


@dataclass(frozen=True)
class AuthenticatedCiphertext:
    """A ciphertext together with its Poly1305 tag."""

    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialise as ``ciphertext || tag``."""
        return self.ciphertext + self.tag

    @classmethod
    def from_bytes(cls, data: bytes) -> "AuthenticatedCiphertext":
        """Parse ``ciphertext || tag``; the tag is the trailing 16 bytes."""
        if len(data) < AEAD_TAG_SIZE:
            raise CryptoError("authenticated ciphertext too short")
        return cls(ciphertext=data[:-AEAD_TAG_SIZE], tag=data[-AEAD_TAG_SIZE:])

    def __len__(self) -> int:
        return len(self.ciphertext) + len(self.tag)


def _poly1305_key(key: bytes, nonce: bytes) -> bytes:
    return chacha20_block(key, 0, nonce)[:32]


def _normalise_nonce(nonce) -> bytes:
    """Accept either a 12-byte nonce or a round number and normalise it."""
    if isinstance(nonce, int):
        if nonce < 0:
            raise CryptoError("round number nonce must be non-negative")
        return nonce.to_bytes(AEAD_NONCE_SIZE, "big")
    if isinstance(nonce, (bytes, bytearray)):
        if len(nonce) != AEAD_NONCE_SIZE:
            raise CryptoError(f"nonce must be {AEAD_NONCE_SIZE} bytes")
        return bytes(nonce)
    raise CryptoError("nonce must be an int round number or 12 bytes")


def _mac_data(aad: bytes, ciphertext: bytes) -> bytes:
    def pad16(data: bytes) -> bytes:
        remainder = len(data) % 16
        return data + (b"\x00" * (16 - remainder) if remainder else b"")

    return (
        pad16(aad)
        + pad16(ciphertext)
        + struct.pack("<Q", len(aad))
        + struct.pack("<Q", len(ciphertext))
    )


def aenc(key: bytes, nonce, plaintext: bytes, aad: bytes = b"") -> bytes:
    """``AEnc(s, nonce, m)``: encrypt and authenticate ``plaintext``.

    ``nonce`` is typically the XRD round number; ``aad`` carries any
    additional data bound to the ciphertext (e.g., a protocol label).
    Returns ``ciphertext || tag``.
    """
    if len(key) != 32:
        raise CryptoError("AEAD key must be 32 bytes")
    nonce_bytes = _normalise_nonce(nonce)
    ciphertext = chacha20_encrypt(key, nonce_bytes, plaintext, initial_counter=1)
    otk = _poly1305_key(key, nonce_bytes)
    tag = poly1305_mac(_mac_data(aad, ciphertext), otk)
    return ciphertext + tag


def adec(key: bytes, nonce, data: bytes, aad: bytes = b"") -> Tuple[bool, Optional[bytes]]:
    """``ADec(s, nonce, c)``: verify and decrypt ``ciphertext || tag``.

    Returns ``(True, plaintext)`` on success and ``(False, None)`` when the
    key is wrong, the ciphertext was tampered with, or the encoding is
    malformed — mirroring the paper's ``(b, m)`` return convention.
    """
    if len(key) != 32:
        raise CryptoError("AEAD key must be 32 bytes")
    try:
        nonce_bytes = _normalise_nonce(nonce)
    except CryptoError:
        return False, None
    if len(data) < AEAD_TAG_SIZE:
        return False, None
    ciphertext, tag = data[:-AEAD_TAG_SIZE], data[-AEAD_TAG_SIZE:]
    otk = _poly1305_key(key, nonce_bytes)
    if not poly1305_verify(_mac_data(aad, ciphertext), otk, tag):
        return False, None
    plaintext = chacha20_encrypt(key, nonce_bytes, ciphertext, initial_counter=1)
    return True, plaintext


def ciphertext_overhead(layers: int = 1) -> int:
    """Bytes of overhead added by ``layers`` nested authenticated encryptions."""
    return layers * AEAD_TAG_SIZE
