"""Authenticated encryption: ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

The paper abstracts this as ``AEnc(s, nonce, m)`` / ``ADec(s, nonce, c)``
(§3.1) with two properties that XRD relies on: a ciphertext that
authenticates under a key cannot be produced without that key, and the same
ciphertext does not authenticate under two different keys (except with
negligible probability).  The encrypt-then-MAC style construction here has
both properties.

``ADec`` follows the paper's convention of returning a ``(ok, plaintext)``
pair instead of raising, because the mix servers must treat authentication
failure as a signal to start the blame protocol rather than as an exception.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.constants import AEAD_NONCE_SIZE, AEAD_TAG_SIZE
from repro.crypto import kernels as _kernels
from repro.crypto.chacha20 import (
    BLOCK_SIZE,
    chacha20_block,
    chacha20_blocks_batch,
    chacha20_encrypt,
    chacha20_keystreams,
    xor_bytes,
)
from repro.crypto.poly1305 import poly1305_mac, poly1305_verify
from repro.errors import CryptoError

__all__ = [
    "AuthenticatedCiphertext",
    "aenc",
    "adec",
    "aenc_batch",
    "adec_batch",
    "ciphertext_overhead",
]


@dataclass(frozen=True, slots=True)
class AuthenticatedCiphertext:
    """A ciphertext together with its Poly1305 tag."""

    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialise as ``ciphertext || tag``."""
        return self.ciphertext + self.tag

    @classmethod
    def from_bytes(cls, data: bytes) -> "AuthenticatedCiphertext":
        """Parse ``ciphertext || tag``; the tag is the trailing 16 bytes."""
        if len(data) < AEAD_TAG_SIZE:
            raise CryptoError("authenticated ciphertext too short")
        return cls(ciphertext=data[:-AEAD_TAG_SIZE], tag=data[-AEAD_TAG_SIZE:])

    def __len__(self) -> int:
        return len(self.ciphertext) + len(self.tag)


def _poly1305_key(key: bytes, nonce: bytes) -> bytes:
    return chacha20_block(key, 0, nonce)[:32]


def _normalise_nonce(nonce) -> bytes:
    """Accept either a 12-byte nonce or a round number and normalise it."""
    if isinstance(nonce, int):
        if nonce < 0:
            raise CryptoError("round number nonce must be non-negative")
        return nonce.to_bytes(AEAD_NONCE_SIZE, "big")
    if isinstance(nonce, (bytes, bytearray)):
        if len(nonce) != AEAD_NONCE_SIZE:
            raise CryptoError(f"nonce must be {AEAD_NONCE_SIZE} bytes")
        return bytes(nonce)
    raise CryptoError("nonce must be an int round number or 12 bytes")


def _mac_data(aad: bytes, ciphertext: bytes) -> bytes:
    def pad16(data: bytes) -> bytes:
        remainder = len(data) % 16
        return data + (b"\x00" * (16 - remainder) if remainder else b"")

    return (
        pad16(aad)
        + pad16(ciphertext)
        + struct.pack("<Q", len(aad))
        + struct.pack("<Q", len(ciphertext))
    )


def aenc(key: bytes, nonce, plaintext: bytes, aad: bytes = b"") -> bytes:
    """``AEnc(s, nonce, m)``: encrypt and authenticate ``plaintext``.

    ``nonce`` is typically the XRD round number; ``aad`` carries any
    additional data bound to the ciphertext (e.g., a protocol label).
    Returns ``ciphertext || tag``.
    """
    if len(key) != 32:
        raise CryptoError("AEAD key must be 32 bytes")
    nonce_bytes = _normalise_nonce(nonce)
    ciphertext = chacha20_encrypt(key, nonce_bytes, plaintext, initial_counter=1)
    otk = _poly1305_key(key, nonce_bytes)
    tag = poly1305_mac(_mac_data(aad, ciphertext), otk)
    return ciphertext + tag


def adec(key: bytes, nonce, data: bytes, aad: bytes = b"") -> Tuple[bool, Optional[bytes]]:
    """``ADec(s, nonce, c)``: verify and decrypt ``ciphertext || tag``.

    Returns ``(True, plaintext)`` on success and ``(False, None)`` when the
    key is wrong, the ciphertext was tampered with, or the encoding is
    malformed — mirroring the paper's ``(b, m)`` return convention.
    """
    if len(key) != 32:
        raise CryptoError("AEAD key must be 32 bytes")
    try:
        nonce_bytes = _normalise_nonce(nonce)
    except CryptoError:
        return False, None
    if len(data) < AEAD_TAG_SIZE:
        return False, None
    ciphertext, tag = data[:-AEAD_TAG_SIZE], data[-AEAD_TAG_SIZE:]
    otk = _poly1305_key(key, nonce_bytes)
    if not poly1305_verify(_mac_data(aad, ciphertext), otk, tag):
        return False, None
    plaintext = chacha20_encrypt(key, nonce_bytes, ciphertext, initial_counter=1)
    return True, plaintext


def ciphertext_overhead(layers: int = 1) -> int:
    """Bytes of overhead added by ``layers`` nested authenticated encryptions."""
    return layers * AEAD_TAG_SIZE


# ---------------------------------------------------------------------------
# Batched AEAD: many independent (key, message) pairs in one keystream pass
# ---------------------------------------------------------------------------
#
# The population layer seals whole chains' worth of messages per call (every
# online user of a chain shares the round nonce but owns her own key), and
# the mix servers strip one outer layer from a whole batch at once.  Each
# message needs the Poly1305 one-time-key block (counter 0) plus its payload
# blocks (counters 1…), all under its own key — so the batch flattens to one
# :func:`~repro.crypto.chacha20.chacha20_blocks_batch` call.  The per-message
# outputs are byte-identical to :func:`aenc` / :func:`adec`.


def _batch_keystreams(keys: Sequence[bytes], nonces: Sequence[bytes],
                      lengths: Sequence[int]):
    """Per-message ``(poly1305 one-time key, payload keystream)`` pairs."""
    block_keys: List[bytes] = []
    block_nonces: List[bytes] = []
    block_counters: List[int] = []
    block_counts: List[int] = []
    for key, nonce, length in zip(keys, nonces, lengths):
        blocks = 1 + (length + BLOCK_SIZE - 1) // BLOCK_SIZE
        block_counts.append(blocks)
        block_keys.extend([key] * blocks)
        block_nonces.extend([nonce] * blocks)
        block_counters.extend(range(blocks))
    flat = chacha20_blocks_batch(block_keys, block_nonces, block_counters)
    pairs = []
    offset = 0
    for blocks, length in zip(block_counts, lengths):
        otk = flat[offset:offset + 32]
        payload_stream = flat[offset + BLOCK_SIZE:offset + BLOCK_SIZE + length]
        pairs.append((otk, payload_stream))
        offset += blocks * BLOCK_SIZE
    return pairs


def _normalise_nonces(nonce, count: int) -> List[bytes]:
    if isinstance(nonce, (list, tuple)):
        if len(nonce) != count:
            raise CryptoError("one nonce per message required")
        return [_normalise_nonce(item) for item in nonce]
    return [_normalise_nonce(nonce)] * count


def aenc_batch(keys: Sequence[bytes], nonce, plaintexts: Sequence[bytes],
               aad: bytes = b"") -> List[bytes]:
    """Batched :func:`aenc`: ``[aenc(k, nonce, m) for k, m in zip(...)]``.

    ``nonce`` is shared (a round number or 12-byte nonce) or a per-message
    sequence.  All messages share ``aad``.
    """
    if len(keys) != len(plaintexts):
        raise CryptoError(
            "one key per plaintext required "
            f"(got {len(keys)} keys, {len(plaintexts)} plaintexts)"
        )
    for key in keys:
        if len(key) != 32:
            raise CryptoError("AEAD key must be 32 bytes")
    nonces = _normalise_nonces(nonce, len(keys))
    native = _kernels.aead_seal_batch(keys, nonces, plaintexts, aad)
    if native is not None:
        return native
    lengths = [len(plaintext) for plaintext in plaintexts]
    out: List[bytes] = []
    for (otk, stream), plaintext in zip(_batch_keystreams(keys, nonces, lengths), plaintexts):
        ciphertext = xor_bytes(plaintext, stream)
        tag = poly1305_mac(_mac_data(aad, ciphertext), otk)
        out.append(ciphertext + tag)
    return out


def adec_batch(keys: Sequence[bytes], nonce, datas: Sequence[bytes],
               aad: bytes = b"") -> List[Tuple[bool, Optional[bytes]]]:
    """Batched :func:`adec`: per-message ``(ok, plaintext)`` pairs.

    Messages shorter than a tag fail without consuming keystream, exactly
    like the scalar path.
    """
    if len(keys) != len(datas):
        raise CryptoError(
            "one key per ciphertext required "
            f"(got {len(keys)} keys, {len(datas)} ciphertexts)"
        )
    for key in keys:
        if len(key) != 32:
            raise CryptoError("AEAD key must be 32 bytes")
    try:
        nonces = _normalise_nonces(nonce, len(keys))
    except CryptoError:
        return [(False, None)] * len(keys)
    native = _kernels.aead_open_batch(keys, nonces, datas, aad)
    if native is not None:
        return native
    # Pass 1: one counter-0 block per message yields every Poly1305 one-time
    # key.  Verify-before-decrypt matters here more than in scalar adec:
    # the fetch cascade's trials fail by design (every message authenticates
    # under exactly one of its candidate keys), so payload keystream must
    # only be spent on the messages whose tag verifies.
    otk_flat = chacha20_blocks_batch(keys, nonces, [0] * len(keys))
    results: List[Tuple[bool, Optional[bytes]]] = [(False, None)] * len(keys)
    survivors: List[Tuple[int, bytes]] = []
    for index, data in enumerate(datas):
        if len(data) < AEAD_TAG_SIZE:
            continue
        ciphertext, tag = data[:-AEAD_TAG_SIZE], data[-AEAD_TAG_SIZE:]
        otk = otk_flat[index * BLOCK_SIZE:index * BLOCK_SIZE + 32]
        if poly1305_verify(_mac_data(aad, ciphertext), otk, tag):
            survivors.append((index, ciphertext))
    if survivors:
        # Pass 2: payload keystream (counters 1…) for the survivors only.
        streams = chacha20_keystreams(
            [keys[index] for index, _ in survivors],
            [nonces[index] for index, _ in survivors],
            [len(ciphertext) for _, ciphertext in survivors],
        )
        for (index, ciphertext), stream in zip(survivors, streams):
            results[index] = (True, xor_bytes(ciphertext, stream))
    return results
