"""Simulated public randomness beacon.

The paper forms its anytrust mix chains using "public randomness sources that
are unbiased and publicly available" (§5.2.1), citing Bitcoin-based beacons
and RandHound-style protocols.  A real deployment would read those sources;
inside the simulation we substitute a seeded, deterministic beacon with the
same interface: anyone holding the beacon value for an epoch derives the same
chain assignment, and the value cannot be influenced by any single server.
The substitution is recorded in DESIGN.md §3.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["PublicRandomnessBeacon"]


@dataclass(frozen=True)
class PublicRandomnessBeacon:
    """Deterministic stand-in for an unbiased public randomness source."""

    seed: bytes = b"xrd-public-randomness"

    def value_for_epoch(self, epoch: int) -> bytes:
        """Return the 32-byte beacon output for ``epoch``."""
        return hashlib.sha256(self.seed + epoch.to_bytes(8, "big")).digest()

    def rng_for_epoch(self, epoch: int, purpose: str = "") -> random.Random:
        """Return a deterministic PRNG seeded by the epoch's beacon value."""
        material = self.value_for_epoch(epoch) + purpose.encode()
        return random.Random(int.from_bytes(hashlib.sha256(material).digest(), "big"))

    def sample_without_replacement(
        self, epoch: int, population: Sequence, count: int, purpose: str = ""
    ) -> List:
        """Publicly verifiable sample of ``count`` items from ``population``."""
        rng = self.rng_for_epoch(epoch, purpose)
        return rng.sample(list(population), count)

    def shuffled(self, epoch: int, population: Sequence, purpose: str = "") -> List:
        """Return a deterministic public shuffle of ``population``."""
        rng = self.rng_for_epoch(epoch, purpose)
        items = list(population)
        rng.shuffle(items)
        return items
