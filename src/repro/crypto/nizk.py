"""Non-interactive zero-knowledge proofs used by XRD.

Two proof systems appear in the paper:

* *Knowledge of discrete log* (Schnorr, made non-interactive with
  Fiat-Shamir) — users prove they know the exponent of their outer
  Diffie-Hellman key (§6.2 step 2), and servers prove knowledge of their
  blinding/mixing keys at setup (§6.1).
* *Discrete-log equality* (Chaum-Pedersen) — servers prove that the
  aggregate of the blinded keys they output equals the aggregate of their
  inputs raised to their blinding key (§6.3 step 3), and the blame protocol
  uses the same proof to reveal per-message decryption keys verifiably
  (§6.4).

Both are standard sigma protocols; the Fiat-Shamir challenge binds the
statement, the prover-supplied context (round number, chain id, server
index), and a domain-separation label.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import NIZK_LABEL_DLEQ, NIZK_LABEL_DLOG
from repro.crypto.group import multi_scalar_accumulate
from repro.errors import ProofError

__all__ = [
    "SchnorrProof",
    "DleqProof",
    "prove_dlog",
    "verify_dlog",
    "prove_dleq",
    "verify_dleq",
]


@dataclass(frozen=True, slots=True)
class SchnorrProof:
    """Proof of knowledge of ``x`` such that ``public = x · base``."""

    commitment: bytes
    response: int

    def to_bytes(self, group) -> bytes:
        return self.commitment + group.encode_scalar(self.response)


@dataclass(frozen=True, slots=True)
class DleqProof:
    """Proof that ``log_base1(public1) = log_base2(public2)``."""

    commitment1: bytes
    commitment2: bytes
    response: int

    def to_bytes(self, group) -> bytes:
        return self.commitment1 + self.commitment2 + group.encode_scalar(self.response)


def _dlog_challenge(group, base, public, commitment, context: bytes) -> int:
    return group.hash_to_scalar(
        NIZK_LABEL_DLOG,
        group.encode(base),
        group.encode(public),
        commitment,
        context,
    )


def prove_dlog(group, base, secret: int, context: bytes = b"", rng=None) -> SchnorrProof:
    """Prove knowledge of ``secret`` such that ``secret · base`` is known.

    The statement (``base``, ``public = secret · base``) and ``context`` are
    bound into the Fiat-Shamir challenge, so a proof cannot be replayed for a
    different statement or round.
    """
    public = group.scalar_mult(base, secret)
    nonce = group.random_scalar(rng)
    commitment = group.encode(group.scalar_mult(base, nonce))
    challenge = _dlog_challenge(group, base, public, commitment, context)
    response = (nonce + challenge * secret) % group.order
    return SchnorrProof(commitment=commitment, response=response)


def verify_dlog(group, base, public, proof: SchnorrProof, context: bytes = b"") -> bool:
    """Verify a :class:`SchnorrProof` for the statement ``public = x · base``."""
    try:
        commitment_point = group.decode(proof.commitment)
    except Exception:
        return False
    challenge = _dlog_challenge(group, base, public, proof.commitment, context)
    # s·base == R + c·public  ⟺  s·base − c·public == R; the single fused
    # accumulation shares one doubling chain between both terms.
    combined = multi_scalar_accumulate(
        group, [base, public], [proof.response, group.order - challenge]
    )
    return combined == commitment_point


def _dleq_challenge(group, base1, public1, base2, public2, commitment1, commitment2, context: bytes) -> int:
    return group.hash_to_scalar(
        NIZK_LABEL_DLEQ,
        group.encode(base1),
        group.encode(public1),
        group.encode(base2),
        group.encode(public2),
        commitment1,
        commitment2,
        context,
    )


def prove_dleq(group, base1, base2, secret: int, context: bytes = b"", rng=None) -> DleqProof:
    """Prove that ``log_base1(secret·base1) = log_base2(secret·base2) = secret``."""
    public1 = group.scalar_mult(base1, secret)
    public2 = group.scalar_mult(base2, secret)
    nonce = group.random_scalar(rng)
    commitment1 = group.encode(group.scalar_mult(base1, nonce))
    commitment2 = group.encode(group.scalar_mult(base2, nonce))
    challenge = _dleq_challenge(
        group, base1, public1, base2, public2, commitment1, commitment2, context
    )
    response = (nonce + challenge * secret) % group.order
    return DleqProof(commitment1=commitment1, commitment2=commitment2, response=response)


def verify_dleq(group, base1, public1, base2, public2, proof: DleqProof, context: bytes = b"") -> bool:
    """Verify a :class:`DleqProof` for ``log_base1(public1) = log_base2(public2)``."""
    try:
        commitment1_point = group.decode(proof.commitment1)
        commitment2_point = group.decode(proof.commitment2)
    except Exception:
        return False
    challenge = _dleq_challenge(
        group, base1, public1, base2, public2, proof.commitment1, proof.commitment2, context
    )
    negated = group.order - challenge
    combined1 = multi_scalar_accumulate(group, [base1, public1], [proof.response, negated])
    if combined1 != commitment1_point:
        return False
    combined2 = multi_scalar_accumulate(group, [base2, public2], [proof.response, negated])
    return combined2 == commitment2_point


def require_valid_dlog(group, base, public, proof: SchnorrProof, context: bytes = b"") -> None:
    """Raise :class:`ProofError` unless the discrete-log proof verifies."""
    if not verify_dlog(group, base, public, proof, context):
        raise ProofError("knowledge-of-discrete-log proof failed to verify")


def require_valid_dleq(group, base1, public1, base2, public2, proof: DleqProof, context: bytes = b"") -> None:
    """Raise :class:`ProofError` unless the discrete-log-equality proof verifies."""
    if not verify_dleq(group, base1, public1, base2, public2, proof, context):
        raise ProofError("discrete-log-equality proof failed to verify")
