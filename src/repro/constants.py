"""Protocol-wide constants.

The values mirror the parameters used in the paper's evaluation (§7 and §8):
256-byte payloads, an assumed malicious-server fraction of ``f = 0.2``, a
security parameter of 64 bits for the anytrust chain-length computation, and
one-minute rounds for bandwidth-rate conversions.
"""

from __future__ import annotations

#: Size in bytes of a user payload before padding (≈ an SMS message / tweet).
PAYLOAD_SIZE = 256

#: Size in bytes of an encoded group element (Ed25519 compressed point).
GROUP_ELEMENT_SIZE = 32

#: Size in bytes of a Poly1305 authentication tag.
AEAD_TAG_SIZE = 16

#: Size in bytes of an encoded scalar (group exponent) on the wire.
SCALAR_SIZE = 32

#: Fixed size in bytes of the sender-identity field of a client submission.
#: Padding every sender name to the same width keeps submissions
#: uniform-length regardless of who sent them.
SENDER_FIELD_SIZE = 32

#: Wire overhead of one client submission beyond the onion ciphertext and
#: outer DH key: chain id (4) + sender length prefix (2) + padded sender
#: field + the Schnorr proof (commitment element + scalar response).
SUBMISSION_OVERHEAD = 4 + 2 + SENDER_FIELD_SIZE + GROUP_ELEMENT_SIZE + SCALAR_SIZE

#: Size in bytes of the AEAD nonce (IETF ChaCha20-Poly1305).
AEAD_NONCE_SIZE = 12

#: Default assumed fraction of malicious servers (the paper uses 20%).
DEFAULT_MALICIOUS_FRACTION = 0.2

#: Security parameter: the probability that any chain is fully malicious must
#: be below ``2 ** -CHAIN_SECURITY_BITS``.
CHAIN_SECURITY_BITS = 64

#: Round duration in seconds used to convert per-round bytes into bandwidth.
ROUND_DURATION_SECONDS = 60.0

#: Domain-separation labels for key derivation.
KDF_LABEL_OUTER = b"xrd/outer-layer"
KDF_LABEL_INNER = b"xrd/inner-envelope"
KDF_LABEL_LOOPBACK = b"xrd/loopback"
KDF_LABEL_CONVERSATION = b"xrd/conversation"

#: Domain-separation labels for Fiat-Shamir transcripts.
NIZK_LABEL_DLOG = b"xrd/nizk/knowledge-of-dlog"
NIZK_LABEL_DLEQ = b"xrd/nizk/dlog-equality"
