"""Per-operation cost models.

Two flavours of :class:`CostModel` are provided:

* :meth:`CostModel.paper_testbed` — constants calibrated so that the model
  reproduces the latency anchors the paper reports for its c4.8xlarge / Go /
  NaCl testbed (e.g., 2M users on 100 servers in ≈251 s, Figure 4/5).  This
  is what the figure benchmarks use.
* :meth:`CostModel.measured` — constants measured from this library's own
  pure-Python primitives (see :mod:`repro.simulation.microbench`), useful to
  show how much slower the Python substrate is and to sanity-check that the
  model structure (not just the constants) is right.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Costs (in seconds) of the primitive operations the latency model composes."""

    #: One variable-base scalar multiplication / group exponentiation.
    scalar_mult: float
    #: Fixed cost of one authenticated encryption or decryption call.
    aead_fixed: float
    #: Additional AEAD cost per byte of plaintext.
    aead_per_byte: float
    #: Proving one Schnorr / Chaum-Pedersen NIZK (≈ 2 scalar mults + hashing).
    nizk_prove: float
    #: Verifying one NIZK (≈ 4 scalar mults + hashing).
    nizk_verify: float
    #: Effective per-message, per-hop processing cost on the mixing critical
    #: path (decrypt + blind + share of aggregate proof work).  For the
    #: paper-calibrated model this single constant is fit to the reported
    #: end-to-end numbers; for the measured model it is derived from the
    #: primitive costs above.
    mix_per_message_per_hop: float
    #: Server-to-server round-trip latency (the paper injects 40–100 ms).
    network_rtt: float = 0.07
    #: Link bandwidth in bytes per second (10 Gbps in the paper's testbed).
    link_bandwidth: float = 10e9 / 8
    #: Cores available per server (c4.8xlarge has 36 vCPUs).
    cores_per_server: int = 36
    #: Human-readable provenance of the constants.
    source: str = "unspecified"

    def __post_init__(self) -> None:
        for name in (
            "scalar_mult",
            "aead_fixed",
            "aead_per_byte",
            "nizk_prove",
            "nizk_verify",
            "mix_per_message_per_hop",
            "network_rtt",
            "link_bandwidth",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"cost model field {name} must be non-negative")
        if self.cores_per_server < 1:
            raise SimulationError("cores_per_server must be at least 1")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def paper_testbed(cls) -> "CostModel":
        """Constants calibrated against the paper's reported measurements.

        The headline calibration point is Figure 4: 2M users, 100 servers,
        f = 0.2 (k ≈ 32 hops) completing in ≈251 s.  With each chain handling
        ``R = M·ℓ/n`` messages and the critical path being ``k`` sequential
        stages, ``251 ≈ k · (R · c + RTT)`` gives ``c ≈ 26-28 µs`` per
        message per hop; the same constant then predicts the paper's 1M, 4M
        and 8M points within a few percent.
        """
        scalar_mult = 80e-6  # a Curve25519 operation on one Xeon core, in Go
        return cls(
            scalar_mult=scalar_mult,
            aead_fixed=1e-6,
            aead_per_byte=2e-9,
            nizk_prove=2 * scalar_mult,
            nizk_verify=4 * scalar_mult,
            mix_per_message_per_hop=27.8e-6,
            network_rtt=0.07,
            link_bandwidth=10e9 / 8,
            cores_per_server=36,
            source="paper-calibrated (c4.8xlarge testbed anchors)",
        )

    @classmethod
    def from_primitive_costs(
        cls,
        scalar_mult: float,
        aead_fixed: float,
        aead_per_byte: float,
        payload_size: int = 256,
        cores_per_server: int = 1,
        network_rtt: float = 0.07,
        source: str = "measured",
    ) -> "CostModel":
        """Build a model from primitive costs (e.g., microbenchmarks of this library).

        The per-message per-hop cost is derived structurally: one DH scalar
        multiplication for the layer key, one scalar multiplication for
        blinding, and one AEAD decryption of roughly the onion size, divided
        by the cores available for the embarrassingly parallel per-message
        work.
        """
        per_message = (
            2 * scalar_mult + aead_fixed + aead_per_byte * (payload_size + 128)
        ) / max(1, cores_per_server)
        return cls(
            scalar_mult=scalar_mult,
            aead_fixed=aead_fixed,
            aead_per_byte=aead_per_byte,
            nizk_prove=2 * scalar_mult,
            nizk_verify=4 * scalar_mult,
            mix_per_message_per_hop=per_message,
            network_rtt=network_rtt,
            cores_per_server=cores_per_server,
            source=source,
        )

    # -- derived helpers ------------------------------------------------------------

    def with_rtt(self, network_rtt: float) -> "CostModel":
        """Return a copy with a different server-to-server RTT."""
        return replace(self, network_rtt=network_rtt)

    def transmit_time(self, num_bytes: float) -> float:
        """Time to push ``num_bytes`` over one link."""
        return num_bytes / self.link_bandwidth

    def link_time(self, num_bytes: float) -> float:
        """One-way time for ``num_bytes`` to cross one link.

        Half the round-trip time (propagation) plus the transmission time at
        the link bandwidth.  This is the per-envelope latency the
        instrumented transport charges, built from the same constants the
        analytic latency model composes — so measured-from-traffic and
        modelled figures are directly comparable.
        """
        return self.network_rtt / 2 + self.transmit_time(num_bytes)

    def client_message_cost(self, chain_length: int) -> float:
        """Client-side cost of building one AHS onion for a chain of ``chain_length``.

        One scalar multiplication per outer layer plus two for the inner
        envelope, two for the ephemeral public keys, the AEAD work, and the
        submission NIZK.
        """
        return (
            (chain_length + 4) * self.scalar_mult
            + (chain_length + 2) * self.aead_fixed
            + self.nizk_prove
        )

    def blame_per_message_per_layer(self) -> float:
        """Cost of one blame-protocol step: two DLEQ verifications plus a decryption."""
        return 2 * self.nizk_verify + self.aead_fixed
