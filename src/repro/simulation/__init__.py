"""Performance models used to regenerate the paper's evaluation.

The paper's end-to-end numbers come from a 100–200 machine EC2 testbed with
2M simulated users — far beyond what a pure-Python in-process prototype can
execute directly (see DESIGN.md §3).  This package substitutes a calibrated
analytic model plus Monte-Carlo simulation:

* :mod:`repro.simulation.costmodel` — per-operation costs, either measured
  from this library's primitives or calibrated to the paper's testbed.
* :mod:`repro.simulation.latency` — end-to-end latency models for XRD
  (analytic and pipeline/discrete-event variants).
* :mod:`repro.simulation.bandwidth` — per-user bandwidth and computation.
* :mod:`repro.simulation.churn` — server-churn conversation-failure rates
  (analytic + Monte-Carlo over the real chain-formation code).
* :mod:`repro.simulation.microbench` — microbenchmarks of our primitives.
* :mod:`repro.simulation.events` — a small discrete-event simulator used by
  the pipeline latency model and the staggering ablation.
"""

from repro.simulation.costmodel import CostModel
from repro.simulation.latency import blame_latency, xrd_latency, xrd_latency_pipeline
from repro.simulation.bandwidth import xrd_user_bandwidth, xrd_user_compute
from repro.simulation.churn import analytic_failure_rate, simulate_failure_rate

__all__ = [
    "CostModel",
    "analytic_failure_rate",
    "blame_latency",
    "simulate_failure_rate",
    "xrd_latency",
    "xrd_latency_pipeline",
    "xrd_user_bandwidth",
    "xrd_user_compute",
]
