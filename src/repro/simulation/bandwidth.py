"""User-side cost models: bandwidth (Figure 2) and computation (Figure 3).

A user's per-round traffic is ``2·ℓ`` uploads (current-round messages plus
the cover set for the next round, §5.3.3) of one onion each, plus the
download of her ℓ-message mailbox.  Both grow as ``√(2N)`` because ℓ does —
the cost XRD pays for horizontal scalability (§8.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.client.chain_selection import ell_for_chains
from repro.constants import (
    CHAIN_SECURITY_BITS,
    DEFAULT_MALICIOUS_FRACTION,
    PAYLOAD_SIZE,
    ROUND_DURATION_SECONDS,
    SUBMISSION_OVERHEAD,
)
from repro.crypto.onion import onion_size
from repro.errors import SimulationError
from repro.mixnet.chain import required_chain_length
from repro.mixnet.messages import mailbox_message_size
from repro.simulation.costmodel import CostModel

__all__ = [
    "UserCost",
    "xrd_user_bandwidth",
    "xrd_user_compute",
    "submission_wire_size",
    "deployment_user_bandwidth",
]

#: Serialisation overhead of one submission beyond the onion itself: chain
#: id + sender length prefix (6), the fixed-width sender field, and the
#: Schnorr proof (element commitment + scalar response).  The onion size
#: already counts the outer DH key ``X``.  This is exactly
#: ``repro.constants.SUBMISSION_OVERHEAD``, the overhead of
#: ``ClientSubmission.to_bytes`` — the instrumented transport measures the
#: same bytes this model predicts.
_SUBMISSION_HEADER_BYTES = SUBMISSION_OVERHEAD


@dataclass(frozen=True)
class UserCost:
    """Per-round, per-user cost summary."""

    num_servers: int
    ell: int
    chain_length: int
    upload_bytes: int
    download_bytes: int
    compute_seconds: float

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes

    def bandwidth_kbps(self, round_duration: float = ROUND_DURATION_SECONDS) -> float:
        """Average sustained bandwidth in kilobits per second."""
        if round_duration <= 0:
            raise SimulationError("round duration must be positive")
        return self.total_bytes * 8 / round_duration / 1000


def submission_wire_size(
    chain_length: int, payload_size: int = PAYLOAD_SIZE, ahs: bool = True
) -> int:
    """Wire size in bytes of one client submission (onion + proof + header)."""
    return onion_size(chain_length, payload_size, ahs=ahs) + _SUBMISSION_HEADER_BYTES


def deployment_user_bandwidth(
    num_chains: int,
    chain_length: int,
    payload_size: int = PAYLOAD_SIZE,
    cover_messages: bool = True,
    num_servers: Optional[int] = None,
) -> UserCost:
    """Per-round user bandwidth from explicit chain parameters.

    This is the arithmetic core of :func:`xrd_user_bandwidth`, exposed so a
    prediction can be anchored to a *concrete* deployment (whose chain
    length may be capped at its server count) and compared against the
    bytes an instrumented transport actually measured — see
    :func:`repro.analysis.measured.measured_vs_model_bandwidth`.
    """
    ell = ell_for_chains(num_chains)
    per_message = submission_wire_size(chain_length, payload_size)
    multiplier = 2 if cover_messages else 1
    upload = multiplier * ell * per_message
    download = ell * mailbox_message_size(payload_size)
    return UserCost(
        num_servers=num_servers if num_servers is not None else num_chains,
        ell=ell,
        chain_length=chain_length,
        upload_bytes=upload,
        download_bytes=download,
        compute_seconds=0.0,
    )


def xrd_user_bandwidth(
    num_servers: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    num_chains: Optional[int] = None,
    payload_size: int = PAYLOAD_SIZE,
    cover_messages: bool = True,
    security_bits: int = CHAIN_SECURITY_BITS,
) -> UserCost:
    """Per-round user bandwidth for a network of ``num_servers`` servers (Figure 2)."""
    num_chains = num_chains if num_chains is not None else num_servers
    chain_length = required_chain_length(malicious_fraction, num_chains, security_bits)
    return deployment_user_bandwidth(
        num_chains,
        chain_length,
        payload_size=payload_size,
        cover_messages=cover_messages,
        num_servers=num_servers,
    )


def xrd_user_compute(
    num_servers: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    num_chains: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    cover_messages: bool = True,
    security_bits: int = CHAIN_SECURITY_BITS,
) -> UserCost:
    """Per-round single-core user computation (Figure 3).

    Building one submission costs roughly one scalar multiplication per outer
    layer (the per-layer Diffie-Hellman), two for the inner envelope, two for
    the ephemeral keys, the layered AEAD work, and one NIZK; the cover set
    doubles it.  Decrypting the mailbox costs one AEAD per received message.
    """
    cost_model = cost_model or CostModel.paper_testbed()
    num_chains = num_chains if num_chains is not None else num_servers
    ell = ell_for_chains(num_chains)
    chain_length = required_chain_length(malicious_fraction, num_chains, security_bits)
    multiplier = 2 if cover_messages else 1
    compute = multiplier * ell * cost_model.client_message_cost(chain_length)
    compute += ell * cost_model.aead_fixed
    bandwidth = xrd_user_bandwidth(
        num_servers,
        malicious_fraction,
        num_chains,
        cover_messages=cover_messages,
        security_bits=security_bits,
    )
    return UserCost(
        num_servers=num_servers,
        ell=ell,
        chain_length=chain_length,
        upload_bytes=bandwidth.upload_bytes,
        download_bytes=bandwidth.download_bytes,
        compute_seconds=compute,
    )
