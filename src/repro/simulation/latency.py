"""End-to-end latency models for XRD (§8.2).

Two models are provided:

* :func:`xrd_latency` — the closed-form critical-path model.  Each of the
  ``n`` chains handles ``R = M·ℓ/n`` messages; a round's critical path is
  the ``k`` sequential decrypt–blind–shuffle stages of a chain, each costing
  ``R · c + RTT`` where ``c`` is the per-message per-hop constant of the
  :class:`~repro.simulation.costmodel.CostModel`.  With the paper-calibrated
  constant this reproduces the Figure 4/5 anchors within a few percent.
* :func:`xrd_latency_pipeline` — a discrete-event version that additionally
  models contention between the ``k`` chains each server belongs to and the
  effect of (not) staggering server positions.

The stagger optimisation priced by the pipeline model is also *executed*
end-to-end against the real protocol stack by
:class:`repro.engine.stagger.StaggeredScheduler`, which overlaps round
``r + 1``'s submission collection with round ``r``'s mixing (DESIGN.md
§2.3); this module remains the way to price configurations far beyond what
the in-process stack can run.

:func:`blame_latency` models Figure 7 (worst-case slowdown from malicious
users triggering the blame protocol at the last server of a chain).
"""

from __future__ import annotations

from typing import Optional

from repro.client.chain_selection import ell_for_chains
from repro.constants import CHAIN_SECURITY_BITS, DEFAULT_MALICIOUS_FRACTION, PAYLOAD_SIZE
from repro.crypto.onion import onion_size
from repro.errors import SimulationError
from repro.mixnet.chain import required_chain_length
from repro.simulation.costmodel import CostModel
from repro.simulation.events import simulate_chain_pipeline

__all__ = [
    "messages_per_chain",
    "xrd_latency",
    "xrd_latency_pipeline",
    "blame_latency",
    "recovery_latency",
]


def messages_per_chain(num_users: int, num_chains: int) -> float:
    """Messages each chain shuffles per round: ``R = M·ℓ/n ≈ √2·M/√n`` (§4.2)."""
    if num_users < 0 or num_chains < 1:
        raise SimulationError("invalid user or chain count")
    return num_users * ell_for_chains(num_chains) / num_chains


def xrd_latency(
    num_users: int,
    num_servers: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    cost_model: Optional[CostModel] = None,
    num_chains: Optional[int] = None,
    security_bits: int = CHAIN_SECURITY_BITS,
    payload_size: int = PAYLOAD_SIZE,
) -> float:
    """Closed-form end-to-end latency estimate in seconds.

    The critical path of a round is one chain: ``k`` stages, each of which
    must process the chain's ``R`` messages (compute plus transmission) and
    forward the batch over one RTT.  Decryption of the inner envelopes and
    mailbox delivery add one more R-sized stage at the end.
    """
    cost_model = cost_model or CostModel.paper_testbed()
    num_chains = num_chains if num_chains is not None else num_servers
    chain_length = required_chain_length(malicious_fraction, num_chains, security_bits)
    load = messages_per_chain(num_users, num_chains)
    message_bytes = onion_size(chain_length, payload_size)
    stage_time = load * cost_model.mix_per_message_per_hop + cost_model.transmit_time(
        load * message_bytes
    )
    mixing = chain_length * (stage_time + cost_model.network_rtt)
    final_stage = load * cost_model.mix_per_message_per_hop + cost_model.network_rtt
    return mixing + final_stage


def xrd_latency_pipeline(
    num_users: int,
    num_servers: int,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    cost_model: Optional[CostModel] = None,
    num_chains: Optional[int] = None,
    security_bits: int = CHAIN_SECURITY_BITS,
    stagger: bool = True,
    seed: int = 0,
) -> float:
    """Discrete-event latency estimate with per-server contention.

    Servers appear in ≈``k`` chains each; the pipeline simulator schedules
    every (chain, stage) job on its server with a bounded number of cores, so
    the result captures the contention the closed-form model ignores and the
    benefit of staggering chain positions.
    """
    from repro.crypto.randomness import PublicRandomnessBeacon
    from repro.mixnet.chain import form_chains

    cost_model = cost_model or CostModel.paper_testbed()
    num_chains = num_chains if num_chains is not None else num_servers
    chain_length = required_chain_length(malicious_fraction, num_chains, security_bits)
    chain_length = min(chain_length, num_servers)
    load = messages_per_chain(num_users, num_chains)
    stage_time = load * cost_model.mix_per_message_per_hop
    beacon = PublicRandomnessBeacon(seed=b"latency-pipeline-%d" % seed)
    topologies = form_chains(
        [f"server-{index}" for index in range(num_servers)],
        num_chains,
        chain_length,
        beacon=beacon,
        stagger=stagger,
    )
    result = simulate_chain_pipeline(
        [topology.servers for topology in topologies],
        stage_time=stage_time,
        network_rtt=cost_model.network_rtt,
        cores_per_server=cost_model.cores_per_server,
    )
    return result.makespan


def blame_latency(
    num_malicious_users: int,
    num_chains: int = 100,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    cost_model: Optional[CostModel] = None,
    security_bits: int = CHAIN_SECURITY_BITS,
) -> float:
    """Worst-case extra latency of the blame protocol (Figure 7).

    Each flagged ciphertext costs, per upstream layer, two discrete-log
    equality proofs (generation by the revealing server, verification by the
    others — verification dominates) and one authenticated decryption; the
    worst case is misauthentication detected at the *last* server, so all
    ``k − 1`` upstream layers are walked for every malicious user.  The
    per-message work parallelises across the server's cores.
    """
    if num_malicious_users < 0:
        raise SimulationError("number of malicious users must be non-negative")
    cost_model = cost_model or CostModel.paper_testbed()
    chain_length = required_chain_length(malicious_fraction, num_chains, security_bits)
    per_user = (chain_length - 1) * cost_model.blame_per_message_per_layer()
    serial = num_malicious_users * per_user / cost_model.cores_per_server
    # Re-running the aggregate-proof step after removing the bad ciphertexts
    # costs one extra pass over the chain.
    rerun = chain_length * cost_model.network_rtt
    return serial + rerun


def recovery_latency(
    chain_length: int,
    cost_model: Optional[CostModel] = None,
    flagged_ciphertexts: int = 1,
) -> float:
    """Blame plus recovery after a *server* conviction, vs. chain length.

    The fig7 companion for the recovery half of §6.4 (executed for real by
    :meth:`Deployment.recover <repro.coordinator.network.Deployment.
    recover>`): the cost of detecting a tampering server at the end of the
    chain, walking the blame protocol back, evicting it, and re-forming the
    chain before traffic resumes.  Three sequential phases:

    * **blame walk** — each of the ``k − 1`` upstream servers reveals in
      turn (one link hop each) and the reveal is verified
      (:meth:`CostModel.blame_per_message_per_layer`), per flagged
      ciphertext;
    * **key ceremony** — the re-formed chain's ``k`` servers generate
      blinding and mixing keys *in order* (each server's base point is its
      predecessor's blinding key, §6.1): two key generations, two proofs,
      two verifications, and a hand-off hop per server;
    * **inner-key re-announcement** — one per-round key and proof per
      server, broadcast in parallel (one RTT total).
    """
    if chain_length < 1:
        raise SimulationError("chain length must be positive")
    if flagged_ciphertexts < 0:
        raise SimulationError("flagged ciphertext count must be non-negative")
    cost_model = cost_model or CostModel.paper_testbed()
    blame = (chain_length - 1) * (
        flagged_ciphertexts * cost_model.blame_per_message_per_layer()
        + cost_model.network_rtt / 2
    )
    per_member_ceremony = (
        2 * cost_model.scalar_mult
        + 2 * cost_model.nizk_prove
        + 2 * cost_model.nizk_verify
        + cost_model.network_rtt / 2
    )
    ceremony = chain_length * per_member_ceremony
    announce = (
        chain_length * (cost_model.scalar_mult + cost_model.nizk_prove + cost_model.nizk_verify)
        + cost_model.network_rtt
    )
    return blame + ceremony + announce
