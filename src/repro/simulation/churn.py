"""Server-churn availability model (Figure 8, §8.3).

A conversation fails in a round if the chain the two partners intersect on
contains at least one server that went offline mid-round.  Two estimators are
provided: the closed-form ``1 − (1 − churn)^k`` (every chain has ``k``
servers, each failing independently) and a Monte-Carlo simulation that uses
the library's real chain-formation and chain-selection code, so correlations
introduced by servers appearing in many chains are captured.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from repro.client.chain_selection import intersection_chain
from repro.constants import CHAIN_SECURITY_BITS, DEFAULT_MALICIOUS_FRACTION
from repro.crypto.randomness import PublicRandomnessBeacon
from repro.errors import SimulationError
from repro.mixnet.chain import form_chains, required_chain_length

__all__ = ["analytic_failure_rate", "simulate_failure_rate", "ChurnSimulationResult"]


def analytic_failure_rate(
    churn_rate: float,
    chain_length: int,
) -> float:
    """Probability that a chain of ``chain_length`` servers contains a failed server."""
    if not 0.0 <= churn_rate <= 1.0:
        raise SimulationError("churn rate must be in [0, 1]")
    if chain_length < 1:
        raise SimulationError("chain length must be positive")
    return 1.0 - (1.0 - churn_rate) ** chain_length


@dataclass
class ChurnSimulationResult:
    """Outcome of a Monte-Carlo churn simulation."""

    num_servers: int
    num_chains: int
    chain_length: int
    churn_rate: float
    trials: int
    conversations_per_trial: int
    failure_rate: float
    analytic_rate: float


def _synthetic_public_key(index: int) -> bytes:
    """A deterministic stand-in public key for chain-selection sampling."""
    return hashlib.sha256(b"churn-user-%d" % index).digest()


def simulate_failure_rate(
    num_servers: int,
    churn_rate: float,
    num_chains: Optional[int] = None,
    malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
    security_bits: int = CHAIN_SECURITY_BITS,
    conversations_per_trial: int = 500,
    trials: int = 20,
    seed: int = 0,
) -> ChurnSimulationResult:
    """Monte-Carlo conversation failure rate under server churn.

    Each trial samples the set of failed servers, then checks for a sample of
    conversation pairs (placed into chains with the real chain-selection
    algorithm) whether their intersection chain contains a failed server.
    """
    if num_servers < 1:
        raise SimulationError("need at least one server")
    num_chains = num_chains if num_chains is not None else num_servers
    chain_length = min(
        required_chain_length(malicious_fraction, num_chains, security_bits), num_servers
    )
    server_names = [f"server-{index}" for index in range(num_servers)]
    beacon = PublicRandomnessBeacon(seed=b"churn-simulation-%d" % seed)
    topologies = form_chains(server_names, num_chains, chain_length, beacon=beacon)
    rng = random.Random(seed)

    failures = 0
    total = 0
    for _ in range(trials):
        failed_servers = {name for name in server_names if rng.random() < churn_rate}
        failed_chains = {
            topology.chain_id
            for topology in topologies
            if any(server in failed_servers for server in topology.servers)
        }
        for _pair_index in range(conversations_per_trial):
            key_a = _synthetic_public_key(rng.randrange(1 << 30))
            key_b = _synthetic_public_key(rng.randrange(1 << 30))
            chain_id = intersection_chain(key_a, key_b, num_chains)
            total += 1
            if chain_id in failed_chains:
                failures += 1

    return ChurnSimulationResult(
        num_servers=num_servers,
        num_chains=num_chains,
        chain_length=chain_length,
        churn_rate=churn_rate,
        trials=trials,
        conversations_per_trial=conversations_per_trial,
        failure_rate=failures / total if total else 0.0,
        analytic_rate=analytic_failure_rate(churn_rate, chain_length),
    )
