"""A small discrete-event simulator for the chain pipeline.

The paper's chains are staggered across servers so that every server is busy
throughout a round (§5.2.1).  To study that effect (and as an alternative to
the closed-form latency model) we model a round as a set of jobs: chain ``c``
must pass through its servers in order; each stage occupies one core of its
server for a service time; a server has a bounded number of cores.  The
simulator computes the makespan — the time the last chain finishes — which is
the round's mixing latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["StageJob", "PipelineResult", "simulate_chain_pipeline"]


@dataclass(frozen=True)
class StageJob:
    """One stage of one chain: ``server`` must spend ``service_time`` on it."""

    chain_id: int
    stage_index: int
    server: str
    service_time: float


@dataclass
class PipelineResult:
    """Outcome of a pipeline simulation."""

    makespan: float
    chain_completion: Dict[int, float]
    server_busy_time: Dict[str, float]
    server_utilisation: Dict[str, float] = field(default_factory=dict)

    def max_utilisation(self) -> float:
        return max(self.server_utilisation.values(), default=0.0)

    def min_utilisation(self) -> float:
        return min(self.server_utilisation.values(), default=0.0)


class _ServerState:
    """Tracks when cores of a server become free (earliest-available scheduling)."""

    def __init__(self, cores: int) -> None:
        self.free_at = [0.0] * cores
        self.busy_time = 0.0

    def schedule(self, ready_time: float, service_time: float) -> Tuple[float, float]:
        """Run a job that becomes ready at ``ready_time``; return (start, finish)."""
        index = min(range(len(self.free_at)), key=lambda i: self.free_at[i])
        start = max(ready_time, self.free_at[index])
        finish = start + service_time
        self.free_at[index] = finish
        self.busy_time += service_time
        return start, finish


def simulate_chain_pipeline(
    chains: Sequence[Sequence[str]],
    stage_time: float,
    network_rtt: float = 0.0,
    cores_per_server: int = 1,
) -> PipelineResult:
    """Simulate one round of mixing across staggered chains.

    ``chains[c]`` is the ordered list of server names of chain ``c``; every
    stage takes ``stage_time`` seconds of server compute plus ``network_rtt``
    to hand the batch to the next server.  Chains are processed greedily in
    chain order, stage by stage, with each server running at most
    ``cores_per_server`` stages concurrently.

    The scheduler is event-driven: stages become ready when their upstream
    stage finishes, and each server runs ready stages in ready-time order.
    """
    if stage_time < 0 or network_rtt < 0:
        raise SimulationError("stage time and RTT must be non-negative")
    if cores_per_server < 1:
        raise SimulationError("cores_per_server must be at least 1")

    servers: Dict[str, _ServerState] = {}
    for chain in chains:
        for server in chain:
            servers.setdefault(server, _ServerState(cores_per_server))

    # Event queue of (ready_time, tie_breaker, chain_id, stage_index).
    queue: List[Tuple[float, int, int, int]] = []
    tie = 0
    for chain_id, chain in enumerate(chains):
        if not chain:
            raise SimulationError("chains must have at least one stage")
        heapq.heappush(queue, (0.0, tie, chain_id, 0))
        tie += 1

    chain_completion: Dict[int, float] = {}
    while queue:
        ready_time, _, chain_id, stage_index = heapq.heappop(queue)
        chain = chains[chain_id]
        server = servers[chain[stage_index]]
        _, finish = server.schedule(ready_time, stage_time)
        if stage_index + 1 < len(chain):
            heapq.heappush(queue, (finish + network_rtt, tie, chain_id, stage_index + 1))
            tie += 1
        else:
            chain_completion[chain_id] = finish

    makespan = max(chain_completion.values(), default=0.0)
    busy = {name: state.busy_time for name, state in servers.items()}
    utilisation = {
        name: (state.busy_time / (makespan * cores_per_server) if makespan > 0 else 0.0)
        for name, state in servers.items()
    }
    return PipelineResult(
        makespan=makespan,
        chain_completion=chain_completion,
        server_busy_time=busy,
        server_utilisation=utilisation,
    )
