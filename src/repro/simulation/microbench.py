"""Microbenchmarks of this library's own primitives.

The measurements feed :meth:`CostModel.from_primitive_costs`, giving a cost
model for *this* (pure-Python) substrate.  Comparing it against
:meth:`CostModel.paper_testbed` makes explicit how much of the gap to the
paper's absolute numbers is the Python-vs-Go substrate (documented in
EXPERIMENTS.md) rather than the protocol itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.aead import aenc
from repro.crypto.group import default_group
from repro.crypto.nizk import prove_dlog, verify_dlog
from repro.simulation.costmodel import CostModel

__all__ = ["PrimitiveTimings", "measure_primitives", "measured_cost_model"]


@dataclass(frozen=True)
class PrimitiveTimings:
    """Measured per-operation times, in seconds."""

    scalar_mult: float
    aead_fixed: float
    aead_per_byte: float
    nizk_prove: float
    nizk_verify: float
    iterations: int


def _time_it(function, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        function()
    return (time.perf_counter() - start) / iterations


def measure_primitives(iterations: int = 20, group=None) -> PrimitiveTimings:
    """Time the primitives this library actually executes."""
    group = group or default_group()
    scalar = group.random_scalar()
    point = group.base_mult(group.random_scalar())
    scalar_mult = _time_it(lambda: group.scalar_mult(point, scalar), iterations)

    key = b"\x07" * 32
    small = b"x" * 64
    large = b"x" * 4096
    aead_small = _time_it(lambda: aenc(key, 1, small), iterations)
    aead_large = _time_it(lambda: aenc(key, 1, large), iterations)
    aead_per_byte = max(0.0, (aead_large - aead_small) / (len(large) - len(small)))
    aead_fixed = max(0.0, aead_small - aead_per_byte * len(small))

    proof = prove_dlog(group, group.base(), scalar)
    public = group.base_mult(scalar)
    nizk_prove = _time_it(lambda: prove_dlog(group, group.base(), scalar), max(2, iterations // 2))
    nizk_verify = _time_it(
        lambda: verify_dlog(group, group.base(), public, proof), max(2, iterations // 2)
    )
    return PrimitiveTimings(
        scalar_mult=scalar_mult,
        aead_fixed=aead_fixed,
        aead_per_byte=aead_per_byte,
        nizk_prove=nizk_prove,
        nizk_verify=nizk_verify,
        iterations=iterations,
    )


def measured_cost_model(
    iterations: int = 20, group=None, cores_per_server: int = 1
) -> CostModel:
    """A :class:`CostModel` built from microbenchmarks of this library."""
    timings = measure_primitives(iterations=iterations, group=group)
    return CostModel.from_primitive_costs(
        scalar_mult=timings.scalar_mult,
        aead_fixed=timings.aead_fixed,
        aead_per_byte=timings.aead_per_byte,
        cores_per_server=cores_per_server,
        source=f"measured (pure-Python primitives, {iterations} iterations)",
    )
