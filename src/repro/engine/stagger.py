"""The stagger optimisation, end to end (§5.2.2 / DESIGN.md §2.3).

The paper pipelines consecutive rounds: while the chains mix round *r*, the
users already build and submit their round *r + 1* messages, hiding client
submission time behind server mixing time.  The analytic latency model
(:func:`repro.simulation.latency.xrd_latency_pipeline`) prices this; the
:class:`StaggeredScheduler` here actually *executes* it against the real
protocol stack.

Schedule for round *r* in the steady state::

    coordinator thread                     mix worker
    ------------------                     ----------
    prepare(r)      (cached key views)
    collect(r)                             mix(r-1)      ← overlapped
    precompute(r)   (collected users)      mix(r-1)      ← overlapped
    join mix(r-1); deliver(r-1); fetch(r-1)
    finalize_collect(r)  (deferred users)
    precompute(r) top-up (only if deferred/extras); announce(r+1 [, r+2])
    dispatch mix(r) ────────────────────►  mix(r)

Only *collect* (user state, cover store) and *precompute* (round *r*'s
per-round tables, §5.2.1 / DESIGN.md §8) ever overlap *mix* (round *r − 1*'s
chain state) — disjoint by construction, see DESIGN.md §2.3.  Round *r*'s
public-key work (DH blinding, layer-key derivation) therefore hides behind
round *r − 1*'s online phase; the deferred users and injected extras the
overlap window cannot see are topped up in the same coordinator-thread
window that handles ``announce``.  Inner keys for future rounds are
announced on the coordinator thread between joins (``announce``), so the
overlapped collect never touches chain state; the overlapped precompute
writes only its own round's tables, which no other round reads.

Two properties make staggered output bit-identical to serial execution under
a fixed seed.  First, every member's per-round randomness is an independent
derived stream, so announcing a future round's inner keys early changes no
output.  Second, the one real data dependency between consecutive rounds —
an offline notice delivered in round *r*'s fetch ends the recipient's
conversation and changes what she sends in round *r + 1* — is honoured by
deferral: the engine reports who may receive a notice
(``ctx.notice_targets``, known to the coordinator because it played the
covers), and the scheduler builds exactly those users' round *r + 1*
submissions after round *r*'s fetch, in :meth:`RoundEngine.finalize_collect`.
Everyone else's submissions are built during the overlap.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.engine.round_engine import RoundEngine
from repro.engine.stages import RoundContext, RoundReport, RoundSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coordinator.network import Deployment

__all__ = ["StaggeredScheduler"]


class StaggeredScheduler:
    """Pipelines consecutive rounds: collect *r + 1* while *r* is mixing."""

    def __init__(self, engine: RoundEngine) -> None:
        self.engine = engine

    @classmethod
    def for_deployment(cls, deployment: "Deployment") -> "StaggeredScheduler":
        return cls(deployment.engine)

    def run_rounds(self, specs: Iterable[RoundSpec]) -> List[RoundReport]:
        """Execute the given rounds with the stagger optimisation.

        Returns one report per spec, in order.  A failure in any stage
        surfaces as the original exception after the in-flight round has
        been joined, so chain state is never abandoned mid-mix.
        """
        engine = self.engine
        deployment = engine.deployment
        # How far ahead inner keys must be announced so that the *next*
        # iteration's prepare finds every view cached: prepare(r) reads
        # views for r and, when covers are built, r + 1.
        horizon = 2 if deployment.config.use_cover_messages else 1

        reports: List[RoundReport] = []
        pending: Optional[Tuple[RoundContext, Future]] = None
        executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="xrd-mix")

        def join_pending() -> None:
            nonlocal pending
            if pending is None:
                return
            ctx, future = pending
            pending = None
            future.result()
            engine.deliver(ctx)
            engine.fetch(ctx)
            reports.append(ctx.report)

        try:
            deferred: frozenset = frozenset()
            for spec in specs:
                ctx = engine.prepare(spec)
                engine.collect(ctx, defer=deferred)  # overlaps the previous round's mixing
                engine.precompute_collected(ctx)  # so does this round's public-key work
                # The overlap pass covered every built submission; only
                # deferred users (built in finalize_collect, below) and
                # injected extras can need a top-up.  Decide *before*
                # finalize clears the deferred list, and skip the top-up
                # entirely in the common all-online case so the
                # non-overlapped window between join and dispatch stays
                # thin — no re-walk of the full batch just to find zero
                # misses (member tables make the rerun incremental, but
                # the decode/encode sweep over the batch is not free).
                needs_topup = bool(ctx.deferred_users) or bool(spec.extra_submissions)
                join_pending()
                engine.finalize_collect(ctx)  # deferred users see the fetched state
                if needs_topup:
                    engine.precompute(ctx)  # top up deferred users and extras
                engine.announce(ctx.round_number + horizon)
                deferred = frozenset(ctx.notice_targets)
                pending = (ctx, executor.submit(engine.mix, ctx))
            join_pending()
        finally:
            if pending is not None:  # an earlier stage raised; don't abandon the mix
                pending[1].cancel()
                try:
                    pending[1].result()
                except Exception:
                    pass
            executor.shutdown(wait=True)
        return reports
