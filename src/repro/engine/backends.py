"""Pluggable execution backends for the mix stage (DESIGN.md §2.2).

A backend decides *how* the per-chain mixing work of one round is executed;
the :class:`~repro.engine.round_engine.RoundEngine` decides *what* that work
is.  The contract is a single ordered map:

``map_chains(fn, chains)`` must return ``[fn(chain) for chain in chains]`` —
same length, same order — and must propagate the first exception raised by
any ``fn`` call.  ``fn`` touches only the given chain's state (members,
per-round records) and produces a :class:`~repro.engine.stages.ChainOutcome`;
chains share no mutable state, which is exactly the independence the paper's
horizontal-scaling claim rests on, so backends are free to run them
concurrently.

Three backends are provided:

* :class:`SerialBackend` — one chain after another on the calling thread;
  the default, and the reference semantics.
* :class:`ParallelBackend` — chains dispatched to a thread pool.  In this
  pure-Python build the GIL serialises the group arithmetic, so the speedup
  is bounded; the point is that the orchestration layer already expresses
  the parallelism.
* :class:`~repro.engine.multiprocess.MultiprocessBackend` — chains forked
  to worker processes that ship their round results back as the wire
  encodings of :mod:`repro.transport.codec`; escapes the GIL and realises
  the multicore speedup with no change above this contract.

Because every member's per-round randomness is an independent derived stream
(see :class:`~repro.mixnet.ahs.ChainMember`), every backend produces
bit-identical results under a fixed deployment seed.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.registry import EXECUTION_BACKENDS, ExecutionBackendKind

__all__ = ["ExecutionBackend", "SerialBackend", "ParallelBackend", "make_backend"]

_T = TypeVar("_T")
_R = TypeVar("_R")


class ExecutionBackend:
    """Contract every mix-stage backend implements."""

    name: str = "abstract"

    #: Whether ``map_chains`` mutates the *caller's* chain objects.  True for
    #: in-process backends (serial, threads); False when the work runs in
    #: forked workers whose state dies with them.  The engine's precompute
    #: stage consults this: precomputed tables must land in the coordinator's
    #: members (forked mix workers then inherit them by copy-on-write), so a
    #: backend that cannot share state gets the precompute executed inline
    #: instead of through ``map_chains``.
    shares_state: bool = True

    def map_chains(self, fn: Callable[[_T], _R], chains: Sequence[_T]) -> List[_R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources; idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Mix chains one after another — the reference execution order."""

    name = "serial"

    def map_chains(self, fn: Callable[[_T], _R], chains: Sequence[_T]) -> List[_R]:
        return [fn(chain) for chain in chains]


class ParallelBackend(ExecutionBackend):
    """Mix chains concurrently on a thread pool.

    The pool is created lazily and reused across rounds; ``max_workers``
    defaults to the machine's CPU count capped by the chain count of the
    first dispatch.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("a parallel backend needs at least one worker")
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        # The staggered scheduler may run the precompute stage on the
        # coordinator thread while a mix runs on its worker thread; both go
        # through map_chains, so lazy pool creation must be race-free.
        self._pool_lock = threading.Lock()

    def _pool(self, num_tasks: int) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._executor is None:
                workers = self._max_workers or min(max(num_tasks, 1), os.cpu_count() or 4)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="xrd-chain"
                )
            return self._executor

    def map_chains(self, fn: Callable[[_T], _R], chains: Sequence[_T]) -> List[_R]:
        chains = list(chains)
        if len(chains) <= 1:
            return [fn(chain) for chain in chains]
        # Executor.map preserves submission order and re-raises the first
        # worker exception on iteration.
        return list(self._pool(len(chains)).map(fn, chains))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def _make_serial(max_workers: Optional[int] = None) -> ExecutionBackend:
    return SerialBackend()


def _make_parallel(max_workers: Optional[int] = None) -> ExecutionBackend:
    return ParallelBackend(max_workers=max_workers)


def _make_multiprocess(max_workers: Optional[int] = None) -> ExecutionBackend:
    from repro.engine.multiprocess import MultiprocessBackend  # avoid an import cycle

    return MultiprocessBackend(max_workers=max_workers)


if not EXECUTION_BACKENDS.is_known(ExecutionBackendKind.SERIAL):  # tolerate re-import
    EXECUTION_BACKENDS.register(ExecutionBackendKind.SERIAL, _make_serial)
    EXECUTION_BACKENDS.register(ExecutionBackendKind.PARALLEL, _make_parallel)
    EXECUTION_BACKENDS.register(ExecutionBackendKind.MULTIPROCESS, _make_multiprocess)


def make_backend(kind, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Build a backend from a :class:`~repro.registry.ExecutionBackendKind`
    (or a registered name) via the component registry."""
    return EXECUTION_BACKENDS.create(kind, max_workers=max_workers)
