"""Pluggable round-execution engine (DESIGN.md §2).

Splits round orchestration policy (:class:`RoundEngine`, the staged
pipeline) from execution strategy (:class:`SerialBackend` /
:class:`ParallelBackend`) and scheduling (:class:`StaggeredScheduler`,
the paper's stagger optimisation).  :class:`Deployment
<repro.coordinator.network.Deployment>` is a thin facade over this package.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ParallelBackend,
    SerialBackend,
    make_backend,
)
from repro.engine.multiprocess import MultiprocessBackend
from repro.engine.round_engine import RoundEngine
from repro.engine.stages import ChainOutcome, RoundContext, RoundReport, RoundSpec
from repro.engine.stagger import StaggeredScheduler

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "MultiprocessBackend",
    "make_backend",
    "RoundEngine",
    "RoundSpec",
    "RoundReport",
    "RoundContext",
    "ChainOutcome",
    "StaggeredScheduler",
]
