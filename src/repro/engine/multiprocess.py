"""Fork-based mix backend: per-chain work in worker processes (DESIGN.md §2.2, §5).

``ParallelBackend`` expresses the paper's horizontal-scaling claim but the
GIL serialises its group arithmetic; :class:`MultiprocessBackend` realises
it.  ``map_chains`` forks one worker per slice of chains — workers inherit
the full deployment state by copy-on-write, so nothing needs to be shipped
*in* — and each worker sends its results back over a pipe, serialised with
the same wire encodings the transport layer uses
(:func:`repro.transport.codec.encode_chain_outcome`): a chain's round
outcome crosses the process boundary exactly as its messages would cross a
network.

Correctness rests on the determinism property of
:class:`~repro.mixnet.ahs.ChainMember`: every (member, round) pair draws
from an independent derived randomness stream, so a forked copy of a chain
computes bit-identically to the parent's copy, and the parent's own chain
state — which the fork leaves untouched — never diverges from what the
reports claim.  The parent's chains simply do not *record* rounds that were
mixed in workers (``_entries``/``_history`` stay unpopulated for those
rounds); the blame-protocol tests, which need that private state, run on
the serial backend.

Two contract details beyond :class:`ExecutionBackend`:

* results that are not :class:`~repro.engine.stages.ChainOutcome` values
  (generic ``map_chains`` uses) fall back to :mod:`pickle`; outcomes carrying
  a blame verdict travel as wire bytes too
  (:func:`repro.transport.codec.encode_blame_verdict`), so eviction
  decisions derived from them are lossless across the process boundary;
* if the chains route their batches through an instrumented transport, each
  worker ships its new :class:`~repro.transport.metrics.LinkRecord` entries
  back with its results and the parent merges them into its ledger, so
  traffic accounting survives the process boundary.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine.backends import ExecutionBackend
from repro.engine.stages import ChainOutcome
from repro.errors import ConfigurationError
from repro.transport.codec import (
    UnsupportedPayload,
    decode_chain_outcome,
    encode_chain_outcome,
)
from repro.transport.metrics import LinkRecord, TrafficLedger

__all__ = ["MultiprocessBackend"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Result-frame tags: wire-encoded ChainOutcome, pickled value, pickled
#: exception, and the worker's traffic-ledger delta.
_TAG_OUTCOME = 0
_TAG_PICKLE = 1
_TAG_ERROR = 2
_TAG_LEDGERS = 3

#: Frame index reserved for the ledger delta (not a chain index).
_LEDGER_INDEX = 0xFFFFFFFF


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_all(fd: int) -> bytes:
    parts = []
    while True:
        chunk = os.read(fd, 1 << 16)
        if not chunk:
            return b"".join(parts)
        parts.append(chunk)


def _pack_frame(index: int, tag: int, payload: bytes) -> bytes:
    return index.to_bytes(4, "big") + bytes([tag]) + len(payload).to_bytes(4, "big") + payload


def _iter_frames(data: bytes):
    offset = 0
    while offset < len(data):
        if len(data) < offset + 9:
            raise ValueError("truncated worker frame header")
        index = int.from_bytes(data[offset:offset + 4], "big")
        tag = data[offset + 4]
        length = int.from_bytes(data[offset + 5:offset + 9], "big")
        offset += 9
        if len(data) < offset + length:
            raise ValueError("truncated worker frame payload")
        yield index, tag, data[offset:offset + length]
        offset += length


def _instrumented_ledgers(chains: Sequence) -> List[TrafficLedger]:
    """The (deduplicated, ordered) traffic ledgers reachable from ``chains``.

    Computed identically in parent and child — the child inherits the very
    same objects through fork — so ledger deltas can be matched by position.
    """
    ledgers: List[TrafficLedger] = []
    seen = set()
    for chain in chains:
        ledger = getattr(getattr(chain, "transport", None), "ledger", None)
        if isinstance(ledger, TrafficLedger) and id(ledger) not in seen:
            seen.add(id(ledger))
            ledgers.append(ledger)
    return ledgers


def _encode_result(result) -> Tuple[int, bytes]:
    if isinstance(result, ChainOutcome):
        try:
            return _TAG_OUTCOME, encode_chain_outcome(
                result.chain_id, result.accept_rejected, result.result
            )
        except UnsupportedPayload:
            pass
    return _TAG_PICKLE, pickle.dumps(result)


def _encode_exception(exc: BaseException) -> bytes:
    try:
        return pickle.dumps(exc)
    except Exception:
        return pickle.dumps(RuntimeError(f"{type(exc).__name__}: {exc}"))


class MultiprocessBackend(ExecutionBackend):
    """Mix chains in forked worker processes (POSIX only).

    Satisfies the :class:`~repro.engine.backends.ExecutionBackend` contract:
    ordered results, first exception (by chain order) propagated.  Workers
    are forked per call — per-round state is tiny compared to the mixing
    work, and a fresh fork inherits exactly the state a persistent worker
    would have had to synchronise.
    """

    name = "multiprocess"

    #: Worker mutations die with the fork; the engine therefore runs the
    #: precompute stage inline in the parent, and the per-round tables reach
    #: the mix workers through copy-on-write fork inheritance (the
    #: "shipping" of precomputed tables across the process boundary).
    shares_state = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if not hasattr(os, "fork"):
            raise ConfigurationError("the multiprocess backend requires POSIX fork")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("a multiprocess backend needs at least one worker")
        self._max_workers = max_workers

    def map_chains(self, fn: Callable[[_T], _R], chains: Sequence[_T]) -> List[_R]:
        chains = list(chains)
        workers = min(self._max_workers or (os.cpu_count() or 4), len(chains))
        if len(chains) <= 1 or workers <= 1:
            return [fn(chain) for chain in chains]

        ledgers = _instrumented_ledgers(chains)
        slices = [list(range(start, len(chains), workers)) for start in range(workers)]
        procs: List[Tuple[int, int, List[int]]] = []
        for indices in slices:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                status = 0
                try:
                    os.close(read_fd)
                    _write_all(write_fd, self._run_slice(fn, chains, indices, ledgers))
                    os.close(write_fd)
                except BaseException:
                    status = 1
                finally:
                    # Never run the parent's cleanup/atexit machinery twice.
                    os._exit(status)
            os.close(write_fd)
            procs.append((pid, read_fd, indices))

        results: List[Optional[_R]] = [None] * len(chains)
        errors: List[Optional[BaseException]] = [None] * len(chains)
        pending = list(procs)
        try:
            while pending:
                pid, read_fd, indices = pending.pop(0)
                try:
                    reply = _read_all(read_fd)
                finally:
                    os.close(read_fd)
                    _, status = os.waitpid(pid, 0)
                seen = set()
                for index, tag, payload in _iter_frames(reply):
                    if tag == _TAG_LEDGERS:
                        for position, delta in enumerate(pickle.loads(payload)):
                            if position < len(ledgers):
                                ledgers[position].extend(
                                    LinkRecord.from_tuple(record) for record in delta
                                )
                        continue
                    seen.add(index)
                    if tag == _TAG_OUTCOME:
                        chain_id, accept_rejected, result = decode_chain_outcome(payload)
                        results[index] = ChainOutcome(
                            chain_id=chain_id, accept_rejected=accept_rejected, result=result
                        )
                    elif tag == _TAG_PICKLE:
                        results[index] = pickle.loads(payload)
                    elif tag == _TAG_ERROR:
                        errors[index] = pickle.loads(payload)
                    else:
                        raise RuntimeError(f"unknown worker frame tag {tag}")
                missing = [index for index in indices if index not in seen]
                if missing:
                    raise RuntimeError(
                        f"mix worker {pid} exited with status "
                        f"{os.waitstatus_to_exitcode(status)} "
                        f"without results for chains {missing}"
                    )
        finally:
            # A malformed reply aborts the loop above; still close and reap
            # the untouched workers so repeated failures cannot exhaust the
            # fd table or accumulate zombies.
            for pid, read_fd, _ in pending:
                try:
                    os.close(read_fd)
                except OSError:
                    pass
                try:
                    os.waitpid(pid, 0)
                except OSError:
                    pass
        for index in range(len(chains)):
            if errors[index] is not None:
                raise errors[index]
        return results

    @staticmethod
    def _run_slice(fn, chains, indices: Sequence[int], ledgers: Sequence[TrafficLedger]) -> bytes:
        """Worker body: run ``fn`` over this slice; frame results and ledger delta."""
        marks = [ledger.record_count() for ledger in ledgers]
        frames = []
        for index in indices:
            try:
                tag, payload = _encode_result(fn(chains[index]))
            except BaseException as exc:
                tag, payload = _TAG_ERROR, _encode_exception(exc)
            frames.append(_pack_frame(index, tag, payload))
        deltas = [
            [record.to_tuple() for record in ledger.records_since(mark)]
            for ledger, mark in zip(ledgers, marks)
        ]
        if any(deltas):
            frames.append(_pack_frame(_LEDGER_INDEX, _TAG_LEDGERS, pickle.dumps(deltas)))
        return b"".join(frames)

    def close(self) -> None:
        """Nothing pooled: workers are forked per call."""
