"""The round engine: orchestration policy for one communication round.

:class:`RoundEngine` decomposes :meth:`Deployment.run_round
<repro.coordinator.network.Deployment.run_round>` into the explicit stages
described in :mod:`repro.engine.stages` and delegates the mix stage to a
pluggable :class:`~repro.engine.backends.ExecutionBackend`.  The engine holds
no round state of its own — everything lives in the :class:`RoundContext` —
so a scheduler (see :mod:`repro.engine.stagger`) may interleave the stages of
consecutive rounds.

Stage/state ownership, which is what makes that interleaving safe:

* **prepare** and **announce** touch chain state (per-round inner keys);
* **collect** touches only user state, the cover store, and the report;
* **precompute** touches chain state for its own round only — per-round
  precompute tables, written deterministically and never read by any other
  round;
* **mix** touches only chain state for its own round;
* **deliver** and **fetch** touch the mailbox hub, user state, and the
  report.

The scheduler keeps prepare/announce/deliver/fetch on the coordinating
thread and only ever overlaps *collect* (user state) and *precompute*
(round *r*'s per-round tables) with *mix* (round *r − 1*'s chain state) —
disjoint by construction.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.engine.backends import ExecutionBackend, SerialBackend
from repro.engine.stages import ChainOutcome, RoundContext, RoundReport, RoundSpec
from repro.population.streaming import built_chunks, chunk_spans
from repro.transport.envelope import (
    MAILBOX_DELIVERY,
    MAILBOX_FETCH,
    MAILBOX_FETCH_BATCH,
    Envelope,
    submission_batch_envelope,
    submission_envelope,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.coordinator.network import Deployment

__all__ = ["RoundEngine"]


class RoundEngine:
    """Executes rounds for one deployment through a pluggable backend."""

    def __init__(self, deployment: "Deployment", backend: Optional[ExecutionBackend] = None) -> None:
        self.deployment = deployment
        self.backend = backend or SerialBackend()

    # -- one-shot execution ----------------------------------------------------

    def execute_round(self, spec: RoundSpec) -> RoundReport:
        """Run all six stages of one round back to back."""
        ctx = self.prepare(spec)
        self.collect(ctx)
        self.finalize_collect(ctx)
        self.precompute(ctx)
        self.mix(ctx)
        self.deliver(ctx)
        self.fetch(ctx)
        return ctx.report

    # -- individual stages -------------------------------------------------------

    def announce(self, round_number: int) -> None:
        """Announce (idempotently) the per-round inner keys for a future round.

        The staggered scheduler calls this ahead of time so that, while a
        round is mixing, the overlapped collect stage finds every key view it
        needs already cached and never touches chain state.
        """
        deployment = self.deployment
        deployment._begin_round_on_chains(round_number)

    def prepare(self, spec: RoundSpec) -> RoundContext:
        """Allocate the round number and assemble the chain key views."""
        deployment = self.deployment
        round_number = deployment.next_round
        deployment.next_round += 1
        ctx = RoundContext(
            round_number=round_number,
            spec=spec,
            report=RoundReport(round_number=round_number),
        )
        ctx.current_views = deployment.chain_keys_view(round_number)
        if deployment.config.use_cover_messages:
            ctx.next_views = deployment.chain_keys_view(round_number + 1)
        ctx.per_chain = {chain.chain_id: [] for chain in deployment.chains}
        return ctx

    def _upload_submissions(self, ctx: RoundContext, user, submissions) -> list:
        """Send one user's submissions to their entry servers over the transport.

        Returns the submissions as the entry servers received them — for the
        in-process transport the same objects, for an instrumented transport
        fresh objects decoded from the wire bytes.
        """
        deployment = self.deployment
        envelopes = user.submission_envelopes(
            submissions, deployment.entry_servers, upload_round=ctx.round_number
        )
        return [deployment.transport.deliver(envelope) for envelope in envelopes]

    def _build_user_submissions(self, ctx: RoundContext, user) -> None:
        """Build one online user's submissions and bank next round's covers.

        Both the round's submissions and the next round's cover set cross the
        client→entry-server link *this* round (covers are banked ahead of
        time, §5.3.3), so both uploads are routed through the transport here.
        """
        deployment = self.deployment
        built = user.build_round_submissions(
            ctx.round_number,
            deployment.num_chains,
            ctx.current_views,
            payload=ctx.spec.payloads.get(user.name),
        )
        ctx.user_submissions[user.name] = self._upload_submissions(ctx, user, built)
        if deployment.config.use_cover_messages:
            covers = user.build_cover_submissions(
                ctx.round_number + 1, deployment.num_chains, ctx.next_views
            )
            deployment._cover_store[user.name] = self._upload_submissions(ctx, user, covers)

    def collect(self, ctx: RoundContext, defer: "frozenset[str]" = frozenset()) -> None:
        """Gather submissions from every online user; play covers for the rest.

        ``defer`` names users whose submissions must not be built yet — the
        staggered scheduler passes the previous round's ``notice_targets``,
        because those users' conversation state may flip when the previous
        round's fetch runs (an offline notice ends the conversation, turning
        next round's conversation message into a loopback).  Their builds
        happen in :meth:`finalize_collect`, after that fetch.  A user's own
        draw order never changes — only *when* it runs — so reports stay
        bit-identical to serial execution.

        When the deployment carries a :class:`~repro.population.
        UserPopulation`, the online builds run through its whole-chain batch
        path instead of the per-user loop; users the population does not own
        (adversarial wrappers swapped into ``deployment.users``) keep the
        per-user path.
        """
        deployment = self.deployment
        population = deployment.population
        spec = ctx.spec
        report = ctx.report
        batched = []
        for user in deployment.users:
            if user.name in spec.offline_users:
                report.offline_users.append(user.name)
                covers = deployment._cover_store.pop(user.name, None)
                if covers is not None:
                    report.used_cover_for.append(user.name)
                    ctx.user_submissions[user.name] = list(covers)
                    if user.conversation is not None:
                        # The partner will find an offline notice in this
                        # round's mailbox; anyone scheduling ahead must wait
                        # for this round's fetch before building their next
                        # submissions.
                        ctx.notice_targets.add(user.conversation.partner_name)
                    # The cover set carried an offline notice to the partner
                    # (§5.3.3): from the user's own point of view the
                    # conversation is over until re-established out of band.
                    user.end_conversation()
                continue
            if user.name in defer:
                ctx.deferred_users.append(user.name)
                continue
            if population is not None and population.owns(user):
                batched.append(user)
                continue
            self._build_user_submissions(ctx, user)
        if batched:
            self._build_population_submissions(ctx, batched)

    # -- population (batched) build path -----------------------------------------

    def _upload_submission_batches(
        self, ctx: RoundContext, per_chain, cover: bool, part: Optional[int] = None
    ) -> dict:
        """Ship per-chain batches over the transport; scatter back per sender.

        One framed envelope crosses each (chain, entry-server) link — per
        round in the monolithic path, per (chain, chunk) when the streaming
        pipeline passes a ``part`` index.  The delivered (possibly
        re-decoded) submissions are scattered into per-sender FIFO queues
        keyed by chain, from which :meth:`_build_population_submissions`
        reassembles each user's list in her own chain-slot order — the exact
        shape the per-user path stores.
        """
        deployment = self.deployment
        queues: dict = {}
        for chain_id, submissions in per_chain.items():
            delivered = deployment.transport.deliver(
                submission_batch_envelope(
                    chain_id,
                    submissions,
                    deployment.entry_servers,
                    ctx.round_number,
                    cover=cover,
                    part=part,
                )
            )
            chain_queues = queues.setdefault(chain_id, {})
            for submission in delivered or []:
                chain_queues.setdefault(submission.sender, []).append(submission)
        return queues

    def _scatter_batch(self, queues: dict, users) -> dict:
        """Rebuild per-user submission lists from per-chain sender queues."""
        population = self.deployment.population
        per_user: dict = {}
        for user in users:
            submissions = []
            for chain_id in population.chain_assignments[user.name]:
                queue = queues.get(chain_id, {}).get(user.name)
                if queue:
                    submissions.append(queue.pop(0))
            per_user[user.name] = submissions
        # Anything left in a queue (a duplicated batch element from a link
        # fault) still belongs to its sender; append in chain order.
        for chain_id in sorted(queues):
            for sender, leftover in queues[chain_id].items():
                if sender in per_user and leftover:
                    per_user[sender].extend(leftover)
        return per_user

    def _build_population_submissions(self, ctx: RoundContext, users) -> None:
        """Batched equivalent of :meth:`_build_user_submissions` for ``users``.

        Streams through :func:`repro.population.streaming.built_chunks`:
        with ``population_chunk_size`` unset that is a single
        whole-population chunk (the monolithic reference pass — envelope
        stream unchanged); with it set, each chunk is built (possibly in a
        forked worker), uploaded as per-(chain, chunk) framed envelopes, and
        released before the next, so peak build memory is O(chunk).  Uploads
        always run here on the coordinating thread in (chunk, chain) order,
        so every transport sees the same deterministic envelope stream
        regardless of how the chunks were built.
        """
        deployment = self.deployment
        population = deployment.population
        config = deployment.config
        chunk_size = config.population_chunk_size
        for chunk in built_chunks(
            population,
            ctx.round_number,
            ctx.current_views,
            ctx.next_views,
            users,
            ctx.spec.payloads,
            chunk_size,
            use_covers=config.use_cover_messages,
            num_workers=config.population_build_workers,
        ):
            part = chunk.index if chunk_size is not None else None
            delivered = self._scatter_batch(
                self._upload_submission_batches(
                    ctx, chunk.submissions, cover=False, part=part
                ),
                chunk.users,
            )
            ctx.user_submissions.update(delivered)
            if chunk.covers is not None:
                banked = self._scatter_batch(
                    self._upload_submission_batches(
                        ctx, chunk.covers, cover=True, part=part
                    ),
                    chunk.users,
                )
                deployment._cover_store.update(banked)
            population.emit_progress("build", chunk.index, len(chunk.users))

    def _fold_user_submissions(
        self, ctx: RoundContext, per_chain: Dict[int, list], strict: bool = True
    ) -> None:
        """Fold delivered per-user submissions into per-chain batches.

        Walks the users in global (deployment) order, skipping uploads a
        faulty transport dropped (``None``) — the one definition of which
        submissions are pending, shared by :meth:`finalize_collect`
        (assembling the mix batches) and the overlapped precompute
        (operating on the same pending set).  ``strict`` keeps
        finalize_collect's invariant that a submission for a chain the
        deployment does not run fails loudly (``KeyError``) instead of
        being counted into a batch no chain will ever mix; the precompute
        fold is tolerant — it only wants whatever work it can do early.
        """
        for user in self.deployment.users:
            for submission in ctx.user_submissions.get(user.name, []):
                if submission is not None:
                    if strict:
                        per_chain[submission.chain_id].append(submission)
                    else:
                        per_chain.setdefault(submission.chain_id, []).append(submission)

    def finalize_collect(self, ctx: RoundContext) -> None:
        """Build any deferred users' submissions and assemble the chain batches.

        Batches are assembled in global user order (then extra submissions),
        so their contents are independent of which phase built each user.
        """
        deployment = self.deployment
        for user_name in ctx.deferred_users:
            self._build_user_submissions(ctx, deployment.user(user_name))
        ctx.deferred_users = []
        self._fold_user_submissions(ctx, ctx.per_chain)
        for submission in ctx.spec.extra_submissions:
            if submission.chain_id in ctx.per_chain:
                # Injected (possibly adversarial) submissions cross the same
                # client→entry-server link as honest ones.
                delivered = deployment.transport.deliver(
                    submission_envelope(
                        submission, deployment.entry_servers, ctx.round_number
                    )
                )
                if delivered is not None:
                    ctx.per_chain[submission.chain_id].append(delivered)
        ctx.report.total_submissions = sum(len(batch) for batch in ctx.per_chain.values())
        if deployment.config.stream_mix:
            # The fold above was the last reader of the per-user index, but
            # the index still references every decoded submission — left in
            # place it would pin the whole decoded round even after the
            # chains release their batches at acceptance.  Streamed mode
            # drops it here so the decoded objects die with ``per_chain``.
            ctx.user_submissions = {}

    # -- precompute stage (§5.2.1 / DESIGN.md §8) ---------------------------------

    def _precompute_batches(
        self, ctx: RoundContext, per_chain: Dict[int, list], use_backend: bool = True
    ) -> None:
        """Cascade the chains' public-key precompute over pending submissions.

        Incremental: members skip publics already in their round tables, so
        calling this once from the overlap window and again after
        :meth:`finalize_collect` only pays for the entries the first pass
        could not see (deferred users, injected extras).  In-process
        backends fan the per-chain work out through ``map_chains``; the
        multiprocess backend cannot (worker state dies with the fork), so
        its precompute runs inline here and the mix workers inherit the
        tables by copy-on-write at fork time.  ``use_backend=False`` forces
        the inline path regardless — the staggered overlap window uses it
        so the precompute never competes with the in-flight mix for the
        backend's worker pool.
        """
        deployment = self.deployment

        def run_chain(chain) -> None:
            submissions = per_chain.get(chain.chain_id)
            if submissions:
                chain.precompute_round(
                    ctx.round_number, chain.decode_submission_publics(submissions)
                )

        started = time.perf_counter()  # xrdlint: disable=XRD102 - stage timing, not canonical
        if use_backend and self.backend.shares_state:
            self.backend.map_chains(run_chain, deployment.chains)
        else:
            for chain in deployment.chains:
                run_chain(chain)
        timings = ctx.report.stage_seconds
        timings["precompute"] = (
            timings.get("precompute", 0.0)
            # xrdlint: disable=XRD102 - stage timing, excluded from canonical bytes
            + time.perf_counter() - started
        )

    def precompute(self, ctx: RoundContext) -> None:
        """Run the round's public-key work ahead of the online mix phase.

        Operates on the assembled chain batches, so it is complete after
        :meth:`finalize_collect`; a no-op when the deployment disables
        precomputation (``DeploymentConfig.precompute=False`` — the
        reference online-only path the benchmarks compare against).
        """
        if not self.deployment.config.precompute:
            return
        if self.deployment.remote_mix is not None:
            # The owning mix processes precompute on their own replicas as
            # part of the MIX RPC; the coordinator's members never mix.
            return
        self._precompute_batches(ctx, ctx.per_chain)

    def precompute_collected(self, ctx: RoundContext) -> None:
        """Early precompute over whatever :meth:`collect` has built so far.

        The staggered scheduler calls this inside the overlap window, while
        the previous round is still mixing, so the bulk of round *r*'s
        public-key work hides behind round *r − 1*'s online phase.  It runs
        inline on the coordinating thread (``use_backend=False``) so it
        never competes with that in-flight mix for the backend's worker
        pool.  Deferred users and extra submissions are not built yet; the
        post-finalize :meth:`precompute` tops those up.
        """
        if not self.deployment.config.precompute:
            return
        if self.deployment.remote_mix is not None:
            return
        per_chain: Dict[int, list] = {}
        self._fold_user_submissions(ctx, per_chain, strict=False)
        self._precompute_batches(ctx, per_chain, use_backend=False)

    def mix(self, ctx: RoundContext) -> None:
        """Run the aggregate hybrid shuffle on every chain via the backend.

        This is the protocol's *online* phase; its wall-clock duration is
        recorded in ``report.stage_seconds["mix"]`` so the precompute win is
        measurable (the fig4/fig5 companions and the benchmark gate track
        it).
        """

        pre_rejected: Dict[int, List[str]] = {}

        def run_chain(chain) -> ChainOutcome:
            if chain.chain_id in pre_rejected:
                rejected = pre_rejected[chain.chain_id]
            else:
                submissions = ctx.per_chain[chain.chain_id]
                _, rejected = chain.accept_submissions(ctx.round_number, submissions)
            result = chain.run_round(
                ctx.round_number, retry_after_blame=ctx.spec.retry_after_blame
            )
            return ChainOutcome(chain_id=chain.chain_id, accept_rejected=rejected, result=result)

        started = time.perf_counter()  # xrdlint: disable=XRD102 - stage timing, not canonical
        if self.deployment.remote_mix is not None:
            outcomes = self.deployment.remote_mix.mix_round(ctx)
        else:
            # Streamed chains accept up front, before any chain mixes: each
            # acceptance re-encodes its batch into the chain's wire blob and
            # keeps sender-only stubs for blame, so the engine can release
            # the decoded submission list — the round's largest structure —
            # for *every* chain before the first mix's transient working set
            # stacks on top of it.  (Acceptance is transport-free and cheap
            # next to mixing, so hoisting it out of the backend's fan-out
            # does not move the online-phase clock.)
            for chain in self.deployment.chains:
                if not chain.stream_mix:
                    continue
                _, rejected = chain.accept_submissions(
                    ctx.round_number, ctx.per_chain[chain.chain_id]
                )
                pre_rejected[chain.chain_id] = rejected
                ctx.per_chain[chain.chain_id] = []
            outcomes = self.backend.map_chains(run_chain, self.deployment.chains)
        # stage_seconds is excluded from canonical_bytes: diagnostics only.
        # xrdlint: disable=XRD102
        ctx.report.stage_seconds["mix"] = time.perf_counter() - started
        ctx.chain_outcomes = {outcome.chain_id: outcome for outcome in outcomes}

    def deliver(self, ctx: RoundContext) -> None:
        """Fold chain outcomes into the report and deliver mailbox messages.

        Runs in chain order regardless of how the backend scheduled the
        mixing, so report fields and mailbox contents are deterministic.
        """
        deployment = self.deployment
        report = ctx.report
        for chain in deployment.chains:
            outcome = ctx.chain_outcomes[chain.chain_id]
            result = outcome.result
            report.rejected_senders.extend(outcome.accept_rejected)
            report.chain_results[chain.chain_id] = result
            report.rejected_senders.extend(
                sender
                for sender in result.rejected_senders
                if sender not in report.rejected_senders
            )
            if result.delivered:
                # The last server of the chain ships the recovered messages
                # to the mailbox tier — as one framed message per chain, or
                # per (chain, chunk) under the streaming pipeline, so the
                # mailbox hub's intake is incremental and the largest single
                # wire message stays bounded.  deliver_batch preserves
                # per-recipient arrival order across successive calls, so
                # chunked delivery leaves mailbox contents bit-identical.
                chunk_size = deployment.config.population_chunk_size
                for part, span in enumerate(
                    chunk_spans(result.mailbox_messages, chunk_size)
                ):
                    messages = deployment.transport.deliver(
                        Envelope(
                            kind=MAILBOX_DELIVERY,
                            source=chain.members[-1].server_name,
                            destination="mailbox-hub",
                            round_number=ctx.round_number,
                            payload=span,
                            chain_id=chain.chain_id,
                            part=part if chunk_size is not None else None,
                        )
                    )
                    report.dropped_unknown_recipients += (
                        deployment.mailboxes.deliver_batch(ctx.round_number, messages)
                    )
        # Server convictions (blame verdicts, proof failures) become pending
        # recoveries: the coordinator evicts and re-forms on an explicit
        # Deployment.recover(), never mid-pipeline — see that method's note
        # on scheduler parity.  Recorded here, in chain order on the
        # coordinating thread, so every backend records the same sequence.
        for chain_id, servers in report.server_convictions().items():
            deployment.note_convictions(ctx.round_number, chain_id, servers)

    def fetch(self, ctx: RoundContext) -> None:
        """Each online user fetches and decrypts her mailbox.

        With a population, the downloads are framed per mailbox shard (one
        envelope per shard instead of one per user) and decrypted through
        the population's batched trial-decryption cascade; users the
        population does not own keep the per-user flow.
        """
        deployment = self.deployment
        population = deployment.population
        report = ctx.report
        batched = []
        for user in deployment.users:
            if user.name in ctx.spec.offline_users:
                continue
            if population is not None and population.owns(user):
                batched.append(user)
                continue
            inbox = deployment.mailboxes.get(ctx.round_number, user.public_bytes)
            # The mailbox server sends the user her round's download.
            inbox = deployment.transport.deliver(
                Envelope(
                    kind=MAILBOX_FETCH,
                    source=deployment.mailboxes.server_name_for(user.public_bytes),
                    destination=user.name,
                    round_number=ctx.round_number,
                    payload=inbox,
                )
            )
            report.mailbox_counts[user.name] = len(inbox)
            report.delivered[user.name] = user.decrypt_mailbox(
                ctx.round_number, inbox, deployment.num_chains
            )
        if batched:
            self._fetch_population(ctx, batched)

    def _fetch_population(self, ctx: RoundContext, users) -> None:
        """Batched fetch: one framed download per mailbox shard.

        Under the streaming pipeline the users are walked in population
        chunks: each chunk's downloads are framed per (shard, chunk) and
        trial-decrypted before the next chunk's are fetched, so the fetch
        stage holds O(chunk) inboxes at a time.  ``chunk_size=None`` is one
        whole-population chunk — the monolithic reference flow.  Mailbox
        classification is per (user, message), so chunking cannot change
        any outcome; chunks are decrypted in order, so the §5.3.3
        mark-partner-offline side effects land in the same user order too.
        """
        deployment = self.deployment
        population = deployment.population
        report = ctx.report
        chunk_size = deployment.config.population_chunk_size
        for part, span in enumerate(chunk_spans(users, chunk_size)):
            inboxes_by_owner: dict = {}
            for server, owners in deployment.mailboxes.shard_owners(
                [user.public_bytes for user in span]
            ):
                pairs = deployment.mailboxes.fetch_batch(ctx.round_number, owners)
                delivered = deployment.transport.deliver(
                    Envelope(
                        kind=MAILBOX_FETCH_BATCH,
                        source=server.name,
                        destination="user-population",
                        round_number=ctx.round_number,
                        payload=pairs,
                        part=part if chunk_size is not None else None,
                    )
                )
                for owner, messages in delivered or []:
                    inboxes_by_owner.setdefault(owner, []).extend(messages)
            inboxes = [inboxes_by_owner.get(user.public_bytes, []) for user in span]
            for user, inbox in zip(span, inboxes):
                report.mailbox_counts[user.name] = len(inbox)
            report.delivered.update(
                population.decrypt_mailboxes_batch(
                    ctx.round_number, span, inboxes, deployment.num_chains
                )
            )
            population.emit_progress("fetch", part, len(span))

    # -- multi-round convenience ------------------------------------------------

    def execute_rounds(self, specs: Sequence[RoundSpec]) -> List[RoundReport]:
        """Run several rounds sequentially (no stagger)."""
        return [self.execute_round(spec) for spec in specs]

    def close(self) -> None:
        self.backend.close()
