"""Typed artifacts of the staged round pipeline (see DESIGN.md §2).

A communication round decomposes into six explicit stages:

1. **prepare** — allocate the round number and announce the per-round inner
   keys on every chain, yielding the key views users need;
2. **collect** — gather one submission per (user, assigned chain), play
   covers for offline users, and bank next round's covers;
3. **precompute** — run every chain member's public-key work (DH blinding,
   outer-layer key derivation) on the collected batch ahead of the online
   phase (§5.2.1); deterministic and optional, so a scheduler may run it
   early, partially, or not at all without changing any output;
4. **mix** — run the aggregate hybrid shuffle on every chain (the only stage
   whose execution strategy is pluggable — chains share no mutable state, so
   a backend may mix them concurrently);
5. **deliver** — fold the per-chain outcomes into the round report and hand
   the recovered mailbox messages to the mailbox servers, in chain order so
   the result is independent of the mixing schedule;
6. **fetch** — each online user fetches and decrypts her mailbox.

This module holds the data that flows between those stages: the
:class:`RoundSpec` describing what a round should do, the per-chain
:class:`ChainOutcome`, the :class:`RoundContext` threaded through the
stages, and the :class:`RoundReport` handed back to the caller.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.client.user import ChainKeysView, ReceivedMessage
from repro.mixnet.ahs import ChainRoundResult
from repro.mixnet.messages import ClientSubmission

__all__ = ["RoundSpec", "ChainOutcome", "RoundContext", "RoundReport"]


@dataclass
class RoundSpec:
    """Everything the engine needs to know to execute one round."""

    payloads: Dict[str, bytes] = field(default_factory=dict)
    offline_users: Set[str] = field(default_factory=set)
    extra_submissions: List[ClientSubmission] = field(default_factory=list)
    retry_after_blame: bool = True


@dataclass
class RoundReport:
    """Everything observable about one completed round."""

    round_number: int
    delivered: Dict[str, List[ReceivedMessage]] = field(default_factory=dict)
    mailbox_counts: Dict[str, int] = field(default_factory=dict)
    chain_results: Dict[int, ChainRoundResult] = field(default_factory=dict)
    offline_users: List[str] = field(default_factory=list)
    used_cover_for: List[str] = field(default_factory=list)
    rejected_senders: List[str] = field(default_factory=list)
    total_submissions: int = 0
    dropped_unknown_recipients: int = 0
    #: Wall-clock seconds per timed stage (``"precompute"``, ``"mix"`` — the
    #: online phase).  Diagnostics only: timings are machine-dependent, so
    #: they are deliberately excluded from :meth:`canonical_bytes` and play
    #: no part in the parity matrix.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def conversation_payloads(self, user_name: str) -> List[bytes]:
        """Convenience: the conversation payloads delivered to ``user_name``."""
        return [
            message.content
            for message in self.delivered.get(user_name, [])
            if message.kind == ReceivedMessage.KIND_CONVERSATION
        ]

    def all_chains_delivered(self) -> bool:
        return all(result.delivered for result in self.chain_results.values())

    def server_convictions(self) -> Dict[int, List[str]]:
        """Servers this round's chain outcomes convicted, by chain.

        A server is convicted either by a blame verdict
        (:class:`~repro.mixnet.blame.BlameVerdict.malicious_servers`) or by
        an aggregate-proof / inner-key-reveal failure
        (``misbehaving_server``).  The engine's deliver stage feeds these to
        :meth:`Deployment.note_convictions
        <repro.coordinator.network.Deployment.note_convictions>`, where an
        explicit :meth:`~repro.coordinator.network.Deployment.recover` turns
        them into evictions and chain re-formation.
        """
        convictions: Dict[int, List[str]] = {}
        for chain_id in sorted(self.chain_results):
            result = self.chain_results[chain_id]
            if result.delivered:
                continue
            names: List[str] = []
            verdict = result.blame_verdict
            if verdict is not None:
                names.extend(verdict.malicious_servers)
            if result.misbehaving_server and result.misbehaving_server not in names:
                names.append(result.misbehaving_server)
            if names:
                convictions[chain_id] = names
        return convictions

    def canonical_bytes(self) -> bytes:
        """A deterministic byte serialisation of the report's payload.

        Two rounds that delivered the same messages to the same users, with
        the same per-chain outcomes, in the same order, produce identical
        canonical bytes — regardless of which execution backend or scheduler
        produced them.  The engine parity tests compare these.
        """
        hasher = hashlib.sha256()

        def feed(*parts: object) -> None:
            for part in parts:
                data = part if isinstance(part, bytes) else str(part).encode()
                hasher.update(len(data).to_bytes(8, "big"))
                hasher.update(data)

        feed(b"round", self.round_number)
        for user_name in sorted(self.delivered):
            feed(b"user", user_name, self.mailbox_counts.get(user_name, -1))
            for message in self.delivered[user_name]:
                feed(message.kind, message.content, message.chain_id, message.partner_name)
        for chain_id in sorted(self.chain_results):
            result = self.chain_results[chain_id]
            feed(b"chain", chain_id, result.status, result.input_digest, result.invalid_inner_count)
            feed(result.misbehaving_server, *result.rejected_senders)
            for message in result.mailbox_messages:
                feed(message.to_bytes())
        feed(b"offline", *self.offline_users)
        feed(b"covers", *self.used_cover_for)
        feed(b"rejected", *self.rejected_senders)
        feed(b"totals", self.total_submissions, self.dropped_unknown_recipients)
        return hasher.digest()


@dataclass
class ChainOutcome:
    """What one chain produced during the mix stage."""

    chain_id: int
    accept_rejected: List[str]
    result: ChainRoundResult


@dataclass
class RoundContext:
    """Mutable state threaded through the stages of one round."""

    round_number: int
    spec: RoundSpec
    report: RoundReport
    current_views: Dict[int, ChainKeysView] = field(default_factory=dict)
    next_views: Dict[int, ChainKeysView] = field(default_factory=dict)
    #: Per-user submission lists, assembled into ``per_chain`` (in global
    #: user order, so batches are schedule-independent) by finalize_collect.
    user_submissions: Dict[str, List[ClientSubmission]] = field(default_factory=dict)
    #: Users whose submission build was deferred past the previous round's
    #: fetch because that fetch may flip their conversation state.
    deferred_users: List[str] = field(default_factory=list)
    #: Users who may receive an offline notice in THIS round's mailbox (their
    #: partner went offline and a cover with a notice was played): the
    #: staggered scheduler must not build their next-round submissions until
    #: this round's fetch has run.
    notice_targets: Set[str] = field(default_factory=set)
    per_chain: Dict[int, List[ClientSubmission]] = field(default_factory=dict)
    chain_outcomes: Dict[int, ChainOutcome] = field(default_factory=dict)
