"""Exception hierarchy for the XRD reproduction.

Every error raised by the library derives from :class:`XRDError` so that
applications embedding the library can catch a single base class.  The
sub-classes mirror the failure modes the paper describes: malformed or
misauthenticated ciphertexts, failed zero-knowledge proofs, protocol-state
violations, and blame-protocol outcomes.
"""

from __future__ import annotations


class XRDError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(XRDError):
    """Base class for failures inside the cryptographic substrate."""


class DecodingError(CryptoError):
    """A byte string could not be decoded into a group element or scalar."""


class AuthenticationError(CryptoError):
    """Authenticated decryption failed (wrong key, nonce, or tampering)."""


class ProofError(CryptoError):
    """A zero-knowledge proof failed to verify."""


class ProtocolError(XRDError):
    """A participant deviated from the expected protocol state machine."""


class ConfigurationError(XRDError):
    """A deployment or protocol parameter is invalid or inconsistent."""


class ChainSelectionError(XRDError):
    """The chain-selection algorithm was invoked with invalid arguments."""


class MixingError(ProtocolError):
    """Mixing halted because tampering or misbehaviour was detected."""


class BlameError(ProtocolError):
    """The blame protocol could not complete or produced an inconsistency."""


class MailboxError(XRDError):
    """A mailbox operation referenced an unknown mailbox or malformed data."""


class TransportError(XRDError):
    """A transport could not carry a message (peer unreachable, rejected
    handshake, connection lost, or the transport was already closed)."""


class SimulationError(XRDError):
    """The analytic/Monte-Carlo simulation was configured inconsistently."""
