"""cffi out-of-line builder for the ``_xrdkernels`` extension.

Run directly (``python -m repro.native._build``) or implicitly through
:mod:`repro.native`'s lazy first-use build.  The C source lives next to
this file in ``xrdkernels.c``; the compiled module is written into the
package directory so a plain source checkout self-hosts the extension
without a packaging step.
"""

from __future__ import annotations

import os

# The cdef below is the single source of truth for the Python-visible
# ABI; it must match the declarations in xrdkernels.c exactly.
CDEF = """
int xrd_abi_version(void);
int xrd_chacha20_blocks(const uint8_t *keys, const uint8_t *nonces,
                        const uint32_t *counters, size_t count, uint8_t *out);
int xrd_aead_seal_batch(const uint8_t *keys, const uint8_t *nonces, size_t count,
                        const uint8_t *plains, const uint64_t *pt_offsets,
                        const uint8_t *aad, size_t aad_len,
                        uint8_t *out, const uint64_t *out_offsets);
int xrd_aead_open_batch(const uint8_t *keys, const uint8_t *nonces, size_t count,
                        const uint8_t *datas, const uint64_t *ct_offsets,
                        const uint8_t *aad, size_t aad_len,
                        uint8_t *plain_out, const uint64_t *pt_offsets,
                        uint8_t *ok_out);
int xrd_modp_scalar_mult_batch(const uint8_t *prime, const uint8_t *elements,
                               size_t count, const uint8_t *exponent,
                               uint8_t *out);
int xrd_modp_fixed_mult_batch(const uint8_t *prime, const uint8_t *element,
                              const uint8_t *exponents, size_t count,
                              uint8_t *out);
int xrd_modp_multi_scalar_accumulate(const uint8_t *prime,
                                     const uint8_t *elements,
                                     const uint8_t *exponents, size_t count,
                                     uint8_t *out);
"""

_HERE = os.path.dirname(os.path.abspath(__file__))


def make_ffi():
    """Build the FFI object (requires cffi; import deferred on purpose)."""
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(CDEF)
    with open(os.path.join(_HERE, "xrdkernels.c"), "r", encoding="utf-8") as fh:
        source = fh.read()
    ffi.set_source("repro.native._xrdkernels", source)
    return ffi


ffibuilder = None  # populated lazily; setup.py expects a module-level name


def _get_ffibuilder():
    global ffibuilder
    if ffibuilder is None:
        ffibuilder = make_ffi()
    return ffibuilder


def compile_extension(verbose: bool = False) -> str:
    """Compile in place; returns the path of the built module."""
    return _get_ffibuilder().compile(tmpdir=os.path.dirname(os.path.dirname(_HERE)),
                                     verbose=verbose)


if __name__ == "__main__":  # pragma: no cover - manual build entry point
    print(compile_extension(verbose=True))
