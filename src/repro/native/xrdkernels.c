/* Native crypto kernels for the batched hot loops (DESIGN.md §11).
 *
 * Four kernel families, mirroring the pure-Python reference
 * implementations bit for bit:
 *
 *   - batched ChaCha20 keystream blocks (RFC 8439 §2.3);
 *   - ChaCha20-Poly1305 AEAD seal/open over whole batches (the
 *     trial-decrypt cascade behind adec_batch: one counter-0 block per
 *     message for the Poly1305 one-time key, verify-before-decrypt,
 *     payload keystream only for survivors);
 *   - Montgomery-form modular exponentiation over the small modp test
 *     group: many-bases-one-exponent (scalar_mult_batch),
 *     one-base-many-exponents (fixed_point_mult_batch), and the fused
 *     product-of-powers accumulate.
 *
 * Every entry point operates on whole batches behind one C call, so the
 * cffi wrapper releases the GIL for the duration.  All multi-byte modp
 * values are 32-byte big-endian, exactly the ModPGroup wire encoding;
 * ChaCha20 keys/nonces are the raw 32/12-byte strings.  Return codes:
 * 0 on success, negative on malformed input (the Python dispatcher
 * falls back to the reference path on any nonzero return).
 */

#include <stdint.h>
#include <string.h>

/* Bumped whenever a signature or semantic changes; the loader refuses a
 * stale prebuilt module and triggers a rebuild. */
#define XRD_KERNELS_ABI 1

int xrd_abi_version(void) { return XRD_KERNELS_ABI; }

/* ------------------------------------------------------------------ */
/* ChaCha20 (RFC 8439)                                                */
/* ------------------------------------------------------------------ */

static uint32_t le32(const uint8_t *p) {
    return (uint32_t)p[0] | ((uint32_t)p[1] << 8) | ((uint32_t)p[2] << 16)
         | ((uint32_t)p[3] << 24);
}

static void st32(uint8_t *p, uint32_t v) {
    p[0] = (uint8_t)v;
    p[1] = (uint8_t)(v >> 8);
    p[2] = (uint8_t)(v >> 16);
    p[3] = (uint8_t)(v >> 24);
}

#define ROTL32(v, n) (((v) << (n)) | ((v) >> (32 - (n))))
#define QR(a, b, c, d)                          \
    a += b; d ^= a; d = ROTL32(d, 16);          \
    c += d; b ^= c; b = ROTL32(b, 12);          \
    a += b; d ^= a; d = ROTL32(d, 8);           \
    c += d; b ^= c; b = ROTL32(b, 7);

static void chacha_block(const uint8_t key[32], uint32_t counter,
                         const uint8_t nonce[12], uint8_t out[64]) {
    uint32_t s[16], w[16];
    int i;
    s[0] = 0x61707865u; s[1] = 0x3320646Eu; s[2] = 0x79622D32u; s[3] = 0x6B206574u;
    for (i = 0; i < 8; i++) s[4 + i] = le32(key + 4 * i);
    s[12] = counter;
    for (i = 0; i < 3; i++) s[13 + i] = le32(nonce + 4 * i);
    memcpy(w, s, sizeof(s));
    for (i = 0; i < 10; i++) {
        QR(w[0], w[4], w[8],  w[12])
        QR(w[1], w[5], w[9],  w[13])
        QR(w[2], w[6], w[10], w[14])
        QR(w[3], w[7], w[11], w[15])
        QR(w[0], w[5], w[10], w[15])
        QR(w[1], w[6], w[11], w[12])
        QR(w[2], w[7], w[8],  w[13])
        QR(w[3], w[4], w[9],  w[14])
    }
    for (i = 0; i < 16; i++) st32(out + 4 * i, w[i] + s[i]);
}

/* XOR `len` bytes of message against the keystream starting at `counter`. */
static void chacha_xor(const uint8_t key[32], const uint8_t nonce[12],
                       uint32_t counter, const uint8_t *in, size_t len,
                       uint8_t *out) {
    uint8_t block[64];
    while (len) {
        size_t n = len < 64 ? len : 64, i;
        chacha_block(key, counter++, nonce, block);
        for (i = 0; i < n; i++) out[i] = in[i] ^ block[i];
        in += n; out += n; len -= n;
    }
}

int xrd_chacha20_blocks(const uint8_t *keys, const uint8_t *nonces,
                        const uint32_t *counters, size_t count, uint8_t *out) {
    size_t i;
    for (i = 0; i < count; i++)
        chacha_block(keys + 32 * i, counters[i], nonces + 12 * i, out + 64 * i);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Poly1305 (donna-32 style: 5x26-bit limbs, 64-bit accumulators)     */
/* ------------------------------------------------------------------ */

typedef struct {
    uint32_t r[5];
    uint32_t h[5];
    uint32_t pad[4];
    uint8_t buffer[16];
    size_t leftover;
} poly1305_ctx;

static void poly1305_init(poly1305_ctx *st, const uint8_t key[32]) {
    st->r[0] = (le32(key + 0)) & 0x3ffffff;
    st->r[1] = (le32(key + 3) >> 2) & 0x3ffff03;
    st->r[2] = (le32(key + 6) >> 4) & 0x3ffc0ff;
    st->r[3] = (le32(key + 9) >> 6) & 0x3f03fff;
    st->r[4] = (le32(key + 12) >> 8) & 0x00fffff;
    st->h[0] = st->h[1] = st->h[2] = st->h[3] = st->h[4] = 0;
    st->pad[0] = le32(key + 16);
    st->pad[1] = le32(key + 20);
    st->pad[2] = le32(key + 24);
    st->pad[3] = le32(key + 28);
    st->leftover = 0;
}

static void poly1305_blocks(poly1305_ctx *st, const uint8_t *m, size_t bytes,
                            uint32_t hibit) {
    uint32_t r0 = st->r[0], r1 = st->r[1], r2 = st->r[2], r3 = st->r[3], r4 = st->r[4];
    uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;
    uint32_t h0 = st->h[0], h1 = st->h[1], h2 = st->h[2], h3 = st->h[3], h4 = st->h[4];
    while (bytes >= 16) {
        uint64_t d0, d1, d2, d3, d4;
        uint32_t c;
        h0 += (le32(m + 0)) & 0x3ffffff;
        h1 += (le32(m + 3) >> 2) & 0x3ffffff;
        h2 += (le32(m + 6) >> 4) & 0x3ffffff;
        h3 += (le32(m + 9) >> 6) & 0x3ffffff;
        h4 += (le32(m + 12) >> 8) | hibit;
        d0 = (uint64_t)h0 * r0 + (uint64_t)h1 * s4 + (uint64_t)h2 * s3
           + (uint64_t)h3 * s2 + (uint64_t)h4 * s1;
        d1 = (uint64_t)h0 * r1 + (uint64_t)h1 * r0 + (uint64_t)h2 * s4
           + (uint64_t)h3 * s3 + (uint64_t)h4 * s2;
        d2 = (uint64_t)h0 * r2 + (uint64_t)h1 * r1 + (uint64_t)h2 * r0
           + (uint64_t)h3 * s4 + (uint64_t)h4 * s3;
        d3 = (uint64_t)h0 * r3 + (uint64_t)h1 * r2 + (uint64_t)h2 * r1
           + (uint64_t)h3 * r0 + (uint64_t)h4 * s4;
        d4 = (uint64_t)h0 * r4 + (uint64_t)h1 * r3 + (uint64_t)h2 * r2
           + (uint64_t)h3 * r1 + (uint64_t)h4 * r0;
        c = (uint32_t)(d0 >> 26); h0 = (uint32_t)d0 & 0x3ffffff;
        d1 += c; c = (uint32_t)(d1 >> 26); h1 = (uint32_t)d1 & 0x3ffffff;
        d2 += c; c = (uint32_t)(d2 >> 26); h2 = (uint32_t)d2 & 0x3ffffff;
        d3 += c; c = (uint32_t)(d3 >> 26); h3 = (uint32_t)d3 & 0x3ffffff;
        d4 += c; c = (uint32_t)(d4 >> 26); h4 = (uint32_t)d4 & 0x3ffffff;
        h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
        h1 += c;
        m += 16; bytes -= 16;
    }
    st->h[0] = h0; st->h[1] = h1; st->h[2] = h2; st->h[3] = h3; st->h[4] = h4;
}

static void poly1305_update(poly1305_ctx *st, const uint8_t *m, size_t bytes) {
    if (st->leftover) {
        size_t want = 16 - st->leftover;
        if (want > bytes) want = bytes;
        memcpy(st->buffer + st->leftover, m, want);
        st->leftover += want;
        m += want; bytes -= want;
        if (st->leftover < 16) return;
        poly1305_blocks(st, st->buffer, 16, 1u << 24);
        st->leftover = 0;
    }
    if (bytes >= 16) {
        size_t whole = bytes & ~(size_t)15;
        poly1305_blocks(st, m, whole, 1u << 24);
        m += whole; bytes -= whole;
    }
    if (bytes) {
        memcpy(st->buffer, m, bytes);
        st->leftover = bytes;
    }
}

static void poly1305_finish(poly1305_ctx *st, uint8_t tag[16]) {
    uint32_t h0, h1, h2, h3, h4, c;
    uint32_t g0, g1, g2, g3, g4, mask;
    uint64_t f;
    if (st->leftover) {
        size_t i = st->leftover;
        st->buffer[i++] = 1;
        for (; i < 16; i++) st->buffer[i] = 0;
        poly1305_blocks(st, st->buffer, 16, 0);
        st->leftover = 0;
    }
    h0 = st->h[0]; h1 = st->h[1]; h2 = st->h[2]; h3 = st->h[3]; h4 = st->h[4];
    c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
    c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
    c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
    c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
    c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;
    g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
    g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
    g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
    g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
    g4 = h4 + c - (1u << 26);
    mask = (g4 >> 31) - 1;
    g0 &= mask; g1 &= mask; g2 &= mask; g3 &= mask; g4 &= mask;
    mask = ~mask;
    h0 = (h0 & mask) | g0; h1 = (h1 & mask) | g1; h2 = (h2 & mask) | g2;
    h3 = (h3 & mask) | g3; h4 = (h4 & mask) | g4;
    h0 = (h0) | (h1 << 26);
    h1 = (h1 >> 6) | (h2 << 20);
    h2 = (h2 >> 12) | (h3 << 14);
    h3 = (h3 >> 18) | (h4 << 8);
    f = (uint64_t)h0 + st->pad[0]; h0 = (uint32_t)f;
    f = (uint64_t)h1 + st->pad[1] + (f >> 32); h1 = (uint32_t)f;
    f = (uint64_t)h2 + st->pad[2] + (f >> 32); h2 = (uint32_t)f;
    f = (uint64_t)h3 + st->pad[3] + (f >> 32); h3 = (uint32_t)f;
    st32(tag + 0, h0); st32(tag + 4, h1); st32(tag + 8, h2); st32(tag + 12, h3);
}

/* ------------------------------------------------------------------ */
/* ChaCha20-Poly1305 AEAD batches (encrypt-then-MAC, RFC 8439 §2.8)   */
/* ------------------------------------------------------------------ */

/* tag = Poly1305(pad16(aad) || pad16(ct) || le64(|aad|) || le64(|ct|))
 * under the one-time key from the message's counter-0 block. */
static void aead_tag(const uint8_t otk[32], const uint8_t *aad, size_t aad_len,
                     const uint8_t *ct, size_t ct_len, uint8_t tag[16]) {
    static const uint8_t zeros[16] = {0};
    uint8_t lengths[16];
    poly1305_ctx st;
    poly1305_init(&st, otk);
    poly1305_update(&st, aad, aad_len);
    if (aad_len % 16) poly1305_update(&st, zeros, 16 - aad_len % 16);
    poly1305_update(&st, ct, ct_len);
    if (ct_len % 16) poly1305_update(&st, zeros, 16 - ct_len % 16);
    st32(lengths + 0, (uint32_t)aad_len);
    st32(lengths + 4, (uint32_t)((uint64_t)aad_len >> 32));
    st32(lengths + 8, (uint32_t)ct_len);
    st32(lengths + 12, (uint32_t)((uint64_t)ct_len >> 32));
    poly1305_update(&st, lengths, 16);
    poly1305_finish(&st, tag);
}

int xrd_aead_seal_batch(const uint8_t *keys, const uint8_t *nonces, size_t count,
                        const uint8_t *plains, const uint64_t *pt_offsets,
                        const uint8_t *aad, size_t aad_len,
                        uint8_t *out, const uint64_t *out_offsets) {
    size_t i;
    uint8_t otk_block[64];
    for (i = 0; i < count; i++) {
        const uint8_t *key = keys + 32 * i;
        const uint8_t *nonce = nonces + 12 * i;
        size_t pt_len = (size_t)(pt_offsets[i + 1] - pt_offsets[i]);
        uint8_t *dst = out + out_offsets[i];
        if (out_offsets[i + 1] - out_offsets[i] != pt_len + 16) return -1;
        chacha_xor(key, nonce, 1, plains + pt_offsets[i], pt_len, dst);
        chacha_block(key, 0, nonce, otk_block);
        aead_tag(otk_block, aad, aad_len, dst, pt_len, dst + pt_len);
    }
    return 0;
}

int xrd_aead_open_batch(const uint8_t *keys, const uint8_t *nonces, size_t count,
                        const uint8_t *datas, const uint64_t *ct_offsets,
                        const uint8_t *aad, size_t aad_len,
                        uint8_t *plain_out, const uint64_t *pt_offsets,
                        uint8_t *ok_out) {
    size_t i;
    uint8_t otk_block[64], tag[16];
    for (i = 0; i < count; i++) {
        const uint8_t *key = keys + 32 * i;
        const uint8_t *nonce = nonces + 12 * i;
        size_t data_len = (size_t)(ct_offsets[i + 1] - ct_offsets[i]);
        const uint8_t *data = datas + ct_offsets[i];
        size_t ct_len;
        ok_out[i] = 0;
        if (data_len < 16) continue;  /* shorter than a tag: reject */
        ct_len = data_len - 16;
        if (pt_offsets[i + 1] - pt_offsets[i] != ct_len) return -1;
        /* Verify before decrypt: the trial-decrypt cascade fails by
         * design, so payload keystream is only spent on survivors. */
        chacha_block(key, 0, nonce, otk_block);
        aead_tag(otk_block, aad, aad_len, data, ct_len, tag);
        if (memcmp(tag, data + ct_len, 16) != 0) continue;
        chacha_xor(key, nonce, 1, data, ct_len, plain_out + pt_offsets[i]);
        ok_out[i] = 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Montgomery-form modular exponentiation (modp group, p < 2^256)     */
/* ------------------------------------------------------------------ */

#define MAXL 4  /* 4 x 64-bit limbs cover the 32-byte element encoding */

typedef struct {
    uint64_t p[MAXL];
    uint64_t one[MAXL];  /* R mod p (the Montgomery representation of 1) */
    uint64_t rr[MAXL];   /* R^2 mod p (converts into Montgomery form)    */
    uint64_t n0;         /* -p^-1 mod 2^64                               */
    int n;               /* active limb count                            */
} mont_ctx;

/* 32-byte big-endian -> little-endian limbs. */
static void be_load(const uint8_t in[32], uint64_t out[MAXL]) {
    int i, j;
    for (i = 0; i < MAXL; i++) {
        uint64_t v = 0;
        for (j = 0; j < 8; j++) v = (v << 8) | in[(MAXL - 1 - i) * 8 + j];
        out[i] = v;
    }
}

static void be_store(const uint64_t in[MAXL], uint8_t out[32]) {
    int i, j;
    for (i = 0; i < MAXL; i++) {
        uint64_t v = in[i];
        for (j = 7; j >= 0; j--) {
            out[(MAXL - 1 - i) * 8 + j] = (uint8_t)v;
            v >>= 8;
        }
    }
}

static int limb_geq(const uint64_t *a, const uint64_t *b, int n) {
    int i;
    for (i = n - 1; i >= 0; i--) {
        if (a[i] > b[i]) return 1;
        if (a[i] < b[i]) return 0;
    }
    return 1;
}

static void limb_sub(uint64_t *a, const uint64_t *b, int n) {
    uint64_t borrow = 0;
    int i;
    for (i = 0; i < n; i++) {
        unsigned __int128 d = (unsigned __int128)a[i] - b[i] - borrow;
        a[i] = (uint64_t)d;
        borrow = (uint64_t)(d >> 64) & 1;
    }
}

/* Newton iteration for -p^-1 mod 2^64 (p odd). */
static uint64_t inv64(uint64_t p0) {
    uint64_t x = p0;
    int i;
    for (i = 0; i < 5; i++) x *= 2 - p0 * x;
    return (uint64_t)0 - x;
}

/* CIOS Montgomery multiplication: out = a * b * R^-1 mod p. */
static void mont_mul(uint64_t *out, const uint64_t *a, const uint64_t *b,
                     const mont_ctx *m) {
    uint64_t t[MAXL + 2] = {0};
    const uint64_t *p = m->p;
    int n = m->n, i, j;
    for (i = 0; i < n; i++) {
        unsigned __int128 c = 0;
        uint64_t mi;
        for (j = 0; j < n; j++) {
            c = (unsigned __int128)a[i] * b[j] + t[j] + (uint64_t)c;
            t[j] = (uint64_t)c;
            c >>= 64;
        }
        c = (unsigned __int128)t[n] + (uint64_t)c;
        t[n] = (uint64_t)c;
        t[n + 1] = (uint64_t)(c >> 64);
        mi = t[0] * m->n0;
        c = (unsigned __int128)mi * p[0] + t[0];
        c >>= 64;
        for (j = 1; j < n; j++) {
            c = (unsigned __int128)mi * p[j] + t[j] + (uint64_t)c;
            t[j - 1] = (uint64_t)c;
            c >>= 64;
        }
        c = (unsigned __int128)t[n] + (uint64_t)c;
        t[n - 1] = (uint64_t)c;
        t[n] = t[n + 1] + (uint64_t)(c >> 64);
    }
    if (t[n] || limb_geq(t, p, n)) limb_sub(t, p, n);
    for (i = 0; i < n; i++) out[i] = t[i];
    for (; i < MAXL; i++) out[i] = 0;
}

/* value = 2 * value mod p, for value < p. */
static void mod_double(uint64_t *v, const uint64_t *p, int n) {
    uint64_t carry = 0;
    int i;
    for (i = 0; i < n; i++) {
        uint64_t next = (v[i] << 1) | carry;
        carry = v[i] >> 63;
        v[i] = next;
    }
    if (carry || limb_geq(v, p, n)) limb_sub(v, p, n);
}

static int mont_init(mont_ctx *m, const uint8_t prime[32]) {
    uint64_t p[MAXL];
    int n = MAXL, i;
    be_load(prime, p);
    while (n > 1 && p[n - 1] == 0) n--;
    if ((p[0] & 1) == 0) return -1;           /* modulus must be odd */
    if (n == 1 && p[0] <= 2) return -1;
    m->n = n;
    memcpy(m->p, p, sizeof(p));
    m->n0 = inv64(p[0]);
    /* one = R mod p by 64n modular doublings of 1; rr = R^2 mod p by
     * 64n more (R * 2^(64n) = R^2). */
    memset(m->one, 0, sizeof(m->one));
    m->one[0] = 1;
    for (i = 0; i < 64 * n; i++) mod_double(m->one, p, n);
    memcpy(m->rr, m->one, sizeof(m->rr));
    for (i = 0; i < 64 * n; i++) mod_double(m->rr, p, n);
    return 0;
}

/* Build the 4-bit window table [1, b, b^2, ..., b^15] in Montgomery form. */
static void mont_pow_table(const mont_ctx *m, const uint64_t *base_m,
                           uint64_t table[16][MAXL]) {
    int i;
    memcpy(table[0], m->one, sizeof(table[0]));
    memcpy(table[1], base_m, sizeof(table[1]));
    for (i = 2; i < 16; i++) mont_mul(table[i], table[i - 1], base_m, m);
}

/* acc (Montgomery form) = base^exp via a left-to-right 4-bit window over
 * the 32-byte big-endian exponent, using a prebuilt table. */
static void mont_pow_with_table(const mont_ctx *m, uint64_t table[16][MAXL],
                                const uint8_t exp[32], uint64_t *acc) {
    int started = 0, i, half;
    memcpy(acc, m->one, MAXL * sizeof(uint64_t));
    for (i = 0; i < 32; i++) {
        for (half = 0; half < 2; half++) {
            int d = half ? (exp[i] & 0xF) : (exp[i] >> 4);
            if (!started) {
                if (!d) continue;
                memcpy(acc, table[d], MAXL * sizeof(uint64_t));
                started = 1;
                continue;
            }
            mont_mul(acc, acc, acc, m);
            mont_mul(acc, acc, acc, m);
            mont_mul(acc, acc, acc, m);
            mont_mul(acc, acc, acc, m);
            if (d) mont_mul(acc, acc, table[d], m);
        }
    }
}

/* Load one 32-byte big-endian element, requiring element < p. */
static int load_element(const mont_ctx *m, const uint8_t *enc, uint64_t *out_m) {
    uint64_t v[MAXL];
    int i;
    be_load(enc, v);
    for (i = m->n; i < MAXL; i++)
        if (v[i]) return -1;
    if (limb_geq(v, m->p, m->n)) return -1;
    mont_mul(out_m, v, m->rr, m);  /* into Montgomery form */
    return 0;
}

static void store_element(const mont_ctx *m, const uint64_t *val_m, uint8_t *out) {
    uint64_t one[MAXL] = {1, 0, 0, 0}, v[MAXL];
    mont_mul(v, val_m, one, m);  /* out of Montgomery form */
    be_store(v, out);
}

int xrd_modp_scalar_mult_batch(const uint8_t *prime, const uint8_t *elements,
                               size_t count, const uint8_t *exponent,
                               uint8_t *out) {
    mont_ctx m;
    uint64_t table[16][MAXL], base_m[MAXL], acc[MAXL];
    size_t i;
    if (mont_init(&m, prime) != 0) return -1;
    for (i = 0; i < count; i++) {
        if (load_element(&m, elements + 32 * i, base_m) != 0) return -2;
        mont_pow_table(&m, base_m, table);
        mont_pow_with_table(&m, table, exponent, acc);
        store_element(&m, acc, out + 32 * i);
    }
    return 0;
}

int xrd_modp_fixed_mult_batch(const uint8_t *prime, const uint8_t *element,
                              const uint8_t *exponents, size_t count,
                              uint8_t *out) {
    mont_ctx m;
    uint64_t table[16][MAXL], base_m[MAXL], acc[MAXL];
    size_t i;
    if (mont_init(&m, prime) != 0) return -1;
    if (load_element(&m, element, base_m) != 0) return -2;
    mont_pow_table(&m, base_m, table);
    for (i = 0; i < count; i++) {
        mont_pow_with_table(&m, table, exponents + 32 * i, acc);
        store_element(&m, acc, out + 32 * i);
    }
    return 0;
}

int xrd_modp_multi_scalar_accumulate(const uint8_t *prime,
                                     const uint8_t *elements,
                                     const uint8_t *exponents, size_t count,
                                     uint8_t *out) {
    mont_ctx m;
    uint64_t table[16][MAXL], base_m[MAXL], acc[MAXL], total[MAXL];
    size_t i;
    if (mont_init(&m, prime) != 0) return -1;
    memcpy(total, m.one, sizeof(total));
    for (i = 0; i < count; i++) {
        if (load_element(&m, elements + 32 * i, base_m) != 0) return -2;
        mont_pow_table(&m, base_m, table);
        mont_pow_with_table(&m, table, exponents + 32 * i, acc);
        mont_mul(total, total, acc, &m);
    }
    store_element(&m, total, out);
    return 0;
}
