"""Loader for the optional ``_xrdkernels`` C extension.

:func:`load` never raises: it returns the cffi ``(ffi, lib)`` pair when a
usable extension is importable (building it lazily, once, when cffi and a
C compiler are available), or ``None`` when it is not.  All policy about
*whether* to use the native kernels lives in
:mod:`repro.crypto.kernels`; this module only answers "can we?".
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

# ABI stamp expected from xrd_abi_version(); mirrors XRD_KERNELS_ABI in
# xrdkernels.c so a stale prebuilt .so is rebuilt instead of trusted.
EXPECTED_ABI = 1

_state: dict = {"probed": False, "handle": None, "error": None}


def _import_extension():
    from repro.native import _xrdkernels  # type: ignore[attr-defined]

    return _xrdkernels.ffi, _xrdkernels.lib


def _try_build() -> bool:
    """One in-place build attempt; quiet failure when the toolchain is absent."""
    try:
        from repro.native import _build

        _build.compile_extension()
        return True
    except Exception as exc:  # cffi missing, no compiler, read-only tree...
        _state["error"] = exc
        return False


def load() -> Optional[Tuple[object, object]]:
    """Return ``(ffi, lib)`` for the native kernels, or ``None``.

    The result (including a negative one) is cached for the process; a
    failed probe is never retried so the import/build cost is paid at
    most once.
    """
    if _state["probed"]:
        return _state["handle"]
    _state["probed"] = True
    if os.environ.get("XRD_NATIVE_DISABLE"):  # escape hatch for tests
        _state["error"] = RuntimeError("disabled via XRD_NATIVE_DISABLE")
        return None
    try:
        ffi, lib = _import_extension()
    except Exception:
        if not _try_build():
            return None
        try:
            ffi, lib = _import_extension()
        except Exception as exc:  # pragma: no cover - build said ok but import failed
            _state["error"] = exc
            return None
    try:
        abi = lib.xrd_abi_version()
    except Exception as exc:  # pragma: no cover - malformed extension
        _state["error"] = exc
        return None
    if abi != EXPECTED_ABI:
        # Stale build from an older checkout: rebuild once, then give up.
        if not _try_build():
            return None
        try:
            import importlib

            from repro.native import _xrdkernels  # type: ignore[attr-defined]

            importlib.reload(_xrdkernels)
            ffi, lib = _xrdkernels.ffi, _xrdkernels.lib
            if lib.xrd_abi_version() != EXPECTED_ABI:  # pragma: no cover
                return None
        except Exception as exc:  # pragma: no cover
            _state["error"] = exc
            return None
    _state["handle"] = (ffi, lib)
    return _state["handle"]


def load_error() -> Optional[BaseException]:
    """The exception from the most recent failed probe/build, if any."""
    return _state["error"]


def reset_probe_for_tests() -> None:
    """Forget the cached probe result (test hook only)."""
    _state.update(probed=False, handle=None, error=None)
