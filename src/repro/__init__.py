"""XRD reproduction: scalable metadata-private messaging with cryptographic privacy.

This package is a from-scratch Python reproduction of *XRD: Scalable
Messaging System with Cryptographic Privacy* (Kwon, Lu, Devadas — NSDI 2020).
It contains the full protocol stack (crypto substrate, parallel mix chains
with the aggregate hybrid shuffle, mailboxes, client protocol), a staged
round engine with pluggable execution backends and the paper's stagger
optimisation (:mod:`repro.engine`), a calibrated performance model used to
regenerate the paper's evaluation figures, and cost models of the baseline
systems the paper compares against (Atom, Pung, Stadium).

Quickstart::

    from repro import Deployment, DeploymentConfig

    config = DeploymentConfig(num_servers=4, num_chains=3, chain_length=2,
                              num_users=8, malicious_fraction=0.0)
    deployment = Deployment.create(config)
    alice, bob = deployment.users[0], deployment.users[1]
    deployment.start_conversation(alice.name, bob.name)
    report = deployment.run_round(payloads={alice.name: b"hi bob", bob.name: b"hi alice"})
    print(report.delivered[bob.name])

The heavyweight sub-packages are imported lazily so that, e.g., using only
the crypto substrate does not pull in the whole coordinator stack.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["Deployment", "DeploymentConfig", "RoundReport", "__version__"]


def __getattr__(name: str):
    if name in ("Deployment", "DeploymentConfig", "RoundReport"):
        from repro.coordinator import network

        return getattr(network, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
