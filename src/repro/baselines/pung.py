"""Pung (OSDI'16 / SealPIR follow-up) — cost model plus a functional PIR store.

Pung provides metadata-private messaging with *cryptographic* privacy against
an adversary controlling **all** servers, by storing every message in a
key-value store that clients read through computational PIR.  The price is
that per-user work grows with the total number of users, so total work grows
super-linearly and throughput is limited by PIR computation (§2, §8.2).

Two things are reproduced here:

* :class:`PungModel` — latency / bandwidth / computation estimators for the
  XPIR and SealPIR variants, calibrated to the comparison points the paper
  reports (272 s @ 1M and 927 s @ 2M users on 100 servers; 5.8 MB per user
  per round of XPIR bandwidth at 1M users).
* :class:`TwoServerPIRStore` — a small, fully functional two-server
  information-theoretic PIR over the round's mailbox table.  It is not what
  Pung deploys (Pung uses single-server CPIR), but it exercises the same
  structural property that drives Pung's costs — every query touches every
  row of the store — with an honestly implemented protocol rather than a
  stub, and it is used by the Pung-flavoured example and tests.
"""

from __future__ import annotations

import hashlib
import math
import secrets
from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.common import SystemModel
from repro.errors import ConfigurationError, SimulationError

__all__ = ["PungModel", "TwoServerPIRStore", "PIRQuery", "PIRAnswer"]


class PungModel(SystemModel):
    """Calibrated Pung estimator (XPIR or SealPIR variant)."""

    name = "Pung"
    privacy = "cryptographic"
    threat_model = "all servers may be malicious (CPIR)"

    #: Quadratic latency fit through the paper's N = 100 anchors:
    #: 272 s @ 1M users and 927 s @ 2M users.
    LINEAR_COEFF = 8.05e-5  # seconds per user
    QUADRATIC_COEFF = 1.915e-10  # seconds per user^2

    #: XPIR per-user bandwidth: ≈5.8 MB at 1M users, growing as √M (§8.1).
    XPIR_BANDWIDTH_AT_1M = 5.8e6
    #: SealPIR compresses queries; per-user traffic is comparable to XRD's.
    SEALPIR_BANDWIDTH_BYTES = 96e3

    #: Client-side CPU for query generation / answer decoding (Figure 3).
    XPIR_COMPUTE_AT_1M = 0.18
    SEALPIR_COMPUTE_SECONDS = 0.04

    def __init__(self, variant: str = "xpir") -> None:
        if variant not in ("xpir", "sealpir"):
            raise ConfigurationError("Pung variant must be 'xpir' or 'sealpir'")
        self.variant = variant
        self.name = "Pung (XPIR)" if variant == "xpir" else "Pung (SealPIR)"

    def latency(self, num_users: int, num_servers: int) -> float:
        at_100 = self.LINEAR_COEFF * num_users + self.QUADRATIC_COEFF * num_users**2
        return at_100 * (100.0 / num_servers)

    def user_bandwidth(self, num_users: int, num_servers: int) -> float:
        if self.variant == "sealpir":
            return self.SEALPIR_BANDWIDTH_BYTES
        return self.XPIR_BANDWIDTH_AT_1M * math.sqrt(max(num_users, 1) / 1e6)

    def user_compute(self, num_users: int, num_servers: int) -> float:
        if self.variant == "sealpir":
            return self.SEALPIR_COMPUTE_SECONDS
        return self.XPIR_COMPUTE_AT_1M * math.sqrt(max(num_users, 1) / 1e6)


# ---------------------------------------------------------------------------
# Functional two-server information-theoretic PIR
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PIRQuery:
    """A client's query: one selection bit-vector per server."""

    vector_a: bytes
    vector_b: bytes
    index: int


@dataclass(frozen=True)
class PIRAnswer:
    """One server's answer: the XOR of the rows selected by the query vector."""

    payload: bytes


class TwoServerPIRStore:
    """A mailbox table readable through two-server XOR-based PIR.

    Every row has a fixed size.  A client who wants row ``i`` sends a random
    bit-vector ``v`` to server A and ``v ⊕ e_i`` to server B; each server
    XORs together the rows its vector selects; XORing the two answers yields
    row ``i``.  Neither server alone learns anything about ``i`` — and each
    server's work is linear in the table size, which is exactly the cost
    behaviour that limits Pung's scalability.
    """

    def __init__(self, row_size: int = 288) -> None:
        if row_size < 1:
            raise ConfigurationError("row size must be positive")
        self.row_size = row_size
        self._rows: List[bytes] = []
        self._index_by_label: Dict[bytes, int] = {}
        self.queries_served = 0
        self.rows_scanned = 0

    # -- writes ---------------------------------------------------------------

    def put(self, label: bytes, value: bytes) -> int:
        """Insert (or overwrite) the row for ``label``; return its index."""
        if len(value) > self.row_size:
            raise ConfigurationError("value exceeds the fixed row size")
        padded = value + b"\x00" * (self.row_size - len(value))
        if label in self._index_by_label:
            index = self._index_by_label[label]
            self._rows[index] = padded
            return index
        self._rows.append(padded)
        self._index_by_label[label] = len(self._rows) - 1
        return len(self._rows) - 1

    def index_of(self, label: bytes) -> int:
        if label not in self._index_by_label:
            raise ConfigurationError("unknown label")
        return self._index_by_label[label]

    def __len__(self) -> int:
        return len(self._rows)

    # -- client side -------------------------------------------------------------

    def build_query(self, index: int, rng=None) -> PIRQuery:
        """Build the two query vectors for row ``index``."""
        if not 0 <= index < len(self._rows):
            raise ConfigurationError("row index out of range")
        num_bytes = (len(self._rows) + 7) // 8
        vector_a = bytearray(secrets.token_bytes(num_bytes) if rng is None else rng.randbytes(num_bytes))
        # Mask out bits beyond the table size for cleanliness.
        vector_b = bytearray(vector_a)
        vector_b[index // 8] ^= 1 << (index % 8)
        return PIRQuery(vector_a=bytes(vector_a), vector_b=bytes(vector_b), index=index)

    @staticmethod
    def decode(answer_a: PIRAnswer, answer_b: PIRAnswer) -> bytes:
        """Combine the two servers' answers into the requested row."""
        if len(answer_a.payload) != len(answer_b.payload):
            raise SimulationError("answers have mismatched sizes")
        return bytes(a ^ b for a, b in zip(answer_a.payload, answer_b.payload))

    # -- server side ----------------------------------------------------------------

    def answer(self, selection_vector: bytes) -> PIRAnswer:
        """Scan the whole table, XORing the selected rows (linear work per query)."""
        accumulator = bytearray(self.row_size)
        for index, row in enumerate(self._rows):
            self.rows_scanned += 1
            if selection_vector[index // 8] >> (index % 8) & 1:
                for offset, byte in enumerate(row):
                    accumulator[offset] ^= byte
        self.queries_served += 1
        return PIRAnswer(payload=bytes(accumulator))

    # -- end-to-end helper --------------------------------------------------------------

    def retrieve(self, label: bytes, rng=None) -> bytes:
        """Full client flow: build a query for ``label`` and decode the answers."""
        index = self.index_of(label)
        query = self.build_query(index, rng=rng)
        answer_a = self.answer(query.vector_a)
        answer_b = self.answer(query.vector_b)
        return self.decode(answer_a, answer_b)


def mailbox_label(recipient_public_key: bytes, round_number: int) -> bytes:
    """The Pung-style key under which a round's message for a recipient is stored."""
    return hashlib.sha256(recipient_public_key + round_number.to_bytes(8, "big")).digest()
