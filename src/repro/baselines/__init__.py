"""Baseline systems the paper compares against (§2, §8).

Each baseline exposes the same estimator interface — ``latency(M, N)``,
``user_bandwidth(M, N)`` and ``user_compute(M, N)`` — calibrated against the
numbers the paper itself reports (the paper likewise compares against
extrapolated estimates for these systems, e.g. single-machine Pung runs
scaled to N servers).  Pung additionally ships a small *functional*
information-theoretic PIR store so the "work per query grows with the number
of users" behaviour can be exercised, not just modelled.
"""

from repro.baselines.atom import AtomModel
from repro.baselines.common import BaselineEstimate, SystemModel
from repro.baselines.pung import PungModel, TwoServerPIRStore
from repro.baselines.stadium import StadiumModel
from repro.baselines.xrd_model import XRDModel

__all__ = [
    "AtomModel",
    "BaselineEstimate",
    "PungModel",
    "StadiumModel",
    "SystemModel",
    "TwoServerPIRStore",
    "XRDModel",
]
