"""Stadium (SOSP'17) cost model.

Stadium provides *differentially private* messaging (eε ≈ 10, δ < 1e-4, a
budget of ≈10⁴ sensitive messages per user) using two layers of parallel mix
chains with verifiable shuffles.  It is faster than XRD — the paper estimates
2× at 1M users / 100 servers and ≈3.3× at 2M — because each Stadium user
submits a single message per round; XRD's gap comes from every user
submitting ℓ ≈ √(2N) messages.  The model is calibrated to the paper's
comparison points (64 s @ 1M and 138 s @ 2M users on 100 servers) and scales
as ``M/N`` with a floor set by its 9-server chain traversal.  Its chains
lengthen with ``f`` like XRD's, but the verifiable-shuffle proofs make the
effect super-linear (§8.2, "impact of f").
"""

from __future__ import annotations

from repro.baselines.common import SystemModel
from repro.mixnet.chain import required_chain_length

__all__ = ["StadiumModel"]


class StadiumModel(SystemModel):
    """Calibrated Stadium estimator."""

    name = "Stadium"
    privacy = "differential privacy (eps ~ ln 10, ~10^4 message budget)"
    threat_model = "network adversary + fraction f of servers"

    #: Linear fit through the paper's two anchors at N = 100:
    #: 64 s @ 1M users and 138 s @ 2M users.
    PER_USER_SECONDS_AT_100 = 74e-6
    FIXED_OFFSET_AT_100 = -10.0
    #: Chain length used in the paper's evaluation.
    CHAIN_LENGTH = 9
    PER_HOP_LATENCY = 0.07
    #: Dummy-message noise per round is a few hundred bytes of user traffic.
    USER_BANDWIDTH_BYTES = 800
    USER_COMPUTE_SECONDS = 0.002

    def __init__(self, malicious_fraction: float = 0.2) -> None:
        self.malicious_fraction = malicious_fraction

    def latency(self, num_users: int, num_servers: int) -> float:
        scaled = (
            self.PER_USER_SECONDS_AT_100 * num_users + self.FIXED_OFFSET_AT_100
        ) * (100.0 / num_servers)
        floor = self.CHAIN_LENGTH * self.PER_HOP_LATENCY
        return max(scaled, floor)

    def latency_vs_f(self, num_users: int, num_servers: int, malicious_fraction: float) -> float:
        """Latency accounting for longer chains (and superlinear proof cost) as f grows."""
        base = self.latency(num_users, num_servers)
        reference_length = required_chain_length(0.2, num_servers)
        length = required_chain_length(malicious_fraction, num_servers)
        # Verifiable-shuffle verification is quadratic-ish in chain length
        # (§10.3 of the Stadium paper, as cited in §8.2).
        return base * (length / reference_length) ** 2

    def user_bandwidth(self, num_users: int, num_servers: int) -> float:
        return float(self.USER_BANDWIDTH_BYTES)

    def user_compute(self, num_users: int, num_servers: int) -> float:
        return self.USER_COMPUTE_SECONDS
