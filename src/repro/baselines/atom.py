"""Atom (SOSP'17) cost model.

Atom provides cryptographic *sender anonymity* and scales horizontally, but
routes every message through hundreds of servers in series and relies on
public-key cryptography (or trap messages) at every hop, so its latency is an
order of magnitude above XRD's at comparable scale (§8.2).  The model is
calibrated to the comparison points the paper reports: ≈1532 s for 1M users
on 100 servers (12× XRD's 128 s), scaling as ``M/N`` with a fixed serial
routing cost of ≈300 hops.
"""

from __future__ import annotations

from repro.baselines.common import SystemModel

__all__ = ["AtomModel"]


class AtomModel(SystemModel):
    """Calibrated Atom estimator."""

    name = "Atom"
    privacy = "cryptographic (sender anonymity)"
    threat_model = "any fraction of servers and users"

    #: Per-user server work multiplied by servers, fit from 1532 s @ (1M, 100):
    #: latency ≈ WORK_FACTOR · M / N + ROUTE_HOPS · PER_HOP_LATENCY.
    WORK_FACTOR = 0.1511  # seconds · servers / user
    ROUTE_HOPS = 300
    PER_HOP_LATENCY = 0.07  # seconds of network latency per serial hop

    #: Users submit a single onion of a few KB and a trap message; costs do
    #: not grow with the number of servers (Figure 2/3 show Atom near zero).
    USER_BANDWIDTH_BYTES = 1024
    USER_COMPUTE_SECONDS = 0.015

    #: Slowdown factor for the variant that resists malicious-user DoS
    #: (the paper notes ≥4× for the non-trap variant, §8.2).
    MALICIOUS_USER_PROTECTION_SLOWDOWN = 4.0

    def __init__(self, protect_against_malicious_users: bool = False) -> None:
        self.protect_against_malicious_users = protect_against_malicious_users

    def latency(self, num_users: int, num_servers: int) -> float:
        latency = (
            self.WORK_FACTOR * num_users / num_servers
            + self.ROUTE_HOPS * self.PER_HOP_LATENCY
        )
        if self.protect_against_malicious_users:
            latency *= self.MALICIOUS_USER_PROTECTION_SLOWDOWN
        return latency

    def user_bandwidth(self, num_users: int, num_servers: int) -> float:
        return float(self.USER_BANDWIDTH_BYTES)

    def user_compute(self, num_users: int, num_servers: int) -> float:
        return self.USER_COMPUTE_SECONDS

    def fault_tolerance_slowdown(self, tolerated_fraction: float) -> float:
        """Latency multiplier for tolerating a fraction of failing servers (§8.3).

        Atom can tolerate failures with threshold cryptography at a latency
        cost; the paper estimates ≈10% slowdown to tolerate 1% failures and
        the cost grows roughly linearly with the tolerated fraction.
        """
        return 1.0 + 10.0 * max(0.0, tolerated_fraction)
