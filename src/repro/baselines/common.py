"""Shared interface for the comparison systems.

All models expose latency, per-user bandwidth, and per-user computation as a
function of the number of users ``M`` and servers ``N``, and report what
privacy guarantee they provide — the axis the paper's Related Work section
organises systems along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import SimulationError

__all__ = ["BaselineEstimate", "SystemModel"]


@dataclass(frozen=True)
class BaselineEstimate:
    """One system's estimated costs for a deployment point (M users, N servers)."""

    system: str
    num_users: int
    num_servers: int
    latency_seconds: float
    user_bandwidth_bytes: float
    user_compute_seconds: float


class SystemModel:
    """Base class for comparison-system cost models."""

    #: Human-readable name used in figures.
    name: str = "system"
    #: Privacy guarantee label (cryptographic / differential / none).
    privacy: str = "unspecified"
    #: Threat model summary.
    threat_model: str = "unspecified"

    def latency(self, num_users: int, num_servers: int) -> float:
        """End-to-end latency for one round, in seconds."""
        raise NotImplementedError

    def user_bandwidth(self, num_users: int, num_servers: int) -> float:
        """Per-user, per-round bandwidth in bytes."""
        raise NotImplementedError

    def user_compute(self, num_users: int, num_servers: int) -> float:
        """Per-user, per-round single-core computation in seconds."""
        raise NotImplementedError

    def estimate(self, num_users: int, num_servers: int) -> BaselineEstimate:
        """Bundle all three estimates for one deployment point."""
        if num_users < 0 or num_servers < 1:
            raise SimulationError("invalid deployment point")
        return BaselineEstimate(
            system=self.name,
            num_users=num_users,
            num_servers=num_servers,
            latency_seconds=self.latency(num_users, num_servers),
            user_bandwidth_bytes=self.user_bandwidth(num_users, num_servers),
            user_compute_seconds=self.user_compute(num_users, num_servers),
        )

    def sweep_users(self, user_counts: Sequence[int], num_servers: int) -> Dict[int, BaselineEstimate]:
        """Estimates across a range of user counts (Figure 4 style sweeps)."""
        return {count: self.estimate(count, num_servers) for count in user_counts}

    def sweep_servers(self, num_users: int, server_counts: Sequence[int]) -> Dict[int, BaselineEstimate]:
        """Estimates across a range of server counts (Figure 2/3/5 style sweeps)."""
        return {count: self.estimate(num_users, count) for count in server_counts}
