"""XRD expressed through the common :class:`SystemModel` interface.

This wraps the analytic models of :mod:`repro.simulation` so the figure
generators can sweep XRD and the baselines uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import SystemModel
from repro.constants import CHAIN_SECURITY_BITS, DEFAULT_MALICIOUS_FRACTION
from repro.simulation.bandwidth import xrd_user_bandwidth, xrd_user_compute
from repro.simulation.costmodel import CostModel
from repro.simulation.latency import xrd_latency

__all__ = ["XRDModel"]


class XRDModel(SystemModel):
    """Cost model for XRD itself (calibrated to the paper's testbed by default)."""

    name = "XRD"
    privacy = "cryptographic"
    threat_model = "network adversary + fraction f of servers + any users"

    def __init__(
        self,
        malicious_fraction: float = DEFAULT_MALICIOUS_FRACTION,
        cost_model: Optional[CostModel] = None,
        security_bits: int = CHAIN_SECURITY_BITS,
        cover_messages: bool = True,
    ) -> None:
        self.malicious_fraction = malicious_fraction
        self.cost_model = cost_model or CostModel.paper_testbed()
        self.security_bits = security_bits
        self.cover_messages = cover_messages

    def latency(self, num_users: int, num_servers: int) -> float:
        return xrd_latency(
            num_users,
            num_servers,
            malicious_fraction=self.malicious_fraction,
            cost_model=self.cost_model,
            security_bits=self.security_bits,
        )

    def user_bandwidth(self, num_users: int, num_servers: int) -> float:
        cost = xrd_user_bandwidth(
            num_servers,
            malicious_fraction=self.malicious_fraction,
            cover_messages=self.cover_messages,
            security_bits=self.security_bits,
        )
        return float(cost.total_bytes)

    def user_compute(self, num_users: int, num_servers: int) -> float:
        cost = xrd_user_compute(
            num_servers,
            malicious_fraction=self.malicious_fraction,
            cost_model=self.cost_model,
            cover_messages=self.cover_messages,
            security_bits=self.security_bits,
        )
        return cost.compute_seconds
