"""Typed pluggable-component registry (DESIGN.md §10.1).

The deployment's three pluggable seams — the transport, the mix-stage
execution backend, and the user-population strategy — used to be selected by
bare strings on :class:`~repro.coordinator.network.DeploymentConfig`.  Each
new component meant another string compared in another ``if`` ladder; the
KISS principle the control-plane literature argues for (PAPERS.md) is the
opposite: a small, explicit, *typed* contract.

This module provides that contract:

* one :class:`enum.Enum` per seam (:class:`TransportKind`,
  :class:`ExecutionBackendKind`, :class:`PopulationKind`) naming the
  built-in components.  The enums subclass :class:`str`, so existing code
  comparing ``config.transport == "inproc"`` keeps working unchanged;
* one :class:`ComponentRegistry` per seam mapping keys to factory
  callables.  Built-ins register here too — ``make_transport`` and
  ``make_backend`` are thin wrappers over :meth:`ComponentRegistry.create`
  — and third-party components register under their own string keys
  (``TRANSPORTS.register("quic", factory)``) without touching this package;
* a deprecation shim: a plain built-in string assigned to a config knob is
  coerced to its enum member with a single :class:`DeprecationWarning`, so
  every pre-existing call site still works while new code gets the typed
  surface.

Registration happens in the module that owns the component (the transport
package registers the transports, and so on), so importing a component's
home package is what makes it available — there is no central import list
to maintain.
"""

from __future__ import annotations

import warnings
from enum import Enum
from typing import Callable, Dict, List, Union

from repro.errors import ConfigurationError

__all__ = [
    "TransportKind",
    "ExecutionBackendKind",
    "PopulationKind",
    "CryptoKernelKind",
    "ComponentRegistry",
    "TRANSPORTS",
    "EXECUTION_BACKENDS",
    "POPULATIONS",
    "CRYPTO_KERNELS",
]


class TransportKind(str, Enum):
    """How cross-node envelopes travel (DESIGN.md §5, §10)."""

    INPROC = "inproc"
    INSTRUMENTED = "instrumented"
    TCP = "tcp"


class ExecutionBackendKind(str, Enum):
    """How the mix stage executes the per-chain work (DESIGN.md §2.2)."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    MULTIPROCESS = "multiprocess"


class PopulationKind(str, Enum):
    """How the honest user side executes (DESIGN.md §7)."""

    OBJECT = "object"
    BATCHED = "batched"


class CryptoKernelKind(str, Enum):
    """Which implementation tier runs the batched crypto hot loops
    (DESIGN.md §11).

    ``PYTHON`` is the scalar reference everywhere, ``NUMPY`` adds the
    vectorised ChaCha20 columns, ``NATIVE`` adds the ``_xrdkernels`` C
    extension with transparent per-function fallback to the lower tiers.
    All three are bit-identical; the parity matrix enforces it.
    """

    PYTHON = "python"
    NUMPY = "numpy"
    NATIVE = "native"


#: A config knob value: the typed enum member, or (deprecated / third-party)
#: a plain string key.
ComponentKey = Union[str, Enum]


class ComponentRegistry:
    """Factories for one pluggable seam, keyed by enum member or string."""

    def __init__(self, domain: str, kind_enum: type) -> None:
        self.domain = domain
        self.kind_enum = kind_enum
        self._factories: Dict[str, Callable] = {}

    # -- registration ---------------------------------------------------------

    def register(self, key: ComponentKey, factory: Callable, replace: bool = False) -> None:
        """Register ``factory`` under ``key`` (an enum member or a new name).

        Built-in components register under their enum member; external
        components register under any unused string.  Re-registration is an
        error unless ``replace=True`` — silently shadowing a component is
        exactly the kind of spooky action a typed registry exists to stop.
        """
        name = str(key.value) if isinstance(key, Enum) else str(key)
        if not replace and name in self._factories:
            raise ConfigurationError(
                f"{self.domain} component {name!r} is already registered "
                "(pass replace=True to override)"
            )
        if not callable(factory):
            raise ConfigurationError(f"{self.domain} factory for {name!r} is not callable")
        self._factories[name] = factory

    def keys(self) -> List[str]:
        """Every registered key, built-ins first (registration order)."""
        return list(self._factories)

    # -- lookup ----------------------------------------------------------------

    def _name_of(self, key: ComponentKey) -> str:
        return str(key.value) if isinstance(key, Enum) else str(key)

    def is_known(self, key: ComponentKey) -> bool:
        return self._name_of(key) in self._factories

    def coerce(self, value: ComponentKey, field: str) -> ComponentKey:
        """Normalise a config knob value to its typed form.

        Enum members pass through; a plain string naming a built-in is
        converted to the enum member with one :class:`DeprecationWarning`;
        any other string is returned unchanged (it may name a registered
        external component — :meth:`ensure_known` is the validation gate).
        """
        if isinstance(value, self.kind_enum):
            return value
        if isinstance(value, str):
            try:
                member = self.kind_enum(value)
            except ValueError:
                return value
            warnings.warn(
                f"passing the plain string {value!r} for DeploymentConfig."
                f"{field} is deprecated; use {self.kind_enum.__name__}."
                f"{member.name} (repro.registry)",
                DeprecationWarning,
                stacklevel=3,
            )
            return member
        return value

    def ensure_known(self, value: ComponentKey, field: str) -> None:
        """Raise :class:`ConfigurationError` unless ``value`` is resolvable."""
        if isinstance(value, self.kind_enum):
            return
        if isinstance(value, str) and self.is_known(value):
            return
        raise ConfigurationError(
            f"{field} must be a {self.kind_enum.__name__} or a registered "
            f"{self.domain} name (one of {self.keys()}), got {value!r}"
        )

    def create(self, key: ComponentKey, **kwargs: object) -> object:
        """Instantiate the component registered under ``key``."""
        name = self._name_of(key)
        factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown {self.domain} {name!r} (registered: {self.keys()})"
            )
        return factory(**kwargs)


TRANSPORTS = ComponentRegistry("transport", TransportKind)
EXECUTION_BACKENDS = ComponentRegistry("execution backend", ExecutionBackendKind)
POPULATIONS = ComponentRegistry("population", PopulationKind)
CRYPTO_KERNELS = ComponentRegistry("crypto kernel", CryptoKernelKind)
