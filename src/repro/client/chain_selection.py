"""Chain selection (§5.3.1): the √2-approximation intersection scheme.

Users are placed into ``ℓ + 1`` groups; every group is connected to ``ℓ``
*logical* chains built by the paper's inductive construction, which
guarantees that any two groups share at least one chain:

* ``C_1 = (1, …, ℓ)``
* ``C_{i+1} = (C_1[i], C_2[i], …, C_i[i], C_i[ℓ]+1, …, C_i[ℓ]+(ℓ−i))`` for
  ``i = 1 … ℓ`` (1-based indices).

The largest logical chain index is ``ℓ(ℓ+1)/2``.  The paper picks
``ℓ = ⌈√(2n + 0.25) − 0.5⌉`` so this is as close as possible to (and at
least) the number ``n`` of physical chains; logical chains are then mapped
onto physical chains modulo ``n``.  Group membership is derived from the hash
of the user's public key, so every participant can compute everybody's chain
assignment — a requirement for partners to find their intersection chain.
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import ChainSelectionError

__all__ = [
    "ell_for_chains",
    "num_logical_chains",
    "build_group_chain_sets",
    "assign_group",
    "chains_for_group",
    "chains_for_user",
    "intersection_chain",
    "intersection_logical_chain",
    "all_pairs_intersect",
    "expected_chain_load",
    "reset_assignment_caches",
]


@lru_cache(maxsize=None)
def ell_for_chains(num_chains: int) -> int:
    """Number of chains ``ℓ`` each user connects to, for ``n`` physical chains.

    This is the paper's ``ℓ = ⌈√(2n + 0.25) − 0.5⌉`` — the smallest ``ℓ``
    with ``ℓ(ℓ+1)/2 ≥ n`` — a √2-approximation of the ``√n`` lower bound.
    """
    if num_chains < 1:
        raise ChainSelectionError("the network needs at least one chain")
    ell = math.ceil(math.sqrt(2 * num_chains + 0.25) - 0.5)
    while ell * (ell + 1) // 2 < num_chains:  # guard against float rounding
        ell += 1
    while ell > 1 and (ell - 1) * ell // 2 >= num_chains:
        ell -= 1
    return ell


def num_logical_chains(ell: int) -> int:
    """Largest logical chain index used by the construction: ``ℓ(ℓ+1)/2``."""
    if ell < 1:
        raise ChainSelectionError("ℓ must be positive")
    return ell * (ell + 1) // 2


@lru_cache(maxsize=None)
def build_group_chain_sets(ell: int) -> Tuple[Tuple[int, ...], ...]:
    """Return the ``ℓ + 1`` ordered logical-chain sets ``C_1 … C_{ℓ+1}`` (1-based ids)."""
    if ell < 1:
        raise ChainSelectionError("ℓ must be positive")
    sets: List[List[int]] = [list(range(1, ell + 1))]
    for i in range(1, ell + 1):
        previous = sets[i - 1]
        prefix = [sets[j][i - 1] for j in range(i)]
        start = previous[ell - 1] + 1
        suffix = list(range(start, start + (ell - i)))
        sets.append(prefix + suffix)
    return tuple(tuple(chain_set) for chain_set in sets)


def assign_group(public_key_bytes: bytes, num_groups: int) -> int:
    """Pseudo-random, publicly computable group assignment from a public key (0-based)."""
    if num_groups < 1:
        raise ChainSelectionError("there must be at least one group")
    digest = hashlib.sha256(b"xrd/group-assignment|" + public_key_bytes).digest()
    return int.from_bytes(digest[:8], "big") % num_groups


def _logical_to_physical(logical: int, num_chains: int) -> int:
    """Map a 1-based logical chain id onto a 0-based physical chain id."""
    return (logical - 1) % num_chains


def chains_for_group(group_index: int, num_chains: int) -> List[int]:
    """Physical chain ids (0-based, length ℓ, possibly with repeats) for a group."""
    ell = ell_for_chains(num_chains)
    sets = build_group_chain_sets(ell)
    if not 0 <= group_index < len(sets):
        raise ChainSelectionError("group index out of range")
    return [_logical_to_physical(logical, num_chains) for logical in sets[group_index]]


#
# Both per-user caches below are *unbounded* on purpose.  They used to be
# ``lru_cache(maxsize=1 << 16)``, which sat just under the 100k-user
# populations the scale benchmarks run: every round sweeps the users in the
# same order, so a population larger than the cache evicted each entry
# exactly one sweep before its next use — an ~0% hit rate at precisely the
# scale the memoisation was added for (classic LRU thrash).  Entries are
# pure functions of their keys (which include ``num_chains``), so they can
# never go stale; memory is a few dozen bytes per (user, epoch
# configuration), and :func:`reset_assignment_caches` clears both between
# epochs or benchmark sweeps.


@lru_cache(maxsize=None)
def _chains_for_user_cached(public_key_bytes: bytes, num_chains: int) -> Tuple[int, ...]:
    ell = ell_for_chains(num_chains)
    group_index = assign_group(public_key_bytes, ell + 1)
    return tuple(chains_for_group(group_index, num_chains))


def chains_for_user(public_key_bytes: bytes, num_chains: int) -> List[int]:
    """Physical chain ids the owner of ``public_key_bytes`` must send to each round.

    Assignments are pure functions of the (public key, chain count) pair and
    are re-derived for every user every round on the hot submission path, so
    the result is memoised per epoch configuration; the cache is shared by
    the per-user and population build paths and by partner-intersection
    lookups.
    """
    return list(_chains_for_user_cached(public_key_bytes, num_chains))


@lru_cache(maxsize=None)
def intersection_logical_chain(public_key_a: bytes, public_key_b: bytes, num_chains: int) -> int:
    """Smallest-index *logical* chain shared by the two users' groups.

    The tie-break (smallest index) matches §5.3.2 and is what makes both
    partners pick the same chain independently.  Cached: conversation
    partners re-derive their intersection every round.
    """
    ell = ell_for_chains(num_chains)
    sets = build_group_chain_sets(ell)
    group_a = assign_group(public_key_a, ell + 1)
    group_b = assign_group(public_key_b, ell + 1)
    common = set(sets[group_a]) & set(sets[group_b])
    if not common:  # pragma: no cover - impossible by construction; defensive
        raise ChainSelectionError("chain sets do not intersect; construction violated")
    return min(common)


def intersection_chain(public_key_a: bytes, public_key_b: bytes, num_chains: int) -> int:
    """Physical chain (0-based) on which the two users exchange conversation messages."""
    logical = intersection_logical_chain(public_key_a, public_key_b, num_chains)
    return _logical_to_physical(logical, num_chains)


def all_pairs_intersect(ell: int) -> bool:
    """Check the construction's invariant: every pair of groups shares a chain."""
    sets = build_group_chain_sets(ell)
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            if not set(sets[i]) & set(sets[j]):
                return False
    return True


def expected_chain_load(num_users: int, num_chains: int) -> float:
    """Expected number of messages per chain per round: ``M·ℓ / n`` (§4.2)."""
    if num_users < 0:
        raise ChainSelectionError("number of users must be non-negative")
    ell = ell_for_chains(num_chains)
    return num_users * ell / num_chains


def reset_assignment_caches() -> None:
    """Clear the per-user assignment caches (epoch change, benchmark sweeps).

    Correctness never requires this — cache keys include every input the
    cached values depend on — but a long-lived process that churns through
    many distinct populations (the scale benchmarks, multi-deployment test
    sessions) can call it to return the memory of retired epochs.
    """
    _chains_for_user_cached.cache_clear()
    intersection_logical_chain.cache_clear()


def group_sizes(user_public_keys: Sequence[bytes], num_chains: int) -> List[int]:
    """Histogram of users per group — used to test load balance."""
    ell = ell_for_chains(num_chains)
    counts = [0] * (ell + 1)
    for public_key in user_public_keys:
        counts[assign_group(public_key, ell + 1)] += 1
    return counts
