"""Group conversations (the §9 extension).

The paper observes that XRD already supports a group conversation whenever
every *pair* of group members intersects at a distinct chain: each member
then runs an ordinary pairwise conversation with every other member, and the
per-round message budget (ℓ messages, one per assigned chain) is simply spent
on several conversation messages instead of loopbacks.  What the current
protocol cannot do is carry two different conversations of one user over the
*same* chain.

:class:`GroupConversationPlanner` implements the feasibility check and the
per-round send plan for that extension: given the members' public keys it
computes every pair's intersection chain, reports whether the group is
supportable (all pairwise chains distinct per member), and produces, for each
member, the mapping ``chain id → partner`` that a client would use to fill
its ℓ slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Tuple

from repro.client.chain_selection import chains_for_user, intersection_chain
from repro.errors import ChainSelectionError

__all__ = ["GroupPlan", "GroupConversationPlanner"]


@dataclass(frozen=True)
class GroupPlan:
    """The per-round send plan for one feasible group conversation."""

    members: Tuple[str, ...]
    #: pair (name_a, name_b) → physical chain on which they exchange messages.
    pair_chains: Mapping[Tuple[str, str], int]
    #: member name → {chain id: partner name} describing how that member
    #: fills her conversation slots; unlisted assigned chains carry loopbacks.
    send_plan: Mapping[str, Mapping[int, str]]

    def partners_of(self, member: str) -> List[str]:
        return sorted(self.send_plan.get(member, {}).values())

    def chain_for_pair(self, member_a: str, member_b: str) -> int:
        key = (member_a, member_b) if (member_a, member_b) in self.pair_chains else (member_b, member_a)
        return self.pair_chains[key]


class GroupConversationPlanner:
    """Feasibility analysis and send planning for §9 group conversations."""

    def __init__(self, num_chains: int) -> None:
        if num_chains < 1:
            raise ChainSelectionError("the network needs at least one chain")
        self.num_chains = num_chains

    def pairwise_chains(
        self, members: Mapping[str, bytes]
    ) -> Dict[Tuple[str, str], int]:
        """Intersection chain for every pair of members (names sorted within a pair)."""
        if len(members) < 2:
            raise ChainSelectionError("a group conversation needs at least two members")
        chains: Dict[Tuple[str, str], int] = {}
        for (name_a, key_a), (name_b, key_b) in combinations(sorted(members.items()), 2):
            chains[(name_a, name_b)] = intersection_chain(key_a, key_b, self.num_chains)
        return chains

    def conflicts(self, members: Mapping[str, bytes]) -> List[Tuple[str, int, List[str]]]:
        """Members whose partners collide on a chain: ``(member, chain, partners)``.

        A non-empty result means the group is *not* supportable by the current
        protocol (the paper's stated limitation); the conflicting member would
        have to multiplex two conversations over one chain.
        """
        pair_chains = self.pairwise_chains(members)
        per_member: Dict[str, Dict[int, List[str]]] = {name: {} for name in members}
        for (name_a, name_b), chain in pair_chains.items():
            per_member[name_a].setdefault(chain, []).append(name_b)
            per_member[name_b].setdefault(chain, []).append(name_a)
        found = []
        for name, by_chain in per_member.items():
            for chain, partners in by_chain.items():
                if len(partners) > 1:
                    found.append((name, chain, sorted(partners)))
        return sorted(found)

    def is_supportable(self, members: Mapping[str, bytes]) -> bool:
        """True when every member meets each of her partners on a distinct chain."""
        return not self.conflicts(members)

    def plan(self, members: Mapping[str, bytes]) -> GroupPlan:
        """Build the send plan; raises :class:`ChainSelectionError` on conflicts."""
        conflicts = self.conflicts(members)
        if conflicts:
            description = "; ".join(
                f"{name} meets {', '.join(partners)} on chain {chain}"
                for name, chain, partners in conflicts
            )
            raise ChainSelectionError(
                "group conversation not supportable by the current protocol: " + description
            )
        pair_chains = self.pairwise_chains(members)
        send_plan: Dict[str, Dict[int, str]] = {name: {} for name in members}
        for (name_a, name_b), chain in pair_chains.items():
            send_plan[name_a][chain] = name_b
            send_plan[name_b][chain] = name_a
        # Sanity: every planned chain must be one the member is assigned to.
        for name, by_chain in send_plan.items():
            assigned = set(chains_for_user(members[name], self.num_chains))
            missing = set(by_chain) - assigned
            if missing:  # pragma: no cover - impossible by construction; defensive
                raise ChainSelectionError(
                    f"planned chains {sorted(missing)} are not assigned to {name}"
                )
        return GroupPlan(
            members=tuple(sorted(members)),
            pair_chains=pair_chains,
            send_plan={name: dict(by_chain) for name, by_chain in send_plan.items()},
        )

    def loopback_chains(self, members: Mapping[str, bytes], member: str) -> List[int]:
        """The assigned chains of ``member`` that remain loopback-only under the plan."""
        plan = self.plan(members)
        assigned = chains_for_user(members[member], self.num_chains)
        used = set(plan.send_plan[member])
        return [chain for chain in assigned if chain not in used]
