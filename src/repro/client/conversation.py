"""Conversation state and key schedule (§5.3.2).

A conversation between Alice and Bob is symmetric: both derive the shared
secret ``s_AB = DH(pk_other, sk_self)`` and then two directional symmetric
keys ``KDF(s_AB, pk_B)`` (messages *to* Bob) and ``KDF(s_AB, pk_A)``
(messages *to* Alice).  The paper assumes the two users agreed out of band
(e.g., via Alpenhorn) to start talking at a given round; here that agreement
is the :meth:`Conversation.establish` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.kdf import conversation_key

__all__ = ["Conversation"]


@dataclass
class Conversation:
    """One user's view of a (possibly one-sided) conversation with a partner."""

    partner_name: str
    partner_public_bytes: bytes
    partner_public_point: object
    shared_secret_bytes: bytes = field(repr=False)
    my_public_bytes: bytes
    established_round: int = 0
    active: bool = True
    partner_offline: bool = False

    @classmethod
    def establish(
        cls,
        group,
        my_keypair,
        partner_name: str,
        partner_public_bytes: bytes,
        established_round: int = 0,
    ) -> "Conversation":
        """Create conversation state from my key pair and the partner's public key."""
        partner_point = group.decode(partner_public_bytes)
        shared_point = group.diffie_hellman(partner_point, my_keypair.secret)
        return cls(
            partner_name=partner_name,
            partner_public_bytes=bytes(partner_public_bytes),
            partner_public_point=partner_point,
            shared_secret_bytes=group.encode(shared_point),
            my_public_bytes=bytes(my_keypair.public_bytes),
            established_round=established_round,
        )

    def key_to_partner(self) -> bytes:
        """Symmetric key for messages addressed to the partner (``KDF(s_AB, pk_B)``)."""
        return conversation_key(self.shared_secret_bytes, self.partner_public_bytes)

    def key_to_me(self) -> bytes:
        """Symmetric key for messages the partner addresses to me (``KDF(s_AB, pk_A)``)."""
        return conversation_key(self.shared_secret_bytes, self.my_public_bytes)

    def mark_partner_offline(self) -> None:
        """Record that the partner's offline notice arrived; stop sending to them.

        Per §5.3.3, once Bob learns that Alice went offline he reverts to
        loopback messages so the adversary cannot tell they were ever
        talking.
        """
        self.partner_offline = True
        self.active = False

    def end(self) -> None:
        """End the conversation locally (the same mechanism as going offline)."""
        self.active = False
