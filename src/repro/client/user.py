"""The XRD user agent (§5.3, §6.2).

A :class:`User` owns an identity key pair (which doubles as her mailbox
address), computes her chain assignment, builds one fixed-size submission per
assigned chain every round (a conversation message on the intersection chain
when she is talking to someone, loopback messages everywhere else), builds
the next round's *cover* submissions (§5.3.3), and decrypts whatever lands in
her mailbox.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.client.chain_selection import chains_for_user, intersection_chain
from repro.client.conversation import Conversation
from repro.crypto.kdf import loopback_key
from repro.crypto.keys import KeyPair
from repro.crypto.nizk import prove_dlog
from repro.crypto.onion import encrypt_inner, encrypt_outer_layers
from repro.errors import ConfigurationError, ProtocolError
from repro.mixnet.ahs import submission_context
from repro.mixnet.messages import ClientSubmission, MailboxMessage, MessageBody
from repro.transport.envelope import Envelope, submission_envelope

__all__ = ["ChainKeysView", "ReceivedMessage", "User"]


@dataclass(frozen=True, slots=True)
class ChainKeysView:
    """The public key material a user needs to submit to one chain in one round."""

    chain_id: int
    mixing_publics: Sequence[object]
    aggregate_inner_public: object


@dataclass(frozen=True, slots=True)
class ReceivedMessage:
    """A decrypted mailbox message, classified by the receiving user."""

    kind: str
    content: bytes
    chain_id: Optional[int] = None
    partner_name: Optional[str] = None

    KIND_LOOPBACK = "loopback"
    KIND_CONVERSATION = "conversation"
    KIND_OFFLINE_NOTICE = "offline-notice"
    KIND_UNREADABLE = "unreadable"


class User:
    """One XRD user: identity, conversation state, and per-round message builder."""

    def __init__(
        self,
        name: str,
        group,
        keypair: Optional[KeyPair] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.name = name
        self.group = group
        self.keypair = keypair or KeyPair.generate(group)
        self._rng = rng
        self.conversation: Optional[Conversation] = None

    # -- identity ------------------------------------------------------------

    @property
    def public_bytes(self) -> bytes:
        """The user's encoded public key; also her mailbox identifier."""
        return self.keypair.public_bytes

    def assigned_chains(self, num_chains: int) -> List[int]:
        """Physical chains this user must send one message to every round."""
        return chains_for_user(self.public_bytes, num_chains)

    # -- conversations ---------------------------------------------------------

    def start_conversation(self, partner_name: str, partner_public_bytes: bytes, round_number: int = 0) -> Conversation:
        """Begin (or replace) the user's single active conversation."""
        self.conversation = Conversation.establish(
            self.group, self.keypair, partner_name, partner_public_bytes, round_number
        )
        return self.conversation

    def end_conversation(self) -> None:
        if self.conversation is not None:
            self.conversation.end()

    def in_conversation(self) -> bool:
        return self.conversation is not None and self.conversation.active

    def conversation_chain(self, num_chains: int) -> Optional[int]:
        """The physical chain shared with the current partner, if any."""
        if self.conversation is None:
            return None
        return intersection_chain(
            self.public_bytes, self.conversation.partner_public_bytes, num_chains
        )

    # -- message construction ----------------------------------------------------

    def _seal_loopback(self, round_number: int, chain_id: int) -> MailboxMessage:
        key = loopback_key(self.keypair.identity_secret_bytes(), chain_id)
        return MailboxMessage.seal(self.public_bytes, key, round_number, MessageBody.loopback())

    def _seal_conversation(self, round_number: int, body: MessageBody) -> MailboxMessage:
        if self.conversation is None:
            raise ProtocolError("no active conversation to seal a message for")
        return MailboxMessage.seal(
            self.conversation.partner_public_bytes,
            self.conversation.key_to_partner(),
            round_number,
            body,
        )

    def _wrap_for_chain(
        self,
        round_number: int,
        chain_keys: ChainKeysView,
        mailbox_message: MailboxMessage,
        cover: bool,
    ) -> ClientSubmission:
        group = self.group
        envelope = encrypt_inner(
            group, chain_keys.aggregate_inner_public, round_number, mailbox_message.to_bytes(), self._rng
        )
        ephemeral_secret = group.random_scalar(self._rng)
        ciphertext = encrypt_outer_layers(
            group, chain_keys.mixing_publics, round_number, envelope.to_bytes(), ephemeral_secret
        )
        proof = prove_dlog(
            group,
            group.base(),
            ephemeral_secret,
            submission_context(chain_keys.chain_id, round_number, self.name),
            self._rng,
        )
        return ClientSubmission(
            chain_id=chain_keys.chain_id,
            sender=self.name,
            dh_public=group.encode(group.base_mult(ephemeral_secret)),
            ciphertext=ciphertext,
            proof=proof,
            cover=cover,
        )

    def build_round_submissions(
        self,
        round_number: int,
        num_chains: int,
        chain_keys: Dict[int, ChainKeysView],
        payload: Optional[bytes] = None,
        offline_notice: bool = False,
        cover: bool = False,
    ) -> List[ClientSubmission]:
        """Build the user's ℓ fixed-size submissions for ``round_number``.

        If the user is in an active conversation, the chain she shares with
        her partner carries a conversation message (containing ``payload``,
        or an offline notice when ``offline_notice`` is set — the content of
        cover messages); every other assigned chain carries a loopback
        message.  Users not in a conversation send loopbacks everywhere, so
        their traffic pattern is identical.
        """
        chains = self.assigned_chains(num_chains)
        conversation_chain_id = self.conversation_chain(num_chains) if self.in_conversation() else None
        submissions: List[ClientSubmission] = []
        conversation_sent = False
        for chain_id in chains:
            if chain_id not in chain_keys:
                raise ConfigurationError(f"missing chain keys for chain {chain_id}")
            if (
                conversation_chain_id is not None
                and chain_id == conversation_chain_id
                and not conversation_sent
            ):
                if offline_notice:
                    body = MessageBody.offline_notice()
                else:
                    body = MessageBody.data(payload or b"")
                mailbox_message = self._seal_conversation(round_number, body)
                conversation_sent = True
            else:
                mailbox_message = self._seal_loopback(round_number, chain_id)
            submissions.append(
                self._wrap_for_chain(round_number, chain_keys[chain_id], mailbox_message, cover)
            )
        return submissions

    def build_cover_submissions(
        self,
        next_round_number: int,
        num_chains: int,
        chain_keys: Dict[int, ChainKeysView],
    ) -> List[ClientSubmission]:
        """Cover messages for round ``ρ + 1`` (§5.3.3).

        If the user is in a conversation the cover set contains an *offline
        notice* on the intersection chain so the partner learns she vanished;
        otherwise it is all loopbacks.  The coordinator plays these on the
        user's behalf if she fails to submit next round.
        """
        return self.build_round_submissions(
            next_round_number,
            num_chains,
            chain_keys,
            payload=None,
            offline_notice=True,
            cover=True,
        )

    def submission_envelopes(
        self,
        submissions: Sequence[ClientSubmission],
        entry_servers: Dict[int, str],
        upload_round: int,
    ) -> List[Envelope]:
        """Address this user's submissions to their chains' entry servers.

        See :func:`repro.transport.envelope.submission_envelope` for the
        upload-round semantics (covers cross the uplink one round early).
        """
        return [
            submission_envelope(submission, entry_servers, upload_round)
            for submission in submissions
        ]

    # -- mailbox decryption ---------------------------------------------------------

    def decrypt_mailbox(
        self,
        round_number: int,
        messages: Sequence[MailboxMessage],
        num_chains: int,
    ) -> List[ReceivedMessage]:
        """Decrypt and classify this round's mailbox contents.

        Loopback messages are recognised by trial decryption with each
        per-chain loopback key; conversation messages with the partner's
        directional key.  Receiving an offline notice marks the conversation
        partner as offline (the §5.3.3 state transition).
        """
        received: List[ReceivedMessage] = []
        loopback_keys = {
            chain_id: loopback_key(self.keypair.identity_secret_bytes(), chain_id)
            for chain_id in sorted(set(self.assigned_chains(num_chains)))
        }
        for message in messages:
            if message.recipient != self.public_bytes:
                received.append(ReceivedMessage(kind=ReceivedMessage.KIND_UNREADABLE, content=b""))
                continue
            classified = False
            if self.conversation is not None:
                body = message.open(self.conversation.key_to_me(), round_number)
                if body is not None:
                    if body.is_offline_notice():
                        self.conversation.mark_partner_offline()
                        received.append(
                            ReceivedMessage(
                                kind=ReceivedMessage.KIND_OFFLINE_NOTICE,
                                content=b"",
                                partner_name=self.conversation.partner_name,
                            )
                        )
                    else:
                        received.append(
                            ReceivedMessage(
                                kind=ReceivedMessage.KIND_CONVERSATION,
                                content=body.content,
                                partner_name=self.conversation.partner_name,
                            )
                        )
                    classified = True
            if classified:
                continue
            for chain_id, key in loopback_keys.items():
                body = message.open(key, round_number)
                if body is not None:
                    received.append(
                        ReceivedMessage(
                            kind=ReceivedMessage.KIND_LOOPBACK, content=b"", chain_id=chain_id
                        )
                    )
                    classified = True
                    break
            if not classified:
                received.append(ReceivedMessage(kind=ReceivedMessage.KIND_UNREADABLE, content=b""))
        return received
