"""Client-side protocol: chain selection, conversations, and the user agent."""

from repro.client.chain_selection import (
    all_pairs_intersect,
    assign_group,
    build_group_chain_sets,
    chains_for_group,
    chains_for_user,
    ell_for_chains,
    intersection_chain,
    num_logical_chains,
)
from repro.client.conversation import Conversation
from repro.client.group import GroupConversationPlanner, GroupPlan
from repro.client.user import ChainKeysView, ReceivedMessage, User

__all__ = [
    "ChainKeysView",
    "Conversation",
    "GroupConversationPlanner",
    "GroupPlan",
    "ReceivedMessage",
    "User",
    "all_pairs_intersect",
    "assign_group",
    "build_group_chain_sets",
    "chains_for_group",
    "chains_for_user",
    "ell_for_chains",
    "intersection_chain",
    "num_logical_chains",
]
