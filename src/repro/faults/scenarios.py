"""Canned fault scenarios (the plans the README lists).

Each factory returns a :class:`~repro.faults.plan.FaultPlan` sized for the
small deterministic test deployments (a handful of servers, 3 chains); all
parameters can be overridden.  :data:`CANNED_SCENARIOS` maps scenario names
to their factories so tools can enumerate them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.coordinator.adversary import (
    MODE_BREAK_AGGREGATE,
    MODE_TAMPER_CIPHERTEXT,
)
from repro.faults.plan import (
    USER_INVALID_PROOF,
    USER_MISAUTHENTICATED,
    FaultPlan,
    ServerFault,
    UserFault,
)
from repro.transport.faulty import DELAY, DROP, DUPLICATE, REORDER, LinkFault
from repro.transport import envelope as ev

__all__ = [
    "tamper_and_recover",
    "aggregate_attack_and_recover",
    "misauthenticating_user",
    "invalid_proof_user",
    "flaky_uplink",
    "lossy_mailbox_fetch",
    "duplicated_chain_batch",
    "delayed_chain_batch",
    "reordered_mailbox_delivery",
    "CANNED_SCENARIOS",
]


def tamper_and_recover(
    fault_round: int = 2,
    chain_id: int = 0,
    position: int = 0,
    num_rounds: int = 4,
    seed: int = 0,
) -> FaultPlan:
    """The acceptance scenario: tampered ciphertext at round r, then recovery.

    A server at ``position`` corrupts one ciphertext in round ``fault_round``
    (:data:`MODE_TAMPER_CIPHERTEXT`): the next honest server's authenticated
    decryption fails, the blame protocol convicts the tamperer, the
    coordinator evicts it and re-forms the chain, and rounds
    ``fault_round + 1 …`` deliver correctly — including a conversation
    riding the re-formed chain.
    """
    return FaultPlan(
        name="tamper-and-recover",
        num_rounds=num_rounds,
        server_faults=(
            ServerFault(
                round_number=fault_round,
                chain_id=chain_id,
                position=position,
                mode=MODE_TAMPER_CIPHERTEXT,
            ),
        ),
        converse_on_chain=chain_id,
        seed=seed,
    )


def aggregate_attack_and_recover(
    fault_round: int = 2,
    chain_id: int = 0,
    position: int = 0,
    num_rounds: int = 4,
    seed: int = 0,
) -> FaultPlan:
    """A broken aggregate proof: detected immediately, evicted, re-formed."""
    return FaultPlan(
        name="aggregate-attack-and-recover",
        num_rounds=num_rounds,
        server_faults=(
            ServerFault(
                round_number=fault_round,
                chain_id=chain_id,
                position=position,
                mode=MODE_BREAK_AGGREGATE,
            ),
        ),
        converse_on_chain=chain_id,
        seed=seed,
    )


def misauthenticating_user(
    fault_round: int = 2,
    chain_id: int = 0,
    num_rounds: int = 3,
    fail_at_position: Optional[int] = None,
    seed: int = 0,
) -> FaultPlan:
    """§8.2's blame experiment: a malicious user convicted by the walk-back.

    The round still delivers (her ciphertext is removed and mixing re-runs),
    no server is evicted, and honest traffic is unaffected.
    """
    return FaultPlan(
        name="misauthenticating-user",
        num_rounds=num_rounds,
        user_faults=(
            UserFault(
                round_number=fault_round,
                chain_id=chain_id,
                sender="mallory",
                kind=USER_MISAUTHENTICATED,
                fail_at_position=fail_at_position,
            ),
        ),
        converse_on_chain=chain_id,
        seed=seed,
    )


def invalid_proof_user(
    fault_round: int = 1, chain_id: int = 0, num_rounds: int = 2, seed: int = 0
) -> FaultPlan:
    """A submission with an invalid NIZK: rejected at intake, no blame run."""
    return FaultPlan(
        name="invalid-proof-user",
        num_rounds=num_rounds,
        user_faults=(
            UserFault(
                round_number=fault_round,
                chain_id=chain_id,
                sender="mallory",
                kind=USER_INVALID_PROOF,
            ),
        ),
        seed=seed,
    )


def flaky_uplink(
    user_name: str = "user-0", fault_round: int = 2, num_rounds: int = 3, seed: int = 0
) -> FaultPlan:
    """One user's submissions are lost on the uplink for one round."""
    return FaultPlan(
        name="flaky-uplink",
        num_rounds=num_rounds,
        link_faults=(
            LinkFault(
                behaviour=DROP,
                kind=ev.SUBMISSION,
                source=user_name,
                rounds=frozenset({fault_round}),
            ),
        ),
        seed=seed,
    )


def lossy_mailbox_fetch(
    user_name: str = "user-0", fault_round: int = 1, num_rounds: int = 2, seed: int = 0
) -> FaultPlan:
    """A user's mailbox download is lost: she sees an empty round."""
    return FaultPlan(
        name="lossy-mailbox-fetch",
        num_rounds=num_rounds,
        link_faults=(
            LinkFault(
                behaviour=DROP,
                kind=ev.MAILBOX_FETCH,
                destination=user_name,
                rounds=frozenset({fault_round}),
            ),
        ),
        seed=seed,
    )


def duplicated_chain_batch(
    chain_id: int = 0, fault_round: int = 1, num_rounds: int = 2, seed: int = 0
) -> FaultPlan:
    """A server→server batch is replayed with one duplicated entry."""
    return FaultPlan(
        name="duplicated-chain-batch",
        num_rounds=num_rounds,
        link_faults=(
            LinkFault(
                behaviour=DUPLICATE,
                kind=ev.BATCH,
                chain_id=chain_id,
                rounds=frozenset({fault_round}),
            ),
        ),
        seed=seed,
    )


def delayed_chain_batch(
    chain_id: int = 0,
    fault_round: int = 1,
    num_rounds: int = 2,
    delay_seconds: float = 0.25,
    seed: int = 0,
) -> FaultPlan:
    """A chain's batch hand-offs stall: payloads intact, latency charged."""
    return FaultPlan(
        name="delayed-chain-batch",
        num_rounds=num_rounds,
        link_faults=(
            LinkFault(
                behaviour=DELAY,
                kind=ev.BATCH,
                chain_id=chain_id,
                rounds=frozenset({fault_round}),
                delay_seconds=delay_seconds,
            ),
        ),
        seed=seed,
    )


def reordered_mailbox_delivery(
    chain_id: int = 0, fault_round: int = 1, num_rounds: int = 2, seed: int = 0
) -> FaultPlan:
    """A chain's mailbox delivery arrives permuted (delivery is order-free)."""
    return FaultPlan(
        name="reordered-mailbox-delivery",
        num_rounds=num_rounds,
        link_faults=(
            LinkFault(
                behaviour=REORDER,
                kind=ev.MAILBOX_DELIVERY,
                chain_id=chain_id,
                rounds=frozenset({fault_round}),
                seed=seed,
            ),
        ),
        seed=seed,
    )


#: Name → factory for every canned scenario.
CANNED_SCENARIOS: Dict[str, Callable[..., FaultPlan]] = {
    "tamper-and-recover": tamper_and_recover,
    "aggregate-attack-and-recover": aggregate_attack_and_recover,
    "misauthenticating-user": misauthenticating_user,
    "invalid-proof-user": invalid_proof_user,
    "flaky-uplink": flaky_uplink,
    "lossy-mailbox-fetch": lossy_mailbox_fetch,
    "duplicated-chain-batch": duplicated_chain_batch,
    "delayed-chain-batch": delayed_chain_batch,
    "reordered-mailbox-delivery": reordered_mailbox_delivery,
}
