"""Declarative fault plans: which round, which layer, which behaviour.

A :class:`FaultPlan` is pure data — no deployment handles, no callables — so
the same plan can be executed under every execution backend, scheduler, and
transport, and two runs of the same plan against equally-seeded deployments
are bit-identical.  Faults come in three layers, mirroring where an active
adversary can sit in Figure 1:

* :class:`ServerFault` — a chain member corrupts its mixing step in one of
  the :class:`~repro.coordinator.adversary.TamperingMember` modes;
* :class:`UserFault` — a malicious client submits one of the ``forge_*``
  submissions of :mod:`repro.coordinator.adversary`;
* :class:`~repro.transport.faulty.LinkFault` — the network drops,
  duplicates, delays, or reorders envelopes on selected links.

Round numbers in a plan are scenario-relative (1 is the first round the
runner executes); the runner maps them onto the deployment's absolute round
counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.coordinator.adversary import (
    MODE_BREAK_AGGREGATE,
    MODE_DROP_MESSAGE,
    MODE_PRESERVE_AGGREGATE,
    MODE_TAMPER_CIPHERTEXT,
)
from repro.errors import ConfigurationError
from repro.transport.faulty import LinkFault

__all__ = ["ServerFault", "UserFault", "FaultPlan"]

_SERVER_MODES = (
    MODE_TAMPER_CIPHERTEXT,
    MODE_BREAK_AGGREGATE,
    MODE_PRESERVE_AGGREGATE,
    MODE_DROP_MESSAGE,
)

#: A malicious user whose outer layers stop authenticating mid-chain — the
#: §8.2 blame experiment; convicted by the blame walk-back and removed.
USER_MISAUTHENTICATED = "misauthenticated"
#: A malicious user whose submission NIZK is invalid — rejected at intake.
USER_INVALID_PROOF = "invalid-proof"

_USER_KINDS = (USER_MISAUTHENTICATED, USER_INVALID_PROOF)


@dataclass(frozen=True)
class ServerFault:
    """One tampering server: chain position, mode, and the round it fires."""

    round_number: int
    chain_id: int
    position: int
    mode: str
    target_index: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _SERVER_MODES:
            raise ConfigurationError(f"unknown server-fault mode {self.mode!r}")
        if self.round_number < 1:
            raise ConfigurationError("server-fault rounds are 1-based")


@dataclass(frozen=True)
class UserFault:
    """One malicious submission: sender name, target chain, forgery kind."""

    round_number: int
    chain_id: int
    sender: str
    kind: str = USER_MISAUTHENTICATED
    #: For misauthenticated forgeries: the first chain position whose layer
    #: fails to open (``None`` → the last server, the paper's worst case).
    fail_at_position: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _USER_KINDS:
            raise ConfigurationError(f"unknown user-fault kind {self.kind!r}")
        if self.round_number < 1:
            raise ConfigurationError("user-fault rounds are 1-based")


@dataclass(frozen=True)
class FaultPlan:
    """A multi-round adversarial scenario, declaratively.

    ``payloads`` maps scenario round → {user name → conversation payload};
    ``offline`` maps scenario round → user names that fail to show up.
    ``converse_on_chain`` asks the runner to pick (deterministically) a user
    pair whose intersection chain is the given chain and have them exchange
    a payload every round — the standard way to prove a re-formed chain
    still delivers.  ``recover`` makes the runner evict and re-form after
    every segment that produced server convictions; with it off, the
    scenario only observes detection.
    """

    name: str
    num_rounds: int
    server_faults: Tuple[ServerFault, ...] = ()
    user_faults: Tuple[UserFault, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    conversations: Tuple[Tuple[str, str], ...] = ()
    converse_on_chain: Optional[int] = None
    payloads: Dict[int, Dict[str, bytes]] = field(default_factory=dict)
    offline: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    recover: bool = True
    seed: int = 0

    def validate(self) -> None:
        if self.num_rounds < 1:
            raise ConfigurationError("a scenario needs at least one round")
        for fault in self.server_faults + self.user_faults:
            if fault.round_number > self.num_rounds:
                raise ConfigurationError(
                    f"fault at round {fault.round_number} is past the plan's "
                    f"{self.num_rounds} rounds"
                )
        for fault in self.link_faults:
            for round_number in fault.rounds or ():
                if not 1 <= round_number <= self.num_rounds:
                    raise ConfigurationError(
                        f"link fault selects round {round_number}, outside the "
                        f"plan's {self.num_rounds} rounds — it would never fire"
                    )
        for round_number in list(self.payloads) + list(self.offline):
            if not 1 <= round_number <= self.num_rounds:
                raise ConfigurationError(f"round {round_number} is outside the plan")

    # -- segmentation ----------------------------------------------------------

    def blame_rounds(self) -> Tuple[int, ...]:
        """Scenario rounds that can trigger the blame protocol.

        Segment boundaries are derived from the *plan*, never from execution
        results, so every backend and scheduler sees identical segments —
        the property the parity guarantee rests on.
        """
        rounds = {fault.round_number for fault in self.server_faults}
        rounds.update(fault.round_number for fault in self.user_faults)
        return tuple(sorted(rounds))

    def segments(self) -> Tuple[Tuple[int, int], ...]:
        """Inclusive (start, end) scenario-round ranges between blame rounds.

        Each blame-capable round ends its segment, so recovery (evict +
        re-form) can run between segments; within a segment the scheduler is
        free to pipeline rounds.
        """
        boundaries = [r for r in self.blame_rounds() if r < self.num_rounds]
        segments = []
        start = 1
        for boundary in boundaries:
            segments.append((start, boundary))
            start = boundary + 1
        segments.append((start, self.num_rounds))
        return tuple(segments)
