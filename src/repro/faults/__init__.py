"""Fault-injection scenario engine (DESIGN.md §6).

The paper's core claim is adversarial: an *active* attacker — a tampering
server, a misauthenticating user, a lossy link — is detected, blamed, and
evicted while the system keeps serving traffic (§6, §8.2).  This package
drives that claim end to end through the real engine and transport stack:

* a :class:`FaultPlan` declares *which round, which layer, which behaviour*
  — server faults (the :class:`~repro.coordinator.adversary.TamperingMember`
  modes), user faults (the ``forge_*`` malicious submissions), and link
  faults (:class:`~repro.transport.faulty.LinkFault` drop / duplicate /
  delay / reorder);
* a :class:`ScenarioRunner` executes the plan as a multi-round adversarial
  scenario — detect → blame → evict → re-form → resume — under any
  execution backend and scheduler, and returns a structured
  :class:`ScenarioReport` whose canonical bytes are bit-identical across
  all of them;
* :data:`CANNED_SCENARIOS` names the ready-made plans the README lists.
"""

from repro.faults.plan import FaultPlan, ServerFault, UserFault
from repro.faults.runner import RoundOutcome, ScenarioReport, ScenarioRunner
from repro.faults.scenarios import CANNED_SCENARIOS
from repro.transport.faulty import LinkFault

__all__ = [
    "FaultPlan",
    "ServerFault",
    "UserFault",
    "LinkFault",
    "ScenarioRunner",
    "ScenarioReport",
    "RoundOutcome",
    "CANNED_SCENARIOS",
]
