"""Executes a :class:`~repro.faults.plan.FaultPlan` end to end.

The runner turns the declarative plan into real rounds through the
deployment's own engine — whichever execution backend and scheduler it is
configured with — and collects a structured :class:`ScenarioReport`.

Execution is segmented: the plan's blame-capable rounds (server and user
faults) end their segment, and between segments the runner applies the
recovery half of the protocol (:meth:`Deployment.recover
<repro.coordinator.network.Deployment.recover>`: evict convicted servers,
re-form the affected chains).  Segment boundaries come from the *plan*, not
from execution results, and recovery always runs on the coordinator thread
between ``run_rounds`` calls — so a staggered schedule never pipelines
across a recovery, and the scenario's canonical bytes are bit-identical
across {serial, parallel, multiprocess} × {sequential, staggered} ×
{inproc, instrumented}.

Reproducibility: every adversarial behaviour draws from a stream derived
from ``(plan.seed, fault identity)`` — never from the global :mod:`random`
state — matching the per-(member, round) determinism of honest execution.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.client.chain_selection import intersection_chain
from repro.coordinator.adversary import (
    forge_invalid_proof_submission,
    forge_misauthenticated_submission,
    install_tampering_server,
)
from repro.errors import ConfigurationError
from repro.faults.plan import USER_MISAUTHENTICATED, FaultPlan, ServerFault, UserFault
from repro.transport.faulty import FaultyTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coordinator.network import Deployment, RecoveryAction
    from repro.engine.stages import RoundReport
    from repro.mixnet.blame import BlameVerdict

__all__ = ["RoundOutcome", "ScenarioReport", "ScenarioRunner", "server_fault_rng"]


def server_fault_rng(seed: int, fault: ServerFault) -> random.Random:
    """The adversarial stream for one server fault, derived from the *plan*.

    Module-level because the distributed runner must derive the identical
    stream on the mix process that owns the tampering server: the coordinator
    broadcasts only the plan seed and the fault's identity, and both sides
    seed from ``(seed, fault)`` exactly the same way.
    """
    return random.Random(
        (seed << 48)
        ^ (fault.round_number << 32)
        ^ (fault.chain_id << 16)
        ^ (fault.position << 8)
        ^ 0xA5
    )


@dataclass
class RoundOutcome:
    """What one scenario round observably produced."""

    round_number: int
    statuses: Dict[int, str]
    verdicts: Dict[int, "BlameVerdict"]
    rejected_senders: List[str]
    delivered_messages: int
    fingerprint: bytes
    report: "RoundReport"

    @property
    def all_delivered(self) -> bool:
        return all(status == "delivered" for status in self.statuses.values())


@dataclass
class ScenarioReport:
    """Structured outcome of one executed fault scenario."""

    plan_name: str
    rounds: List[RoundOutcome] = field(default_factory=list)
    recoveries: List["RecoveryAction"] = field(default_factory=list)
    evicted_servers: List[str] = field(default_factory=list)

    def outcome_for(self, round_number: int) -> RoundOutcome:
        for outcome in self.rounds:
            if outcome.round_number == round_number:
                return outcome
        raise ConfigurationError(f"scenario did not execute round {round_number}")

    def convicted_servers(self) -> List[str]:
        """Every server any round's verdicts or proof failures convicted."""
        names: List[str] = []
        for outcome in self.rounds:
            for verdict in outcome.verdicts.values():
                for name in verdict.malicious_servers:
                    if name not in names:
                        names.append(name)
            for chain_id in outcome.statuses:
                result = outcome.report.chain_results[chain_id]
                if result.misbehaving_server and result.misbehaving_server not in names:
                    names.append(result.misbehaving_server)
        return names

    def convicted_users(self) -> List[str]:
        names: List[str] = []
        for outcome in self.rounds:
            for verdict in outcome.verdicts.values():
                for name in verdict.malicious_users:
                    if name not in names:
                        names.append(name)
        return names

    def canonical_bytes(self) -> bytes:
        """Deterministic digest of everything observable about the scenario.

        Covers each round's :meth:`RoundReport.canonical_bytes
        <repro.engine.stages.RoundReport.canonical_bytes>`, each blame
        verdict's wire encoding, and every recovery action — so equality
        proves the execution strategy unobservable end to end, *including*
        the detect → blame → evict → re-form path.
        """
        hasher = hashlib.sha256()

        def feed(data: bytes) -> None:
            hasher.update(len(data).to_bytes(8, "big"))
            hasher.update(data)

        for outcome in self.rounds:
            feed(b"round")
            feed(outcome.fingerprint)
            for chain_id in sorted(outcome.verdicts):
                feed(chain_id.to_bytes(4, "big"))
                feed(outcome.verdicts[chain_id].to_bytes())
        def feed_names(label: bytes, names) -> None:
            # Count-framed so adjacent lists cannot alias (['a'], ['b','c']
            # must hash differently from ['a','b'], ['c']).
            feed(label)
            feed(len(names).to_bytes(4, "big"))
            for name in names:
                feed(name.encode())

        for action in self.recoveries:
            feed(b"recovery")
            feed(action.round_number.to_bytes(8, "big"))
            feed(action.chain_id.to_bytes(4, "big"))
            feed_names(b"evicted", action.evicted)
            feed_names(b"servers", action.new_servers)
        feed_names(b"all-evicted", self.evicted_servers)
        return hasher.digest()


class ScenarioRunner:
    """Runs one fault plan against one deployment, segment by segment."""

    def __init__(
        self,
        deployment: "Deployment",
        plan: FaultPlan,
        staggered: bool = False,
        control=None,
    ) -> None:
        plan.validate()
        self.deployment = deployment
        self.plan = plan
        self.staggered = staggered
        #: Optional distributed-control hook (``repro.runner.remote``): told
        #: about fault installation and impending recovery so remote role
        #: replicas mirror the coordinator's state transitions.  ``None``
        #: in-process — the hooks are the *only* difference between the two
        #: code paths, which is what makes distributed parity by construction.
        self.control = control

    # -- deterministic adversarial randomness ---------------------------------

    def _server_fault_rng(self, fault: ServerFault) -> random.Random:
        return server_fault_rng(self.plan.seed, fault)

    def _user_fault_rng(self, fault: UserFault) -> random.Random:
        return random.Random(
            (self.plan.seed << 48)
            ^ (fault.round_number << 32)
            ^ (fault.chain_id << 16)
            ^ zlib.crc32(fault.sender.encode())
        )

    # -- setup ------------------------------------------------------------------

    def _absolute_link_faults(self, offset: int):
        """The plan's link faults with round selectors mapped to absolute rounds.

        A plan's round numbers are scenario-relative everywhere (server,
        user, *and* link faults); envelopes carry absolute round numbers, so
        the selectors are shifted before installation.
        """
        faults = []
        for fault in self.plan.link_faults:
            if offset and fault.rounds is not None:
                fault = dataclasses.replace(
                    fault, rounds=frozenset(offset + r for r in fault.rounds)
                )
            faults.append(fault)
        return faults

    def _pick_conversation_pair(self, chain_id: int) -> Tuple[str, str]:
        """The first user pair (in deployment order) sharing ``chain_id``."""
        users = self.deployment.users
        for i, first in enumerate(users):
            for second in users[i + 1:]:
                shared = intersection_chain(
                    first.public_bytes, second.public_bytes, self.deployment.num_chains
                )
                if shared == chain_id:
                    return first.name, second.name
        raise ConfigurationError(f"no user pair intersects on chain {chain_id}")

    def _forge(self, fault: UserFault, absolute_round: int):
        deployment = self.deployment
        views = deployment.chain_keys_view(absolute_round)
        if fault.chain_id not in views:
            raise ConfigurationError(f"user fault targets unknown chain {fault.chain_id}")
        rng = self._user_fault_rng(fault)
        if fault.kind == USER_MISAUTHENTICATED:
            return forge_misauthenticated_submission(
                deployment.group,
                views[fault.chain_id],
                absolute_round,
                fault.sender,
                fail_at_position=fault.fail_at_position,
                rng=rng,
            )
        return forge_invalid_proof_submission(
            deployment.group, views[fault.chain_id], absolute_round, fault.sender, rng=rng
        )

    # -- execution ----------------------------------------------------------------

    def run(self) -> ScenarioReport:
        plan = self.plan
        deployment = self.deployment

        # Scenario round r maps to absolute round offset + r.
        offset = deployment.next_round - 1
        link_faults = self._absolute_link_faults(offset)
        if isinstance(deployment.transport, FaultyTransport):
            # This plan is authoritative for its run: replace whatever a
            # previous scenario installed (possibly with nothing).
            deployment.transport.faults = list(link_faults)
        elif link_faults:
            deployment.use_transport(
                FaultyTransport(deployment.transport, link_faults),
                close_previous=False,  # the wrapper keeps delegating to it
            )

        chatters: Tuple[str, ...] = ()
        for first, second in plan.conversations:
            deployment.start_conversation(first, second)
        if plan.converse_on_chain is not None:
            pair = self._pick_conversation_pair(plan.converse_on_chain)
            deployment.start_conversation(*pair)
            chatters = pair

        report = ScenarioReport(plan_name=plan.name)
        for segment_start, segment_end in plan.segments():
            for fault in plan.server_faults:
                if segment_start <= fault.round_number <= segment_end:
                    if self.control is not None:
                        self.control.install_server_fault(
                            fault, offset + fault.round_number
                        )
                    install_tampering_server(
                        deployment,
                        fault.chain_id,
                        fault.position,
                        fault.mode,
                        target_index=fault.target_index,
                        rng=self._server_fault_rng(fault),
                        rounds={offset + fault.round_number},
                    )
            specs = []
            for scenario_round in range(segment_start, segment_end + 1):
                absolute_round = offset + scenario_round
                extra = [
                    self._forge(fault, absolute_round)
                    for fault in plan.user_faults
                    if fault.round_number == scenario_round
                ]
                payloads = dict(plan.payloads.get(scenario_round, {}))
                offline = plan.offline.get(scenario_round, frozenset())
                for name in chatters:
                    if name not in offline:
                        payloads.setdefault(name, f"r{scenario_round}-{name}".encode())
                specs.append(
                    deployment.round_spec(
                        payloads=payloads,
                        offline_users=offline,
                        extra_submissions=extra,
                    )
                )
            for round_report in deployment.run_rounds(specs, staggered=self.staggered):
                report.rounds.append(self._outcome(round_report))
            if plan.recover:
                if self.control is not None:
                    self.control.before_recover(deployment)
                report.recoveries.extend(deployment.recover())
        # The plan's faults are scoped to its run: a deployment used after
        # the scenario must not keep dropping/replaying envelopes.
        if isinstance(deployment.transport, FaultyTransport):
            deployment.transport.faults = []
        report.evicted_servers = sorted(deployment.evicted_servers)
        return report

    @staticmethod
    def _outcome(round_report: "RoundReport") -> RoundOutcome:
        statuses = {
            chain_id: result.status
            for chain_id, result in sorted(round_report.chain_results.items())
        }
        verdicts = {
            chain_id: result.blame_verdict
            for chain_id, result in sorted(round_report.chain_results.items())
            if result.blame_verdict is not None
        }
        delivered = sum(
            len(messages) for messages in round_report.delivered.values()
        )
        return RoundOutcome(
            round_number=round_report.round_number,
            statuses=statuses,
            verdicts=verdicts,
            rejected_senders=list(round_report.rejected_senders),
            delivered_messages=delivered,
            fingerprint=round_report.canonical_bytes(),
            report=round_report,
        )
