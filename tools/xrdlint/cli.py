"""Command-line driver: ``python -m tools.xrdlint [paths...]``.

Exit status is 0 when no non-baselined findings (and no parse errors)
remain, 1 otherwise — which is exactly what the CI static-analysis job
gates on.  ``--write-baseline`` accepts the current findings as the new
baseline; ``--format json`` emits a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.xrdlint.baseline import load_baseline, write_baseline
from tools.xrdlint.core import LintResult, lint_paths
from tools.xrdlint.rules import all_rules

DEFAULT_TARGET = "src/repro"
DEFAULT_BASELINE = "tools/xrdlint/baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xrdlint",
        description=(
            "Repo-specific static analysis for the XRD reproduction: "
            "determinism, secret hygiene, fork safety, codec exhaustiveness "
            "and the native-loader contract."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[DEFAULT_TARGET],
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: report every finding as fresh",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="PREFIX",
        help="only run rules whose code starts with PREFIX (repeatable, "
        "e.g. --select XRD1 for the determinism family)",
    )
    parser.add_argument(
        "--tests-dir",
        default="tests",
        help="tests directory for the codec round-trip cross-reference "
        "(default: tests; pass an empty string to disable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        for line in rule.description.splitlines():
            print(f"    {line}")
    return 0


def _render_human(result: LintResult, show_baselined: bool) -> None:
    for finding in result.parse_errors:
        print(finding.render())
    for finding in result.fresh:
        print(finding.render())
        if finding.snippet:
            print(f"    {finding.snippet}")
        print(f"    fingerprint: {finding.fingerprint()}  [{finding.symbol}]")
    summary = (
        f"xrdlint: {result.files_checked} files, "
        f"{len(result.fresh)} fresh finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed by pragma"
    )
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparseable file(s)"
    print(summary)
    if show_baselined and result.baselined:
        print("baselined findings (informational):")
        for finding in result.baselined:
            print(f"  {finding.render()}")


def _render_json(result: LintResult) -> None:
    print(
        json.dumps(
            {
                "files_checked": result.files_checked,
                "clean": result.clean,
                "fresh": [finding.to_json() for finding in result.fresh],
                "baselined": [finding.to_json() for finding in result.baselined],
                "parse_errors": [finding.to_json() for finding in result.parse_errors],
                "suppressed": result.suppressed,
            },
            indent=2,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    from tools.xrdlint.config import LintConfig

    tests_dir = Path(args.tests_dir) if args.tests_dir else None
    config = LintConfig(tests_dir=tests_dir)

    baseline = None
    baseline_path = Path(args.baseline)
    if not args.no_baseline and not args.write_baseline:
        baseline = load_baseline(baseline_path)

    paths: List[Path] = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"xrdlint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    result = lint_paths(paths, config=config, baseline=baseline, select=args.select)

    if args.write_baseline:
        count = write_baseline(baseline_path, result.findings)
        print(f"xrdlint: wrote {count} baseline entr(y/ies) to {baseline_path}")
        return 0

    if args.format == "json":
        _render_json(result)
    else:
        _render_human(result, show_baselined=False)
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
