"""A small intraprocedural dataflow/taint engine.

Two analyses share the same skeleton — a forward walk over a function body
that propagates a property through assignments until a fixed point:

* :class:`FunctionTaint` answers "does this expression carry a value
  produced by one of the *taint sources*?"  The secret-hygiene rules use it
  with the repo's key/scalar producers as sources and ``repr``/f-string/
  logging sites as sinks.
* :class:`SetTypes` answers "is this expression (typed as) an unordered
  set?"  The determinism rules use it to find iteration whose order is not
  defined.

Both are deliberately approximate: names are tracked flow-insensitively
(a name tainted anywhere in the function counts as tainted everywhere
after the fixed point), attribute chains are tracked by their dotted text,
and calls propagate taint from arguments unless the callee is a known
sanitizer.  For a repo-specific linter, over-taint plus pragmas beats a
missed leak.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from tools.xrdlint.core import resolve_call_name

__all__ = ["TaintSpec", "FunctionTaint", "SetTypes", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class TaintSpec:
    """What creates taint, what destroys it, and what names carry it."""

    def __init__(
        self,
        producers: Iterable[str] = (),
        name_patterns: Iterable[str] = (),
        sanitizers: Iterable[str] = (),
    ) -> None:
        self.producers: FrozenSet[str] = frozenset(producers)
        self.name_res: Tuple[re.Pattern, ...] = tuple(re.compile(p) for p in name_patterns)
        self.sanitizers: FrozenSet[str] = frozenset(sanitizers)

    def name_matches(self, name: str) -> bool:
        last = name.rsplit(".", 1)[-1]
        return any(pattern.search(last) for pattern in self.name_res)


class FunctionTaint:
    """Fixed-point taint propagation over one function body."""

    _MAX_PASSES = 4

    def __init__(self, func: ast.AST, spec: TaintSpec, imports: Dict[str, str]) -> None:
        self.spec = spec
        self.imports = imports
        self.tainted: Set[str] = set()
        body = getattr(func, "body", [])
        # Parameters whose names look secret are sources too (callers hand
        # layer keys and scalars down by name).
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if spec.name_matches(arg.arg):
                    self.tainted.add(arg.arg)
        for _ in range(self._MAX_PASSES):
            before = len(self.tainted)
            for stmt in body:
                self._visit_stmt(stmt)
            if len(self.tainted) == before:
                break

    # -- statements -----------------------------------------------------------

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if self.is_tainted(stmt.value):
                for target in stmt.targets:
                    self._taint_target(target)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if self.is_tainted(stmt.value):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            if self.is_tainted(stmt.value) or self.is_tainted(stmt.target):
                self._taint_target(stmt.target)
        elif isinstance(stmt, ast.For):
            if self.is_tainted(stmt.iter):
                self._taint_target(stmt.target)
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, (ast.If, ast.While)):
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.With):
            for inner in stmt.body:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._visit_stmt(inner)
        # Nested defs/classes are separate scopes: analysed on their own.

    def _taint_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element)
            return
        if isinstance(target, ast.Starred):
            self._taint_target(target.value)
            return
        name = dotted_name(target)
        if name is not None:
            self.tainted.add(name)

    # -- expressions ----------------------------------------------------------

    def is_tainted(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
            if name is None:
                return False
            return name in self.tainted or self.spec.name_matches(name)
        if isinstance(node, ast.Call):
            called = resolve_call_name(node.func, self.imports)
            last = called.rsplit(".", 1)[-1] if called else None
            if last in self.spec.sanitizers:
                return False
            if last in self.spec.producers:
                return True
            return any(self.is_tainted(arg) for arg in node.args) or any(
                self.is_tainted(kw.value) for kw in node.keywords
            )
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.Compare):
            return False  # a comparison result is a bool, not the secret
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(element) for element in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.is_tainted(v) for v in node.values if v is not None)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        if isinstance(node, ast.IfExp):
            return self.is_tainted(node.body) or self.is_tainted(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return any(self.is_tainted(value) for value in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.is_tainted(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.is_tainted(node.elt) or any(
                self.is_tainted(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.DictComp):
            return (
                self.is_tainted(node.key)
                or self.is_tainted(node.value)
                or any(self.is_tainted(gen.iter) for gen in node.generators)
            )
        if isinstance(node, ast.Await):
            return self.is_tainted(node.value)
        return False


#: Functions through which a set stays a set.
_SET_RETURNING_METHODS = frozenset(
    {
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "copy",
    }
)

#: Order-independent consumers: passing a set here is fine.
SAFE_SET_CONSUMERS = frozenset(
    {
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "sorted",
        "set",
        "frozenset",
        "bool",
    }
)


class SetTypes:
    """Which local names are (approximately) sets, per function scope."""

    _MAX_PASSES = 4

    def __init__(
        self,
        scope: ast.AST,
        set_attr_names: FrozenSet[str] = frozenset(),
        imports: Optional[Dict[str, str]] = None,
    ) -> None:
        self.set_attr_names = set_attr_names
        self.imports = imports or {}
        self.set_names: Set[str] = set()
        body = getattr(scope, "body", [])
        args = getattr(scope, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if arg.annotation is not None and self._annotation_is_set(arg.annotation):
                    self.set_names.add(arg.arg)
        for _ in range(self._MAX_PASSES):
            before = len(self.set_names)
            for stmt in body:
                self._visit_stmt(stmt)
            if len(self.set_names) == before:
                break

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        from tools.xrdlint.core import _annotation_is_set

        return _annotation_is_set(annotation)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = dotted_name(stmt.targets[0])
            if target is not None:
                if self.is_set_expr(stmt.value):
                    self.set_names.add(target)
                else:
                    # Reassignment to an ordered value cleanses the name
                    # (``x = sorted(x)`` is the canonical fix).
                    self.set_names.discard(target)
        elif isinstance(stmt, ast.AnnAssign):
            target = dotted_name(stmt.target)
            if target is not None and self._annotation_is_set(stmt.annotation):
                self.set_names.add(target)
        elif isinstance(stmt, ast.AugAssign):
            pass  # ``s |= t`` keeps whatever classification ``s`` has
        elif isinstance(stmt, (ast.If, ast.While, ast.For)):
            for inner in stmt.body + stmt.orelse:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.With):
            for inner in stmt.body:
                self._visit_stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body + stmt.orelse + stmt.finalbody:
                self._visit_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._visit_stmt(inner)

    def is_set_expr(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
            if name is not None and name in self.set_names:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self.set_attr_names:
                return True
            return False
        if isinstance(node, ast.Call):
            called = resolve_call_name(node.func, self.imports)
            last = called.rsplit(".", 1)[-1] if called else None
            if last in ("set", "frozenset"):
                return True
            if last in _SET_RETURNING_METHODS and isinstance(node.func, ast.Attribute):
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) and self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(node.orelse)
        return False
