"""Fingerprinted finding baselines.

A baseline is a committed JSON file mapping finding fingerprints (see
:meth:`tools.xrdlint.core.Finding.fingerprint`) to accepted occurrence
counts.  Because fingerprints hash the rule, file, enclosing symbol and
normalised source line — not the line number — a baseline survives
unrelated edits but is invalidated the moment someone touches a flagged
line, forcing a fresh decision (fix it, or justify a pragma).

Format (version 1)::

    {
      "version": 1,
      "entries": [
        {"fingerprint": "ab12...", "count": 1,
         "rule": "XRD102", "path": "src/...", "symbol": "...",
         "snippet": "..."},
        ...
      ]
    }

Only ``fingerprint`` and ``count`` are consumed when matching; the rest is
human context so a reviewer can audit the baseline without re-running the
tool.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List

from tools.xrdlint.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint → accepted count.  Missing/empty file means no baseline."""
    if not path.is_file():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"xrdlint: baseline {path} is unreadable: {exc}") from exc
    accepted: Dict[str, int] = {}
    for entry in payload.get("entries", []):
        fingerprint = entry.get("fingerprint")
        if not isinstance(fingerprint, str):
            continue
        count = entry.get("count", 1)
        accepted[fingerprint] = accepted.get(fingerprint, 0) + int(count)
    return accepted


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Serialise ``findings`` as the new baseline; returns the entry count."""
    counts: Counter = Counter()
    context: Dict[str, Finding] = {}
    for finding in findings:
        fingerprint = finding.fingerprint()
        counts[fingerprint] += 1
        context.setdefault(fingerprint, finding)
    entries: List[Dict[str, object]] = []
    for fingerprint in sorted(counts):
        exemplar = context[fingerprint]
        entries.append(
            {
                "fingerprint": fingerprint,
                "count": counts[fingerprint],
                "rule": exemplar.rule,
                "path": exemplar.path,
                "symbol": exemplar.symbol,
                "snippet": exemplar.snippet,
            }
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
