"""Analyzer core: findings, pragmas, module contexts, and the lint driver.

The pieces every rule builds on:

* :class:`Finding` — one diagnostic, with a *fingerprint* that is stable
  across line-number drift (it hashes the rule, file, enclosing symbol and
  normalised source line — not the line number), so baselines survive
  unrelated edits;
* :class:`ModuleContext` — one parsed file: AST, source lines, the import
  alias map (``from os import urandom as u`` resolves ``u()`` to
  ``os.urandom``), per-line pragma suppressions, and an enclosing-symbol
  index;
* :class:`Rule` / :class:`ProjectRule` — the plugin surface.  A ``Rule``
  sees one module at a time; a ``ProjectRule`` sees the whole parsed tree
  at once (cross-file invariants: codec coverage, fork-safety);
* :func:`lint_paths` — the driver: discover, parse, run rules, apply
  pragmas, split against the baseline.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from tools.xrdlint.config import LintConfig

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Project",
    "Rule",
    "ProjectRule",
    "lint_paths",
    "resolve_call_name",
    "walk_scope",
]

#: ``# xrdlint: disable=XRD101,XRD202`` (line scope) or
#: ``# xrdlint: disable-file=XRD401`` (whole file).  ``all`` disables every
#: rule.  A pragma on a comment-only line also covers the following line.
_PRAGMA_RE = re.compile(
    r"#\s*xrdlint:\s*(?P<directive>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by one rule at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Innermost enclosing ``Class.method`` qualname, or ``<module>``.
    symbol: str
    #: The stripped source line — part of the fingerprint, and shown to
    #: humans so a finding is actionable without opening the file.
    snippet: str

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Two findings with the same rule, file, enclosing symbol and
        (whitespace-normalised) source line are the same finding, no matter
        how far unrelated edits move them.  Editing the flagged line itself
        invalidates the baseline entry — which is the point.
        """
        normalised = " ".join(self.snippet.split())
        raw = "|".join((self.rule, self.path, self.symbol, normalised))
        return hashlib.sha256(raw.encode()).hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


class ModuleContext:
    """One parsed source file plus everything rules repeatedly need."""

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self.imports: Dict[str, str] = _import_aliases(tree)
        self._line_disables: Dict[int, Set[str]] = {}
        self._file_disables: Set[str] = set()
        self._parse_pragmas()
        self._symbol_spans: List[Tuple[int, int, str]] = []
        self._index_symbols(tree, prefix="")

    # -- pragmas --------------------------------------------------------------

    def _parse_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",") if part.strip()}
            if match.group("directive") == "disable-file":
                self._file_disables |= rules
                continue
            self._line_disables.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # A comment-only pragma line covers the statement below it.
                self._line_disables.setdefault(lineno + 1, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        if "all" in self._file_disables or rule in self._file_disables:
            return True
        disables = self._line_disables.get(line, ())
        return "all" in disables or rule in disables

    # -- symbol index ---------------------------------------------------------

    def _index_symbols(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                self._symbol_spans.append((child.lineno, end, qualname))
                self._index_symbols(child, prefix=f"{qualname}.")
            else:
                self._index_symbols(child, prefix=prefix)

    def symbol_at(self, line: int) -> str:
        best = "<module>"
        best_span = None
        for start, end, qualname in self._symbol_spans:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qualname, span
        return best

    # -- finding construction -------------------------------------------------

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1) or 1
        col = (getattr(node, "col_offset", 0) or 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule,
            path=self.display_path,
            line=line,
            col=col,
            message=message,
            symbol=self.symbol_at(line),
            snippet=snippet,
        )

    # -- convenience ----------------------------------------------------------

    def functions(self) -> Iterator[ast.AST]:
        """Every function/method definition in the module, any nesting."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class Project:
    """The whole parsed tree, with lazily computed cross-file facts."""

    def __init__(self, modules: Sequence[ModuleContext], config: LintConfig) -> None:
        self.modules = list(modules)
        self.config = config
        self._tests_corpus: Optional[List[Tuple[str, str]]] = None

    def fork_unsafe_classes(self) -> Dict[str, Tuple[ModuleContext, int]]:
        """Classes whose body declares ``fork_safe = False``."""
        found: Dict[str, Tuple[ModuleContext, int]] = {}
        for module in self.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for stmt in node.body:
                    target = _single_assign_target(stmt)
                    if target != "fork_safe":
                        continue
                    value = stmt.value
                    if isinstance(value, ast.Constant) and value.value is False:
                        found[node.name] = (module, node.lineno)
        return found

    def set_annotated_attributes(self) -> Set[str]:
        """Attribute names annotated as sets anywhere in the tree.

        Lets the unordered-iteration rule flag ``ctx.offline_users`` when
        ``offline_users: Set[str]`` is declared on some (data)class, even
        though the iteration site has no local type information.  A name
        that is *also* annotated with a non-set type on another class is
        ambiguous and excluded — attribute matching is by name only, and a
        collision would turn every list-typed use into a false positive.
        """
        set_names: Set[str] = set()
        other_names: Set[str] = set()
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    for stmt in node.body:
                        if isinstance(stmt, ast.AnnAssign) and isinstance(
                            stmt.target, ast.Name
                        ):
                            if _annotation_is_set(stmt.annotation):
                                set_names.add(stmt.target.id)
                            else:
                                other_names.add(stmt.target.id)
        return set_names - other_names

    def tests_corpus(self) -> List[Tuple[str, str]]:
        """``(path, source)`` for every file under the configured tests dir."""
        if self._tests_corpus is None:
            corpus: List[Tuple[str, str]] = []
            tests_dir = self.config.tests_dir
            if tests_dir is not None and Path(tests_dir).is_dir():
                for path in sorted(Path(tests_dir).rglob("*.py")):
                    try:
                        corpus.append((str(path), path.read_text(encoding="utf-8")))
                    except OSError:  # unreadable test file: skip, not fatal
                        continue
            self._tests_corpus = corpus
        return self._tests_corpus


class Rule:
    """A per-module rule plugin.  Subclasses set the class attributes and
    implement :meth:`check_module`; :meth:`scope` narrows which files the
    rule sees."""

    code: str = "XRD000"
    name: str = "unnamed"
    description: str = ""

    def scope(self, config: LintConfig, path: str) -> bool:
        return True

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-tree rule plugin (cross-file invariants)."""

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk`, but does not descend into function definitions
    nested below ``root`` — those are separate scopes that get their own
    pass.  Class bodies *are* descended into (their statements execute in
    the enclosing scope)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


# -- import alias resolution ---------------------------------------------------

def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def resolve_call_name(func: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call's function expression to a dotted canonical name.

    ``urandom(8)`` after ``from os import urandom`` resolves to
    ``os.urandom``; ``random.Random()`` resolves through the module alias;
    attribute chains on unknown roots resolve to the literal dotted text so
    rules can still match ``rng.sample``-style patterns.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        root = imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))
    return None


def _single_assign_target(stmt: ast.stmt) -> Optional[str]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    return False


# -- driver --------------------------------------------------------------------

@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings whose fingerprint the baseline accepts.
    baselined: List[Finding] = field(default_factory=list)
    #: Findings that gate CI: not suppressed, not baselined.
    fresh: List[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline pragmas.
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.fresh and not self.parse_errors


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_modules(
    paths: Sequence[Path],
) -> Tuple[List[ModuleContext], List[Finding]]:
    modules: List[ModuleContext] = []
    errors: List[Finding] = []
    for file_path in _discover(paths):
        display = _display_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError) as exc:
            errors.append(
                Finding(
                    rule="XRD001",
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    col=1,
                    message=f"file cannot be analysed: {exc}",
                    symbol="<module>",
                    snippet="",
                )
            )
            continue
        modules.append(ModuleContext(file_path, display, source, tree))
    return modules, errors


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[Dict[str, int]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every registered rule over ``paths`` and split the findings.

    ``baseline`` maps fingerprints to accepted occurrence counts (see
    :mod:`tools.xrdlint.baseline`); ``select`` restricts to rules whose
    code starts with any given prefix (``["XRD1"]`` runs the determinism
    family only).
    """
    from tools.xrdlint.rules import all_rules

    config = config or LintConfig()
    modules, parse_errors = parse_modules(paths)
    project = Project(modules, config)

    rules = all_rules()
    if select:
        rules = [rule for rule in rules if any(rule.code.startswith(s) for s in select)]

    raw: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))
        else:
            for module in modules:
                if rule.scope(config, module.display_path):
                    raw.extend(rule.check_module(module, config))

    by_path = {module.display_path: module for module in modules}
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw, key=Finding.sort_key):
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.rule, finding.line):
            suppressed += 1
            continue
        kept.append(finding)

    remaining = dict(baseline or {})
    baselined: List[Finding] = []
    fresh: List[Finding] = []
    for finding in kept:
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            baselined.append(finding)
        else:
            fresh.append(finding)

    return LintResult(
        findings=kept,
        baselined=baselined,
        fresh=fresh,
        suppressed=suppressed,
        files_checked=len(modules),
        parse_errors=parse_errors,
    )
