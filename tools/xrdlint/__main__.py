"""``python -m tools.xrdlint`` entry point."""

import sys

from tools.xrdlint.cli import main

sys.exit(main())
