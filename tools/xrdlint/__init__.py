"""xrdlint — the repo's invariant-enforcing static analyzer (DESIGN.md §12).

Every aggressive refactor in this repo is underwritten by the engine parity
matrix: all backends × schedulers × transports × populations × kernels must
produce bit-identical ``RoundReport`` bytes under a fixed seed, and blame
only works because replicas agree byte-for-byte on what was sent.  Those
invariants are enforced *dynamically* by the test suite; xrdlint is the
static half of the safety net — it walks the AST of the protocol packages
and flags code that could break an invariant on a path the matrix does not
exercise.

Rule families (one module per family under :mod:`tools.xrdlint.rules`):

=======  ==================================================================
XRD1xx   determinism — no unseeded entropy or wall-clock reads in protocol
         code; no unordered (set) iteration feeding ordering-sensitive flows
XRD2xx   secret hygiene — secret scalars and derived keys never reach
         ``repr``/``str``/f-strings/logs/exception text; MAC tags are
         compared in constant time; dataclass secret fields set
         ``repr=False``
XRD3xx   fork safety — components declaring ``fork_safe = False`` never
         appear in the fork-based worker modules
XRD4xx   codec exhaustiveness — every envelope kind and frame opcode has an
         encoder, a decoder, and a round-trip test
XRD5xx   native-loader contract — the optional C-extension loaders never
         raise at import time and always keep a pure-Python fallback path
=======  ==================================================================

Findings can be suppressed inline (``# xrdlint: disable=XRD102`` on the
offending line or the comment line above it, with a justification) or
accepted into the fingerprinted baseline
(``python -m tools.xrdlint --write-baseline``); CI fails on any finding
that is neither.  See ``python -m tools.xrdlint --list-rules``.
"""

from tools.xrdlint.core import Finding, LintResult, lint_paths

__version__ = "1.0.0"

__all__ = ["Finding", "LintResult", "lint_paths", "__version__"]
