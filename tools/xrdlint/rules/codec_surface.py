"""XRD4xx — codec exhaustiveness: every declared wire constant is wired up.

Blame only convicts because replicas agree byte-for-byte on what was sent,
and the parity matrix only proves the codecs lossless for the envelope
kinds it actually round-trips.  A kind (or frame opcode) added to the
transport constants without an encoder branch, a decoder branch, *and* a
round-trip test is a silent hole: the in-proc transport hands the payload
object through unchanged, so everything passes until the first wire
transport meets the new kind in production.

The rule cross-references three surfaces, all found by shape (no imports):

* the constants module — ``ENVELOPE_KINDS = (A, B, ...)`` / ``FRAME_TYPES``;
* the codec — the modules defining ``encode_payload``/``decode_payload``
  (and, for frames, any *other* module that handles each opcode);
* the tests directory — each kind/opcode must appear in a test file that
  also exercises both directions (mentions encode and decode).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.xrdlint.core import Finding, ModuleContext, Project, ProjectRule
from tools.xrdlint.rules import register


def _tuple_constant_names(module: ModuleContext, target_name: str) -> List[str]:
    """The Name elements of ``TARGET = (A, B, ...)`` at module level."""
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == target_name):
            continue
        if isinstance(stmt.value, (ast.Tuple, ast.List)):
            return [
                element.id
                for element in stmt.value.elts
                if isinstance(element, ast.Name)
            ]
    return []


def _module_constants(module: ModuleContext) -> Dict[str, Tuple[object, int]]:
    """Module-level ``NAME = <literal>`` assignments → (value, lineno)."""
    constants: Dict[str, Tuple[object, int]] = {}
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
            constants[target.id] = (stmt.value.value, stmt.lineno)
    return constants


def _referenced_names(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr mentioned under ``node``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _find_function(module: ModuleContext, name: str) -> Optional[ast.AST]:
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
            return stmt
    return None


@register
class CodecExhaustivenessRule(ProjectRule):
    code = "XRD401"
    name = "codec-kind-unhandled"
    description = (
        "Every envelope kind in ENVELOPE_KINDS needs a branch in both "
        "encode_payload and decode_payload, and every frame opcode in "
        "FRAME_TYPES must be handled outside its defining module — an "
        "unhandled constant is a wire hole the in-proc transport hides."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_envelope_kinds(project))
        findings.extend(self._check_frame_types(project))
        return findings

    # -- envelope kinds vs encode_payload/decode_payload ----------------------

    def _check_envelope_kinds(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            kinds = _tuple_constant_names(module, "ENVELOPE_KINDS")
            if not kinds:
                continue
            constants = _module_constants(module)
            encoder, decoder = self._payload_codecs(project)
            for kind in kinds:
                _, lineno = constants.get(kind, (None, 1))
                anchor = ast.Constant(value=None, lineno=lineno, col_offset=0)
                if encoder is None or kind not in _referenced_names(encoder):
                    findings.append(
                        module.finding(
                            self.code,
                            anchor,
                            f"envelope kind {kind} has no branch in "
                            "encode_payload",
                        )
                    )
                if decoder is None or kind not in _referenced_names(decoder):
                    findings.append(
                        module.finding(
                            self.code,
                            anchor,
                            f"envelope kind {kind} has no branch in "
                            "decode_payload",
                        )
                    )
        return findings

    @staticmethod
    def _payload_codecs(project: Project) -> Tuple[Optional[ast.AST], Optional[ast.AST]]:
        encoder = decoder = None
        for module in project.modules:
            encoder = encoder or _find_function(module, "encode_payload")
            decoder = decoder or _find_function(module, "decode_payload")
        return encoder, decoder

    # -- frame opcodes handled outside the defining module --------------------

    def _check_frame_types(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            frame_names = _tuple_constant_names(module, "FRAME_TYPES")
            if not frame_names:
                continue
            constants = _module_constants(module)
            external: Set[str] = set()
            for other in project.modules:
                if other is module:
                    continue
                external |= _referenced_names(other.tree)
            for frame in frame_names:
                _, lineno = constants.get(frame, (None, 1))
                if frame not in external:
                    anchor = ast.Constant(value=None, lineno=lineno, col_offset=0)
                    findings.append(
                        module.finding(
                            self.code,
                            anchor,
                            f"frame opcode {frame} is declared but never "
                            "handled outside its defining module",
                        )
                    )
        return findings


@register
class CodecRoundTripTestRule(ProjectRule):
    code = "XRD402"
    name = "codec-kind-untested"
    description = (
        "Every envelope kind and frame opcode must appear in at least one "
        "test file that exercises both encode and decode — codecs without a "
        "round-trip test are exactly where the parity matrix goes blind."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        if project.config.tests_dir is None:
            return ()
        corpus = project.tests_corpus()
        if not corpus:
            return ()
        round_trip_sources = [
            source for _, source in corpus if "encode" in source and "decode" in source
        ]
        findings: List[Finding] = []
        for module in project.modules:
            for tuple_name, what in (
                ("ENVELOPE_KINDS", "envelope kind"),
                ("FRAME_TYPES", "frame opcode"),
            ):
                names = _tuple_constant_names(module, tuple_name)
                if not names:
                    continue
                constants = _module_constants(module)
                for name in names:
                    value, lineno = constants.get(name, (None, 1))
                    needles = [name]
                    if isinstance(value, str):
                        needles.append(value)
                    covered = any(
                        any(needle in source for needle in needles)
                        for source in round_trip_sources
                    )
                    if not covered:
                        anchor = ast.Constant(value=None, lineno=lineno, col_offset=0)
                        findings.append(
                            module.finding(
                                self.code,
                                anchor,
                                f"{what} {name} has no round-trip test under "
                                f"{project.config.tests_dir}",
                            )
                        )
        return findings
