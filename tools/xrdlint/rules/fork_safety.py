"""XRD3xx — fork safety: fork-unsafe components stay out of worker pools.

The multiprocess mix backend and the population build-worker pool run
``os.fork``-based children that inherit the parent's heap copy-on-write.
A transport (or any component) declaring ``fork_safe = False`` owns state
that does not survive that inheritance — an event loop, live sockets, a
daemon thread — so *referencing* one inside the fork-context modules is a
bug even when the tests happen not to cross it: the dynamic guard in
``coordinator/network.py`` only fires on configurations the suite runs.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.xrdlint.core import Finding, Project, ProjectRule
from tools.xrdlint.rules import register


@register
class ForkUnsafeCaptureRule(ProjectRule):
    code = "XRD301"
    name = "fork-unsafe-in-fork-context"
    description = (
        "A class declaring fork_safe = False must not be imported, "
        "referenced, or constructed inside the fork-based worker modules "
        "(engine/multiprocess.py, population/streaming.py): forked children "
        "inherit its threads/sockets in a broken state. Ship wire bytes "
        "across the pipe and construct transports post-fork instead."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        unsafe = project.fork_unsafe_classes()
        if not unsafe:
            return ()
        findings: List[Finding] = []
        for module in project.modules:
            if not project.config.in_fork_context(module.display_path):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom):
                    for item in node.names:
                        if item.name in unsafe:
                            findings.append(
                                module.finding(
                                    self.code,
                                    node,
                                    f"fork-unsafe class {item.name!r} imported "
                                    "into a fork-context module",
                                )
                            )
                elif isinstance(node, ast.Name) and node.id in unsafe:
                    owner, _ = unsafe[node.id]
                    findings.append(
                        module.finding(
                            self.code,
                            node,
                            f"fork-unsafe class {node.id!r} (declared "
                            f"fork_safe=False in {owner.display_path}) "
                            "referenced in a fork-context module",
                        )
                    )
                elif isinstance(node, ast.Attribute) and node.attr in unsafe:
                    findings.append(
                        module.finding(
                            self.code,
                            node,
                            f"fork-unsafe class {node.attr!r} referenced in a "
                            "fork-context module",
                        )
                    )
        return findings
