"""Rule plugin registry.

A rule module defines :class:`~tools.xrdlint.core.Rule` subclasses and
registers instances with :func:`register`.  Importing this package imports
every built-in rule module, so ``all_rules()`` is the complete set; an
out-of-tree rule module only needs to import and call :func:`register`
before the driver runs.
"""

from __future__ import annotations

from typing import List, Type

from tools.xrdlint.core import Rule

__all__ = ["register", "all_rules"]

_RULES: List[Rule] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule plugin."""
    instance = rule_cls()
    if any(existing.code == instance.code for existing in _RULES):
        raise ValueError(f"duplicate rule code {instance.code}")
    _RULES.append(instance)
    return rule_cls


def all_rules() -> List[Rule]:
    return sorted(_RULES, key=lambda rule: rule.code)


# Built-in rule families (import order is irrelevant; codes sort the output).
from tools.xrdlint.rules import (  # noqa: E402  (registration imports)
    codec_surface,  # noqa: F401
    determinism,  # noqa: F401
    fork_safety,  # noqa: F401
    native_loader,  # noqa: F401
    secret_hygiene,  # noqa: F401
)
