"""XRD1xx — determinism: protocol code must be a pure function of its seed.

The parity matrix proves every backend/scheduler/transport/population/kernel
combination bit-identical under a fixed seed.  That proof is only as good
as the code's discipline: one ``os.urandom`` on an unexercised path, one
wall-clock read folded into a report, one iteration over a set of strings
(whose order changes with ``PYTHONHASHSEED``) feeding a wire encoding — and
replicas diverge silently.  These rules make that discipline static.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.xrdlint.config import LintConfig
from tools.xrdlint.core import (
    Finding,
    ModuleContext,
    Project,
    ProjectRule,
    Rule,
    resolve_call_name,
    walk_scope,
)
from tools.xrdlint.dataflow import SAFE_SET_CONSUMERS, SetTypes, dotted_name
from tools.xrdlint.rules import register

#: Entropy sources with no seed: any of these in protocol code makes a
#: "seeded" round unreproducible.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
        "secrets.SystemRandom",
        "random.SystemRandom",
        "numpy.random.default_rng",
    }
)

#: Module-level functions of :mod:`random` draw from the shared, unseeded
#: global instance.
GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randrange",
        "random.randint",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.randbytes",
        "random.getrandbits",
        "random.uniform",
    }
)

#: Wall-clock and monotonic-clock reads: machine state, not protocol state.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Iteration contexts that expose a set's (undefined) element order.
_ORDER_EXPOSING_CALLS = frozenset(
    {"list", "tuple", "iter", "enumerate", "map", "filter", "reversed", "next"}
)
_ORDER_EXPOSING_METHODS = frozenset({"join", "extend", "sample", "shuffle", "choice"})


@register
class UnseededEntropyRule(Rule):
    code = "XRD101"
    name = "unseeded-entropy"
    description = (
        "Protocol code must not draw from OS entropy or the global random "
        "instance: os.urandom, secrets.*, uuid4, argless random.Random() and "
        "random-module functions all make a seeded round unreproducible. "
        "Draw from an explicitly seeded rng instead (allowlisted: key "
        "generation in crypto/keys.py, benchmarks)."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_protocol_scope(path) and not config.entropy_allowlisted(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = resolve_call_name(node.func, module.imports)
            if called is None:
                continue
            if called in ENTROPY_CALLS or called in GLOBAL_RANDOM_CALLS:
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        f"unseeded entropy: {called}() in protocol code — "
                        "derive from an explicitly seeded rng so rounds stay "
                        "reproducible",
                    )
                )
            elif called == "random.Random" and not node.args and not node.keywords:
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        "random.Random() with no seed draws from OS entropy — "
                        "pass an explicit seed or derive from the deployment "
                        "seed",
                    )
                )
        return findings


@register
class WallClockRule(Rule):
    code = "XRD102"
    name = "wall-clock-read"
    description = (
        "Protocol code must not read wall or monotonic clocks: timings are "
        "machine state, and anything they influence diverges across "
        "replicas. Timing for diagnostics is fine when it provably cannot "
        "reach canonical bytes — suppress those sites with a justifying "
        "pragma."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_protocol_scope(path) and not config.entropy_allowlisted(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            called = resolve_call_name(node.func, module.imports)
            if called in CLOCK_CALLS:
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        f"wall-clock read: {called}() in protocol code — "
                        "clock values must never influence round bytes",
                    )
                )
        return findings


@register
class UnorderedIterationRule(ProjectRule):
    code = "XRD103"
    name = "unordered-iteration"
    description = (
        "Iterating a set exposes an order that is undefined (and, for "
        "strings, changes with PYTHONHASHSEED): in protocol code that order "
        "can reach wire encodings, RNG draws and shuffles. Wrap the "
        "iteration in sorted(...) to pin it."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        set_attrs = frozenset(project.set_annotated_attributes())
        for module in project.modules:
            if not project.config.in_protocol_scope(module.display_path):
                continue
            scopes = [module.tree] + [func for func in module.functions()]
            for scope in scopes:
                types = SetTypes(scope, set_attr_names=set_attrs, imports=module.imports)
                findings.extend(self._check_scope(module, scope, types))
        return findings

    def _check_scope(
        self, module: ModuleContext, scope: ast.AST, types: SetTypes
    ) -> Iterable[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                module.finding(
                    self.code,
                    node,
                    f"{what} iterates a set in undefined order — wrap in "
                    "sorted(...) so downstream bytes/draws cannot depend on "
                    "hash order",
                )
            )

        for node in walk_scope(scope):
            if isinstance(node, ast.For) and types.is_set_expr(node.iter):
                flag(node.iter, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if types.is_set_expr(gen.iter):
                        flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                called = dotted_name(node.func)
                last = called.rsplit(".", 1)[-1] if called else None
                if last in SAFE_SET_CONSUMERS:
                    continue
                if last in _ORDER_EXPOSING_CALLS:
                    if node.args and types.is_set_expr(node.args[0]):
                        flag(node.args[0], f"{last}()")
                elif last in _ORDER_EXPOSING_METHODS:
                    if any(types.is_set_expr(arg) for arg in node.args):
                        flag(node, f".{last}()")
                elif last == "pop" and isinstance(node.func, ast.Attribute):
                    if types.is_set_expr(node.func.value) and not node.args:
                        flag(node, "set.pop()")
            elif isinstance(node, ast.Starred) and types.is_set_expr(node.value):
                flag(node, "star-unpacking")
        return findings
