"""XRD5xx — native-loader contract: optional acceleration never breaks import.

The repo's tier-1 promise is that it installs and passes on a machine with
no C compiler, no cffi, and no prebuilt ``_xrdkernels``.  That only holds
if the loader modules (``repro/native/__init__.py``,
``repro/crypto/kernels.py``) keep two disciplines:

* importing them can never raise — no module-level ``raise``, and no
  module-level import of ``cffi``/``_xrdkernels`` outside a ``try``;
* every wrapper that invokes the extension (``lib.xrd_*``) has an explicit
  ``return None`` fallback, because callers treat ``None`` as "run the
  pure-Python reference path".
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from tools.xrdlint.config import LintConfig
from tools.xrdlint.core import Finding, ModuleContext, Rule
from tools.xrdlint.rules import register

_OPTIONAL_IMPORTS = ("cffi", "_xrdkernels")


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements that execute at import time, outside any try/except.

    Recurses through module-level ``if``/``for``/``while``/``with`` bodies
    (those still run at import) but not into functions, classes, or ``try``
    blocks (a ``try`` is exactly the guard the contract asks for).
    """
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Try)):
            continue
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []) or [])


def _is_optional_import(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Import):
        return any(
            any(part in alias.name.split(".") for part in _OPTIONAL_IMPORTS)
            for alias in stmt.names
        )
    if isinstance(stmt, ast.ImportFrom):
        module_parts = (stmt.module or "").split(".")
        if any(part in module_parts for part in _OPTIONAL_IMPORTS):
            return True
        return any(alias.name in _OPTIONAL_IMPORTS for alias in stmt.names)
    return False


@register
class LoaderImportSafetyRule(Rule):
    code = "XRD501"
    name = "native-loader-raises-at-import"
    description = (
        "Native-loader modules must be importable everywhere: no "
        "module-level raise, and no module-level import of cffi or the "
        "_xrdkernels extension outside a try block. The loader answers "
        "'is acceleration available?' with None, never with an exception."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_native_loader_scope(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for stmt in _module_level_statements(module.tree):
            if isinstance(stmt, ast.Raise):
                findings.append(
                    module.finding(
                        self.code,
                        stmt,
                        "module-level raise in a native-loader module — "
                        "importing the loader must never fail",
                    )
                )
            elif _is_optional_import(stmt):
                findings.append(
                    module.finding(
                        self.code,
                        stmt,
                        "unguarded module-level import of an optional native "
                        "dependency — wrap in try/except so machines without "
                        "the extension still import",
                    )
                )
        return findings


@register
class WrapperFallbackRule(Rule):
    code = "XRD502"
    name = "native-wrapper-missing-fallback"
    description = (
        "A wrapper that invokes the extension (lib.xrd_*) must contain an "
        "explicit 'return None' fallback: callers interpret None as 'run "
        "the pure-Python reference path', and a wrapper without one can "
        "only fail by raising."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_native_loader_scope(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in module.functions():
            if not self._invokes_extension(func):
                continue
            if self._has_none_fallback(func):
                continue
            findings.append(
                module.finding(
                    self.code,
                    func,
                    f"{func.name}() invokes the native extension but has no "
                    "'return None' fallback for when it is unavailable or "
                    "declines the input",
                )
            )
        return findings

    @staticmethod
    def _invokes_extension(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "lib"
            ):
                return True
        return False

    @staticmethod
    def _has_none_fallback(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and node.value.value is None
            ):
                return True
        return False
