"""XRD2xx — secret hygiene: keys and scalars never leak through text.

The AHS chains' security rests on secret scalars (blinding/mixing/inner
secrets, users' ephemerals) and symmetric keys derived from them (layer
keys, loopback keys, AEAD one-time keys).  None of those values may reach
``repr``/``str``/f-strings/log lines/exception messages — error paths are
exactly what an operator pastes into a bug report — and MAC tags must be
compared in constant time, not with ``==``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from tools.xrdlint.config import LintConfig
from tools.xrdlint.core import Finding, ModuleContext, Rule, resolve_call_name, walk_scope
from tools.xrdlint.dataflow import FunctionTaint, TaintSpec, dotted_name
from tools.xrdlint.rules import register

#: Calls that *produce* secret values: the group's scalar sampler and every
#: key-derivation function in :mod:`repro.crypto.kdf`.
SECRET_PRODUCERS = frozenset(
    {
        "random_scalar",
        "derive_key",
        "shared_key_from_element",
        "loopback_key",
        "conversation_key",
        "hkdf_extract",
        "hkdf_expand",
        "identity_secret_bytes",
        "poly1305_key",
    }
)

#: Names that carry secrets by convention wherever they appear.
SECRET_NAME_PATTERNS = (
    r"(^|_)secret(s|_bytes)?$",
    r"(^|_)layer_keys?$",
    r"(^|_)loopback_keys?$",
    r"(^|_)inner_keys?$",
    r"^otk$",
)

#: Calls whose result is safe to show even when fed a secret: sizes, types,
#: and the public half of a key pair.
SECRET_SANITIZERS = frozenset(
    {
        "len",
        "type",
        "id",
        "bool",
        "isinstance",
        "base_mult",
        "fixed_base_mult",
        "encode",  # group.encode(public) — publics, not secrets
        "hex_digest",
    }
)

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
_STRINGIFIERS = frozenset({"str", "repr", "format", "ascii", "print"})

_SECRET_FIELD_RE = re.compile(r"(^|_)(secret|secrets|secret_bytes|private_key)$")
_TAG_NAME_RE = re.compile(r"(^|_)(tag|mac)s?$")


def _is_constantish(node: ast.AST) -> bool:
    """Literals, ALL_CAPS constants, None, and len() results: not secrets."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id.isupper() or node.id.strip("_").isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    if isinstance(node, ast.Call):
        called = dotted_name(node.func)
        return called is not None and called.rsplit(".", 1)[-1] == "len"
    return False


@register
class SecretToStringRule(Rule):
    code = "XRD201"
    name = "secret-reaches-text"
    description = (
        "A value tainted by a secret producer (random_scalar, layer-key/"
        "AEAD-key derivation) or carried in a secret-named variable must not "
        "reach repr()/str()/f-strings/logging calls/exception messages. "
        "Report lengths or public keys instead."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_protocol_scope(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        spec = TaintSpec(
            producers=SECRET_PRODUCERS,
            name_patterns=SECRET_NAME_PATTERNS,
            sanitizers=SECRET_SANITIZERS,
        )
        findings: List[Finding] = []
        for func in module.functions():
            taint = FunctionTaint(func, spec, module.imports)
            findings.extend(self._check_sinks(module, func, taint))
        return findings

    def _check_sinks(
        self, module: ModuleContext, func: ast.AST, taint: FunctionTaint
    ) -> Iterable[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, sink: str) -> None:
            findings.append(
                module.finding(
                    self.code,
                    node,
                    f"secret-tainted value reaches {sink} — log a length or "
                    "public key, never the secret",
                )
            )

        for node in walk_scope(func):
            if isinstance(node, ast.FormattedValue) and taint.is_tainted(node.value):
                flag(node, "an f-string")
            elif isinstance(node, ast.Call):
                called = resolve_call_name(node.func, module.imports)
                last = called.rsplit(".", 1)[-1] if called else None
                args_tainted = any(taint.is_tainted(arg) for arg in node.args) or any(
                    taint.is_tainted(kw.value) for kw in node.keywords
                )
                if not args_tainted:
                    continue
                if last in _STRINGIFIERS:
                    flag(node, f"{last}()")
                elif last in _LOG_METHODS and isinstance(node.func, ast.Attribute):
                    root = dotted_name(node.func.value) or ""
                    if "log" in root.lower() or root in ("self",):
                        flag(node, f"logging call .{last}()")
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                if isinstance(exc, ast.Call) and any(
                    taint.is_tainted(arg) for arg in exc.args
                ):
                    flag(node, "an exception message")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if (
                    isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)
                    and taint.is_tainted(node.right)
                ):
                    flag(node, "%-formatting")
        return findings


@register
class NonConstantTimeCompareRule(Rule):
    code = "XRD202"
    name = "tag-compare-not-constant-time"
    description = (
        "MAC/tag comparisons with == / != short-circuit on the first "
        "differing byte, leaking the match length through timing. Use "
        "hmac.compare_digest (or the repo's poly1305_verify) instead. "
        "Comparisons against literals, ALL_CAPS frame-tag constants and "
        "len() results are exempt."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_protocol_scope(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if len(node.ops) != 1 or not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                continue
            left, right = node.left, node.comparators[0]
            if self._tag_side(left) is None and self._tag_side(right) is None:
                continue
            if _is_constantish(left) or _is_constantish(right):
                continue
            tag_name = self._tag_side(left) or self._tag_side(right)
            findings.append(
                module.finding(
                    self.code,
                    node,
                    f"{tag_name!r} compared with ==/!= — use a constant-time "
                    "compare (hmac.compare_digest / poly1305_verify)",
                )
            )
        return findings

    @staticmethod
    def _tag_side(node: ast.AST) -> Optional[str]:
        name = dotted_name(node)
        if name is None:
            return None
        last = name.rsplit(".", 1)[-1]
        if last.isupper():
            return None
        return name if _TAG_NAME_RE.search(last) else None


@register
class SecretDataclassReprRule(Rule):
    code = "XRD203"
    name = "secret-field-in-repr"
    description = (
        "A dataclass auto-generates __repr__ from its fields: a field named "
        "like a secret must opt out with field(repr=False) (or the class "
        "with @dataclass(repr=False)), or every debugger, log line and "
        "pytest assertion diff prints the key material."
    )

    def scope(self, config: LintConfig, path: str) -> bool:
        return config.in_protocol_scope(path)

    def check_module(self, module: ModuleContext, config: LintConfig) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_repr_dataclass(node, module):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
                ):
                    continue
                if not _SECRET_FIELD_RE.search(stmt.target.id):
                    continue
                if self._field_opts_out(stmt.value):
                    continue
                findings.append(
                    module.finding(
                        self.code,
                        stmt,
                        f"dataclass field {stmt.target.id!r} is included in the "
                        "auto-generated __repr__ — declare it with "
                        "field(repr=False)",
                    )
                )
        return findings

    @staticmethod
    def _is_repr_dataclass(node: ast.ClassDef, module: ModuleContext) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            called = resolve_call_name(target, module.imports) or ""
            if called.rsplit(".", 1)[-1] != "dataclass":
                continue
            if isinstance(decorator, ast.Call):
                for kw in decorator.keywords:
                    if (
                        kw.arg == "repr"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    ):
                        return False
            return True
        return False

    @staticmethod
    def _field_opts_out(value: Optional[ast.AST]) -> bool:
        if not isinstance(value, ast.Call):
            return False
        called = dotted_name(value.func) or ""
        if called.rsplit(".", 1)[-1] != "field":
            return False
        for kw in value.keywords:
            if (
                kw.arg == "repr"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return True
        return False
