"""Scope configuration: which files each rule family applies to.

The defaults encode this repository's layout.  Tests (and any future tree
reorganisation) construct a :class:`LintConfig` explicitly; every scope is
a tuple of :mod:`fnmatch` globs matched against the POSIX form of the
file's display path, so ``*/repro/crypto/*`` matches
``src/repro/crypto/field.py`` however the tree is mounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional, Sequence, Tuple

__all__ = ["LintConfig"]

#: Packages whose code is "protocol code": anything here can influence wire
#: bytes, RNG draws, or the parity matrix.  The modelling/analysis packages
#: (``analysis``, ``baselines``, ``simulation``) and the benchmark harness
#: are deliberately out of scope — they report on rounds, they do not
#: produce round bytes.
_PROTOCOL = (
    "*/repro/client/*",
    "*/repro/coordinator/*",
    "*/repro/crypto/*",
    "*/repro/engine/*",
    "*/repro/faults/*",
    "*/repro/mailbox/*",
    "*/repro/mixnet/*",
    "*/repro/population/*",
    "*/repro/runner/*",
    "*/repro/transport/*",
    "*/repro/registry.py",
    "*/repro/constants.py",
)

#: Places allowed to reach for OS entropy: long-term key generation is
#: *supposed* to use the CSPRNG (the PKI stand-in), and the native build
#: script is not protocol code.
_ENTROPY_ALLOWLIST = (
    "*/repro/crypto/keys.py",
    "*/repro/native/_build.py",
    "*/benchmarks/*",
    "*/memutil.py",
)

#: Modules whose function bodies execute on both sides of a fork: the mix
#: worker pool and the population build-worker pool.  Anything declaring
#: ``fork_safe = False`` must not be constructed or captured here.
_FORK_CONTEXTS = (
    "*/repro/engine/multiprocess.py",
    "*/repro/population/streaming.py",
)

#: The native-kernel loader surface held to the never-raise-at-import /
#: always-offer-a-fallback contract (DESIGN.md §11).
_NATIVE_LOADERS = (
    "*/repro/native/__init__.py",
    "*/repro/crypto/kernels.py",
)


def _matches(path: str, globs: Sequence[str]) -> bool:
    return any(fnmatch(path, glob) for glob in globs)


@dataclass(frozen=True)
class LintConfig:
    """Every knob the rules consult, with repo-layout defaults."""

    protocol_globs: Tuple[str, ...] = _PROTOCOL
    entropy_allowlist: Tuple[str, ...] = _ENTROPY_ALLOWLIST
    fork_context_globs: Tuple[str, ...] = _FORK_CONTEXTS
    native_loader_globs: Tuple[str, ...] = _NATIVE_LOADERS
    #: Where the codec-exhaustiveness rule looks for round-trip tests; None
    #: disables the test cross-reference (XRD402).
    tests_dir: Optional[Path] = field(default_factory=lambda: Path("tests"))

    # -- scope predicates (rules call these, never the globs directly) -------

    def in_protocol_scope(self, path: str) -> bool:
        return _matches(path, self.protocol_globs)

    def entropy_allowlisted(self, path: str) -> bool:
        return _matches(path, self.entropy_allowlist)

    def in_fork_context(self, path: str) -> bool:
        return _matches(path, self.fork_context_globs)

    def in_native_loader_scope(self, path: str) -> bool:
        return _matches(path, self.native_loader_globs)
