"""Figure 2: per-user bandwidth per round vs. number of servers.

Paper reference points: XRD ≈ 54 KB upload at 100 servers and ≈ 238 KB at
2000 servers (≈ 40 Kbps with one-minute rounds); Pung/XPIR ≈ 5.8 MB at 1M
users and ≈ 11 MB at 4M; Stadium and Atom are under a kilobyte.  Our wire
format is leaner than the prototype's so XRD's absolute bytes come out lower,
but the √(2N) growth and the ordering between systems are reproduced.
"""

from repro.analysis import figures, render_figure, render_table

from benchmarks.conftest import save_result


def test_fig2_user_bandwidth(benchmark):
    figure = benchmark(figures.figure2)
    save_result("fig2_user_bandwidth", render_figure(figure))
    xrd = figure["series"]["XRD"]
    pung_1m = figure["series"]["Pung (XPIR; 1M users)"]
    pung_4m = figure["series"]["Pung (XPIR; 4M users)"]
    stadium = figure["series"]["Stadium"]
    # XRD grows with the number of servers; the others are flat.
    assert xrd[-1] > 2 * xrd[0]
    assert pung_1m[0] == pung_1m[-1]
    # Ordering: Pung XPIR >> XRD > Stadium, and 4M users costs Pung more than 1M.
    assert all(p > x for p, x in zip(pung_1m, xrd))
    assert all(p4 > p1 for p4, p1 in zip(pung_4m, pung_1m))
    assert all(x > s for x, s in zip(xrd, stadium))


def test_user_cost_table(benchmark):
    """§8.1 user-cost summary (upload KB and sustained Kbps)."""
    table = benchmark(figures.user_cost_table)
    rows = [
        [row["servers"], row["ell"], row["chain_length"], row["upload_kb"],
         row["download_kb"], row["kbps_1min_rounds"]]
        for row in table["rows"]
    ]
    text = table["title"] + "\n" + render_table(
        ["servers", "ell", "k", "upload KB", "download KB", "Kbps (1-min rounds)"], rows
    )
    save_result("user_cost_table", text)
    by_servers = {row["servers"]: row for row in table["rows"]}
    # Paper: ~1 Kbps at 100 servers scaling to ~40 Kbps at 2000 (ours ~0.5x).
    assert by_servers[100]["kbps_1min_rounds"] < 10
    assert by_servers[2000]["kbps_1min_rounds"] < 60
    assert by_servers[2000]["upload_kb"] > 3 * by_servers[100]["upload_kb"]
