#!/usr/bin/env python3
"""Benchmark-regression gate: diff a fresh pytest-benchmark JSON run against
the committed baseline and fail on regression.

Raw wall-clock comparisons across CI runners are meaningless — a slow runner
would fail every benchmark, a fast one would hide real regressions.  The
gate therefore *normalises by machine speed*: it computes each benchmark's
fresh/baseline mean ratio, takes the median ratio as the machine-speed
calibration factor, and flags a benchmark only when its own ratio exceeds
the median by more than the tolerance band.  A genuine regression slows one
benchmark relative to the others; a slow machine slows them all and leaves
every normalised ratio near 1.

Exit status: 0 when every shared benchmark is inside the band, 1 on any
regression or when a baseline benchmark is missing from the fresh run (a
silently-dropped benchmark must not pass the gate).  New benchmarks absent
from the baseline only warn — add them with ``--write-baseline``.

Usage::

    python -m pytest benchmarks/... --benchmark-json=benchmark-results.json
    python benchmarks/compare_to_baseline.py \
        --fresh benchmark-results.json \
        --baseline benchmarks/baselines/baseline.json \
        --tolerance 0.5

``--write-baseline`` rewrites the baseline from the fresh run (for
intentional performance changes; commit the result).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
from typing import Dict

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baselines" / "baseline.json"

#: Allowed normalised slowdown (0.5 → a benchmark may run up to 50% slower
#: than the machine-speed-corrected baseline before the gate fails).  Wide
#: on purpose: shared CI runners are noisy, and the gate should only catch
#: real regressions, not scheduling jitter.
DEFAULT_TOLERANCE = 0.5

#: Below this many shared benchmarks the median is not a meaningful
#: calibration factor; fall back to raw ratios with a wider band.
MIN_BENCHMARKS_FOR_CALIBRATION = 3
FALLBACK_TOLERANCE = 1.0


def load_means(path: pathlib.Path) -> Dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    means = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and mean:
            means[name] = float(mean)
    return means


def _active_kernel_name() -> str:
    """The crypto-kernel tier the recording run resolved (provenance).

    Means measured under different tiers are not comparable — the native
    kernels shift the hot benchmarks several-fold — so the baseline records
    which tier produced it and the gate warns on a mismatch.
    """
    try:
        sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
        from repro.crypto import kernels

        return kernels.active_kernel().value
    except Exception:
        return "unknown"


def write_baseline(fresh_path: pathlib.Path, baseline_path: pathlib.Path) -> None:
    """Store a trimmed baseline: per-benchmark means plus provenance."""
    data = json.loads(fresh_path.read_text())
    kernel = _active_kernel_name()
    trimmed = {
        "comment": (
            "Benchmark baseline for compare_to_baseline.py. Regenerate with "
            "--write-baseline after intentional performance changes."
        ),
        "crypto_kernel": kernel,
        "machine_info": data.get("machine_info", {}),
        "benchmarks": [
            {
                "fullname": bench.get("fullname") or bench.get("name"),
                "kernel": kernel,
                "stats": {"mean": bench["stats"]["mean"]},
            }
            for bench in data.get("benchmarks", [])
            if bench.get("stats", {}).get("mean")
        ],
    }
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps(trimmed, indent=2, sort_keys=True) + "\n")
    print(f"wrote baseline with {len(trimmed['benchmarks'])} benchmarks to {baseline_path}")


def compare(
    fresh: Dict[str, float], baseline: Dict[str, float], tolerance: float
) -> int:
    shared = sorted(set(fresh) & set(baseline))
    missing = sorted(set(baseline) - set(fresh))
    new = sorted(set(fresh) - set(baseline))

    failures = []
    if missing:
        for name in missing:
            failures.append(f"MISSING  {name}: in the baseline but not in the fresh run")
    for name in new:
        print(f"NEW      {name}: not in the baseline (add with --write-baseline)")

    if not shared:
        print("no shared benchmarks between fresh run and baseline")
        return 1

    ratios = {name: fresh[name] / baseline[name] for name in shared}
    if len(shared) >= MIN_BENCHMARKS_FOR_CALIBRATION:
        calibration = statistics.median(ratios.values())
        band = tolerance
        print(
            f"machine-speed calibration: median ratio {calibration:.3f} "
            f"over {len(shared)} benchmarks; tolerance ±{band:.0%}"
        )
    else:
        calibration = 1.0
        band = max(tolerance, FALLBACK_TOLERANCE)
        print(
            f"only {len(shared)} shared benchmark(s): comparing raw ratios "
            f"with widened tolerance ±{band:.0%}"
        )

    for name in shared:
        normalised = ratios[name] / calibration
        verdict = "ok"
        if normalised > 1.0 + band:
            verdict = "REGRESSION"
            failures.append(
                f"SLOWER   {name}: {ratios[name]:.2f}x baseline "
                f"({normalised:.2f}x after calibration, band {1.0 + band:.2f}x)"
            )
        elif normalised < 1.0 / (1.0 + band):
            verdict = "faster (consider refreshing the baseline)"
        print(
            f"{verdict:10s} {name}: baseline {baseline[name] * 1e3:.2f} ms, "
            f"fresh {fresh[name] * 1e3:.2f} ms, normalised {normalised:.2f}x"
        )

    if failures:
        print("\nbenchmark gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"\nbenchmark gate passed: {len(shared)} benchmarks within the band")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=pathlib.Path, required=True,
                        help="pytest-benchmark JSON from the current run")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed normalised slowdown (0.5 = 50%%)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the fresh run and exit")
    args = parser.parse_args(argv)

    if args.write_baseline:
        write_baseline(args.fresh, args.baseline)
        return 0
    if not args.baseline.exists():
        print(f"baseline {args.baseline} does not exist; create it with --write-baseline")
        return 1
    recorded = json.loads(args.baseline.read_text()).get("crypto_kernel")
    current = _active_kernel_name()
    if recorded and recorded not in (current, "unknown") and current != "unknown":
        print(
            f"note: baseline was recorded on the {recorded!r} crypto kernel "
            f"but this run resolved {current!r}; the machine-speed "
            "calibration absorbs a uniform shift, but refresh the baseline "
            "if the tiers should match"
        )
    return compare(load_means(args.fresh), load_means(args.baseline), args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
