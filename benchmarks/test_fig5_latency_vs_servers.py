"""Figure 5: end-to-end latency vs. number of servers with 2M users.

Paper reference: XRD's latency falls as √(2/N) (251 s at 100 servers, ≈ 84 s
extrapolated to 1000); the baselines fall as 1/N, so Pung catches up at
roughly a thousand servers and Atom's 12× gap collapses by ~3000 servers.
"""

import math

import pytest

from repro.analysis import figures, render_figure
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.simulation.latency import messages_per_chain, xrd_latency, xrd_latency_pipeline

from benchmarks.conftest import save_result


def test_fig5_latency_vs_servers(benchmark):
    figure = benchmark(figures.figure5)
    save_result("fig5_latency_vs_servers", render_figure(figure))
    servers = figure["x"]
    xrd = dict(zip(servers, figure["series"]["XRD"]))
    pung = dict(zip(servers, figure["series"]["Pung"]))

    assert xrd[100] == pytest.approx(251, rel=0.10)
    assert xrd[1000] == pytest.approx(84, rel=0.15)
    # √(2/N) scaling: quadrupling the servers halves the latency (roughly).
    assert xrd[50] / xrd[200] == pytest.approx(math.sqrt(4), rel=0.25)
    # Crossover with Pung near a thousand servers.
    assert pung[100] > xrd[100]
    assert pung[3000] < xrd[3000]
    # XRD latency is monotonically decreasing in the number of servers.
    ordered = [xrd[n] for n in servers]
    assert ordered == sorted(ordered, reverse=True)


def test_fig5_engine_horizontal_scaling(benchmark):
    """Figure 5's mechanism on the real stack: more chains → less load per chain.

    Micro-scale replica of the figure's server sweep through the new round
    engine (staggered scheduling, parallel chain execution, batched crypto):
    with users fixed, the measured per-chain load must fall as chains are
    added, following the ``R = M·ℓ/n`` model behind the analytic √(2/N)
    curve, and every configuration must deliver.
    """

    def sweep():
        loads = {}
        online_phase = {}
        for num_chains in (2, 4, 8):
            for precompute in (True, False):
                deployment = Deployment.create(
                    DeploymentConfig(
                        num_servers=8,
                        num_users=16,
                        num_chains=num_chains,
                        chain_length=2,
                        seed=5,
                        group_kind="modp",
                        execution_backend="parallel",
                        precompute=precompute,
                    )
                )
                reports = deployment.run_rounds(
                    [deployment.round_spec(), deployment.round_spec()], staggered=True
                )
                deployment.close()
                assert all(report.all_chains_delivered() for report in reports)
                per_chain = reports[-1].total_submissions / deployment.num_chains
                loads[num_chains] = per_chain
                online_phase[(num_chains, precompute)] = reports[-1].stage_seconds["mix"]
                assert per_chain == pytest.approx(messages_per_chain(16, num_chains))
        return loads, online_phase

    loads, online_phase = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Per-chain load falls as chains are added — the horizontal-scaling claim.
    assert loads[2] > loads[4] > loads[8]
    save_result(
        "fig5_engine_horizontal_scaling",
        "Measured messages/chain on the round engine (16 users, staggered+parallel): "
        + ", ".join(f"{chains} chains -> {load:.1f}" for chains, load in loads.items())
        + "\nOnline mix phase (precomputed vs online-only): "
        + ", ".join(
            f"{chains} chains -> {online_phase[(chains, True)] * 1e3:.0f}/"
            f"{online_phase[(chains, False)] * 1e3:.0f} ms"
            for chains in (2, 4, 8)
        ),
    )


def test_fig5_pipeline_model_agrees(benchmark):
    """The discrete-event pipeline model agrees with the closed form within 2x."""

    def run():
        return {
            n: xrd_latency_pipeline(200_000, n, malicious_fraction=0.2, security_bits=20)
            for n in (20, 40, 80)
        }

    pipeline = benchmark(run)
    for n, value in pipeline.items():
        closed = xrd_latency(200_000, n, malicious_fraction=0.2, security_bits=20)
        assert 0.4 * closed <= value <= 3.0 * closed
