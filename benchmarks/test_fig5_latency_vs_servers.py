"""Figure 5: end-to-end latency vs. number of servers with 2M users.

Paper reference: XRD's latency falls as √(2/N) (251 s at 100 servers, ≈ 84 s
extrapolated to 1000); the baselines fall as 1/N, so Pung catches up at
roughly a thousand servers and Atom's 12× gap collapses by ~3000 servers.
"""

import math

import pytest

from repro.analysis import figures, render_figure
from repro.simulation.latency import xrd_latency, xrd_latency_pipeline

from benchmarks.conftest import save_result


def test_fig5_latency_vs_servers(benchmark):
    figure = benchmark(figures.figure5)
    save_result("fig5_latency_vs_servers", render_figure(figure))
    servers = figure["x"]
    xrd = dict(zip(servers, figure["series"]["XRD"]))
    pung = dict(zip(servers, figure["series"]["Pung"]))

    assert xrd[100] == pytest.approx(251, rel=0.10)
    assert xrd[1000] == pytest.approx(84, rel=0.15)
    # √(2/N) scaling: quadrupling the servers halves the latency (roughly).
    assert xrd[50] / xrd[200] == pytest.approx(math.sqrt(4), rel=0.25)
    # Crossover with Pung near a thousand servers.
    assert pung[100] > xrd[100]
    assert pung[3000] < xrd[3000]
    # XRD latency is monotonically decreasing in the number of servers.
    ordered = [xrd[n] for n in servers]
    assert ordered == sorted(ordered, reverse=True)


def test_fig5_pipeline_model_agrees(benchmark):
    """The discrete-event pipeline model agrees with the closed form within 2x."""

    def run():
        return {
            n: xrd_latency_pipeline(200_000, n, malicious_fraction=0.2, security_bits=20)
            for n in (20, 40, 80)
        }

    pipeline = benchmark(run)
    for n, value in pipeline.items():
        closed = xrd_latency(200_000, n, malicious_fraction=0.2, security_bits=20)
        assert 0.4 * closed <= value <= 3.0 * closed
