"""Figure 4: end-to-end latency vs. number of users with 100 servers.

Paper reference points (100 servers, f = 0.2): XRD 128 s @ 1M, 251 s @ 2M,
508 s @ 4M, 1009 s @ 8M; Atom ≈ 12× slower than XRD; Pung 2.1× / 3.7× / 7.1×
slower at 1M / 2M / 4M; Stadium ≈ 2× faster.
"""

import pytest

from repro.analysis import figures, render_figure
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.simulation.latency import messages_per_chain

from benchmarks.conftest import save_result


def test_fig4_latency_vs_users(benchmark):
    figure = benchmark(figures.figure4)
    save_result("fig4_latency_vs_users", render_figure(figure))
    users = figure["x"]
    xrd = dict(zip(users, figure["series"]["XRD"]))
    atom = dict(zip(users, figure["series"]["Atom"]))
    pung = dict(zip(users, figure["series"]["Pung"]))
    stadium = dict(zip(users, figure["series"]["Stadium"]))

    # Absolute anchors within 10%.
    assert xrd[1_000_000] == pytest.approx(128, rel=0.10)
    assert xrd[2_000_000] == pytest.approx(251, rel=0.10)
    assert xrd[4_000_000] == pytest.approx(508, rel=0.10)
    assert xrd[8_000_000] == pytest.approx(1009, rel=0.10)

    # Relative claims from the abstract / §8.2.
    assert atom[1_000_000] / xrd[1_000_000] == pytest.approx(12, rel=0.15)
    assert pung[2_000_000] / xrd[2_000_000] == pytest.approx(3.7, rel=0.15)
    assert pung[4_000_000] / xrd[4_000_000] == pytest.approx(7.1, rel=0.25)
    assert xrd[1_000_000] / stadium[1_000_000] == pytest.approx(2.0, rel=0.25)

    # The gap to Pung grows with users; XRD grows linearly.
    assert pung[8_000_000] / xrd[8_000_000] > pung[1_000_000] / xrd[1_000_000]


def test_fig4_engine_load_scaling(benchmark):
    """Figure 4's x-axis on the real stack: per-chain load grows linearly in users.

    Micro-scale replica of the figure's sweep through the new round engine
    (staggered scheduling, parallel chain execution, batched crypto — the
    default fast path): the measured messages-per-chain must match the
    ``R = M·ℓ/n`` model the analytic curve is built on, and every round must
    deliver.
    """

    def sweep():
        loads = {}
        online_phase = {}
        for num_users in (6, 12, 24):
            for precompute in (True, False):
                deployment = Deployment.create(
                    DeploymentConfig(
                        num_servers=4,
                        num_users=num_users,
                        num_chains=4,
                        chain_length=2,
                        seed=4,
                        group_kind="modp",
                        execution_backend="parallel",
                        precompute=precompute,
                    )
                )
                reports = deployment.run_rounds(
                    [deployment.round_spec(), deployment.round_spec()], staggered=True
                )
                deployment.close()
                assert all(report.all_chains_delivered() for report in reports)
                per_chain = reports[-1].total_submissions / deployment.num_chains
                loads[num_users] = per_chain
                online_phase[(num_users, precompute)] = reports[-1].stage_seconds["mix"]
                assert per_chain == pytest.approx(
                    messages_per_chain(num_users, deployment.num_chains)
                )
        return loads, online_phase

    loads, online_phase = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert loads[24] == pytest.approx(4 * loads[6])
    save_result(
        "fig4_engine_load_scaling",
        "Measured messages/chain on the round engine (4 chains, staggered+parallel): "
        + ", ".join(f"{users} users -> {load:.1f}" for users, load in loads.items())
        + "\nOnline mix phase (precomputed vs online-only): "
        + ", ".join(
            f"{users} users -> {online_phase[(users, True)] * 1e3:.0f}/"
            f"{online_phase[(users, False)] * 1e3:.0f} ms"
            for users in (6, 12, 24)
        ),
    )


def test_headline_comparison(benchmark):
    headline = benchmark(figures.headline_comparison)
    lines = [
        headline["title"],
        f"  XRD:     {headline['xrd_latency']:8.1f} s (paper: 251 s)",
        f"  Atom:    {headline['atom_latency']:8.1f} s ({headline['atom_speedup']:.1f}x XRD; paper: 12x)",
        f"  Pung:    {headline['pung_latency']:8.1f} s ({headline['pung_speedup']:.1f}x XRD; paper: 3.7x)",
        f"  Stadium: {headline['stadium_latency']:8.1f} s (XRD is {headline['stadium_slowdown']:.1f}x slower)",
    ]
    save_result("headline_comparison", "\n".join(lines))
    assert headline["atom_speedup"] == pytest.approx(12, rel=0.15)
    assert headline["pung_speedup"] == pytest.approx(3.7, rel=0.15)
