"""Figure 4: end-to-end latency vs. number of users with 100 servers.

Paper reference points (100 servers, f = 0.2): XRD 128 s @ 1M, 251 s @ 2M,
508 s @ 4M, 1009 s @ 8M; Atom ≈ 12× slower than XRD; Pung 2.1× / 3.7× / 7.1×
slower at 1M / 2M / 4M; Stadium ≈ 2× faster.
"""

import pytest

from repro.analysis import figures, render_figure

from benchmarks.conftest import save_result


def test_fig4_latency_vs_users(benchmark):
    figure = benchmark(figures.figure4)
    save_result("fig4_latency_vs_users", render_figure(figure))
    users = figure["x"]
    xrd = dict(zip(users, figure["series"]["XRD"]))
    atom = dict(zip(users, figure["series"]["Atom"]))
    pung = dict(zip(users, figure["series"]["Pung"]))
    stadium = dict(zip(users, figure["series"]["Stadium"]))

    # Absolute anchors within 10%.
    assert xrd[1_000_000] == pytest.approx(128, rel=0.10)
    assert xrd[2_000_000] == pytest.approx(251, rel=0.10)
    assert xrd[4_000_000] == pytest.approx(508, rel=0.10)
    assert xrd[8_000_000] == pytest.approx(1009, rel=0.10)

    # Relative claims from the abstract / §8.2.
    assert atom[1_000_000] / xrd[1_000_000] == pytest.approx(12, rel=0.15)
    assert pung[2_000_000] / xrd[2_000_000] == pytest.approx(3.7, rel=0.15)
    assert pung[4_000_000] / xrd[4_000_000] == pytest.approx(7.1, rel=0.25)
    assert xrd[1_000_000] / stadium[1_000_000] == pytest.approx(2.0, rel=0.25)

    # The gap to Pung grows with users; XRD grows linearly.
    assert pung[8_000_000] / xrd[8_000_000] > pung[1_000_000] / xrd[1_000_000]


def test_headline_comparison(benchmark):
    headline = benchmark(figures.headline_comparison)
    lines = [
        headline["title"],
        f"  XRD:     {headline['xrd_latency']:8.1f} s (paper: 251 s)",
        f"  Atom:    {headline['atom_latency']:8.1f} s ({headline['atom_speedup']:.1f}x XRD; paper: 12x)",
        f"  Pung:    {headline['pung_latency']:8.1f} s ({headline['pung_speedup']:.1f}x XRD; paper: 3.7x)",
        f"  Stadium: {headline['stadium_latency']:8.1f} s (XRD is {headline['stadium_slowdown']:.1f}x slower)",
    ]
    save_result("headline_comparison", "\n".join(lines))
    assert headline["atom_speedup"] == pytest.approx(12, rel=0.15)
    assert headline["pung_speedup"] == pytest.approx(3.7, rel=0.15)
