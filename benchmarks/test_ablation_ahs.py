"""Ablation: AHS vs. the baseline shuffle vs. a traditional verifiable shuffle.

The paper's argument for AHS (§6) is that it replaces verifiable shuffles —
whose proofs cost many exponentiations *per message* — with one aggregate
Chaum-Pedersen proof per batch plus cheap per-message blinding.  This bench
measures, on a small batch with the real implementation:

* the baseline Algorithm-1 chain (no protection at all),
* the AHS chain (the paper's design), and
* an estimate of a Neff/Groth-style verifiable shuffle, modelled as ~8
  exponentiations per message per server (a conservative constant).

Expected shape: baseline < AHS << verifiable shuffle, with AHS costing only a
small constant factor over the unprotected baseline.
"""

import random
import time

from repro.crypto.group import ModPGroup
from repro.crypto.keys import KeyPair
from repro.crypto.onion import encrypt_onion_baseline
from repro.mixnet.messages import MailboxMessage, MessageBody
from repro.mixnet.server import BaselineMixChain, BaselineMixServer

from benchmarks.conftest import save_result
from tests.test_ahs_protocol import build_chain, make_submission

GROUP = ModPGroup(bits=96)
BATCH = 24
CHAIN_LENGTH = 3


def _run_baseline_round():
    servers = [
        BaselineMixServer(f"server-{i}", GROUP, random.Random(i)) for i in range(CHAIN_LENGTH)
    ]
    chain = BaselineMixChain(0, servers, GROUP)
    recipient = KeyPair.generate(GROUP)
    onions = [
        encrypt_onion_baseline(
            GROUP,
            chain.mixing_public_keys(),
            1,
            MailboxMessage.seal(recipient.public_bytes, b"\x01" * 32, 1, MessageBody.data(b"x")).to_bytes(),
        )
        for _ in range(BATCH)
    ]
    return chain.run_round(1, onions)


def _run_ahs_round():
    chain = build_chain(GROUP, length=CHAIN_LENGTH, seed=31)
    chain.begin_round(1)
    recipient = KeyPair.generate(GROUP)
    submissions = [
        make_submission(GROUP, chain, 1, f"user-{i}", recipient.public_bytes, b"\x01" * 32)
        for i in range(BATCH)
    ]
    chain.accept_submissions(1, submissions)
    return chain.run_round(1)


def test_ablation_baseline_chain(benchmark):
    result = benchmark.pedantic(_run_baseline_round, rounds=2, iterations=1)
    assert len(result.mailbox_messages) == BATCH


def test_ablation_ahs_chain(benchmark):
    result = benchmark.pedantic(_run_ahs_round, rounds=2, iterations=1)
    assert result.delivered
    assert len(result.mailbox_messages) == BATCH


def test_ablation_summary_against_verifiable_shuffle(benchmark):
    """Compare per-message server-side cost: AHS vs. a verifiable-shuffle estimate.

    The server-side cost per message is what the paper's argument is about:
    AHS needs one Diffie-Hellman layer decryption plus one blinding (2
    exponentiations and an AEAD) per message, whereas Neff/Groth-style
    verifiable shuffles need on the order of 8 exponentiations per message
    just for proof generation and verification.  End-to-end round times
    (which also include client work and setup) are reported for context.
    """

    def measure():
        start = time.perf_counter()
        _run_baseline_round()
        baseline_seconds = time.perf_counter() - start
        start = time.perf_counter()
        _run_ahs_round()
        ahs_seconds = time.perf_counter() - start
        # Measure one exponentiation and one AEAD call on this group.
        element = GROUP.base_mult(GROUP.random_scalar())
        scalar = GROUP.random_scalar()
        start = time.perf_counter()
        for _ in range(200):
            GROUP.scalar_mult(element, scalar)
        exp_seconds = (time.perf_counter() - start) / 200
        from repro.crypto.aead import aenc

        start = time.perf_counter()
        for _ in range(200):
            aenc(b"\x01" * 32, 1, b"x" * 304)
        aead_seconds = (time.perf_counter() - start) / 200
        ahs_per_message = 2 * exp_seconds + aead_seconds
        verifiable_per_message = 8 * exp_seconds + aead_seconds
        return baseline_seconds, ahs_seconds, ahs_per_message, verifiable_per_message

    baseline_seconds, ahs_seconds, ahs_per_message, verifiable_per_message = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    save_result(
        "ablation_ahs",
        "\n".join(
            [
                f"Ablation (batch={BATCH}, chain length={CHAIN_LENGTH}, modp test group):",
                f"  baseline round (no protection):      {baseline_seconds * 1e3:8.1f} ms",
                f"  AHS round (full protection):         {ahs_seconds * 1e3:8.1f} ms",
                f"  per-message server cost, AHS:        {ahs_per_message * 1e6:8.1f} us",
                f"  per-message server cost, verifiable: {verifiable_per_message * 1e6:8.1f} us (estimate)",
            ]
        ),
    )
    assert ahs_per_message < verifiable_per_message
    # Full AHS protection costs only a small constant factor over no protection.
    assert ahs_seconds < 5 * baseline_seconds
