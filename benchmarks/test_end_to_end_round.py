"""End-to-end round benchmarks of the real implementation (micro-scale).

These complement the figure benchmarks: instead of the calibrated cost model
they time the actual protocol code — a full deployment round on the fast test
group, a single-chain round on the real curve, and the Pung-style PIR store —
so regressions in the implementation itself show up here.
"""

from repro.baselines.pung import TwoServerPIRStore
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.group import Ed25519Group
from repro.crypto.keys import KeyPair

from benchmarks.conftest import save_result
from tests.test_ahs_protocol import build_chain, make_submission


def test_full_round_modp_deployment(benchmark):
    """4 servers, 3 chains, 10 users, cover messages on (fast test group)."""

    def run():
        config = DeploymentConfig(
            num_servers=4, num_users=10, num_chains=3, chain_length=2, seed=1, group_kind="modp"
        )
        deployment = Deployment.create(config)
        alice, bob = deployment.users[0].name, deployment.users[1].name
        deployment.start_conversation(alice, bob)
        return deployment.run_round(payloads={alice: b"hi", bob: b"hi"})

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.all_chains_delivered()


def test_single_chain_round_ed25519(benchmark):
    """One chain of 3 servers shuffling 6 messages on the real curve."""
    group = Ed25519Group()

    def run():
        chain = build_chain(group, length=3, seed=5)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(group, chain, 1, f"user-{i}", recipient.public_bytes, b"\x02" * 32)
            for i in range(6)
        ]
        chain.accept_submissions(1, submissions)
        return chain.run_round(1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.delivered
    assert len(result.mailbox_messages) == 6


def test_pung_pir_store_query_cost_scales_with_table(benchmark):
    """Pung's structural cost: one PIR query scans the entire mailbox table."""

    def run():
        timings = {}
        for table_size in (100, 400):
            store = TwoServerPIRStore(row_size=288)
            for index in range(table_size):
                store.put(b"user-%d" % index, b"message-%d" % index)
            store.retrieve(b"user-1")
            timings[table_size] = store.rows_scanned
        return timings

    scanned = benchmark(run)
    save_result(
        "pung_pir_scaling",
        "Pung PIR store rows scanned per query: "
        + ", ".join(f"{size}-row table -> {count}" for size, count in scanned.items()),
    )
    assert scanned[400] == 4 * scanned[100]
