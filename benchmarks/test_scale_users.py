"""Figure 4 extension: measured rounds at 10k/50k/100k users (ISSUE 4).

The analytic Figure 4 curve prices XRD at millions of users; before the
population layer the *measured* companion points stopped at a few hundred,
because the per-user Python overhead of the object path dominated wall
clock.  This module runs whole rounds through the batched population path
(``DeploymentConfig.population="batched"``) at four orders of magnitude and
records users vs. round latency vs. peak RSS — the scale table README
cites.

The default run sweeps up to 10k users (kept CI-sized).  The larger points
are opt-in via ``XRD_SCALE``:

* ``XRD_SCALE=smoke`` adds the 50k-user streamed round — the CI
  ``scale-smoke`` job runs exactly this under a hard timeout and a
  peak-RSS budget (acceptance criterion);
* ``XRD_SCALE=full`` adds the 100k monolithic-vs-streamed comparison and
  the million-user streamed round.

Memory accounting: rounds are timed *without* tracemalloc (its allocation
hooks slow this workload by an order of magnitude); each point's peak RSS
is metered per window by :class:`benchmarks.memutil.PeakRssMeter` (VmHWM
reset + ``RUSAGE_CHILDREN`` for the streaming pipeline's forked build
workers), so the numbers are attributable to their own point instead of
inheriting the biggest predecessor's high-water mark.  The ``slots=True``
satellite is verified per object in
:func:`test_slots_removes_instance_dicts`.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import time

import pytest

from repro.analysis import render_table
from repro.client.chain_selection import reset_assignment_caches
from repro.crypto import kernels
from repro.crypto.group import reset_window_table_caches
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.nizk import SchnorrProof
from repro.mixnet.messages import BatchEntry, ClientSubmission, MailboxMessage
from repro.simulation.latency import messages_per_chain
from repro.transport.envelope import Envelope

from benchmarks.conftest import save_result
from benchmarks.memutil import PeakRssMeter, current_rss_bytes

SCALE = os.environ.get("XRD_SCALE", "")

#: The streaming configuration the chunked scale points run: bounded build
#: chunks, built by a small forked pool (DESIGN.md §9).
CHUNK_SIZE = 10_000
BUILD_WORKERS = 2

#: Whole-window peak-RSS budget for the CI scale-smoke point: the 50k-user
#: streamed round measures ~0.86 GB on the reference box (vs ~1.02 GB
#: monolithic); the budget's headroom absorbs allocator/runner variance
#: while still failing the job on a gross memory regression (a doubled
#: retained batch, a leaked per-chunk buffer).  Mono-vs-chunked parity and
#: latency are gated elsewhere (parity matrix + benchmark baseline).
SMOKE_PEAK_RSS_CEILING = 1_500_000_000

#: Whole-window peak-RSS budget for the opt-in million-user point.  The
#: round's retained batch (every submission, held for mixing and blame) is
#: O(users) under any pipeline — see the §9 discussion — so the budget
#: scales the measured 100k streamed round (~1.6 GB) by 10× with headroom.
MILLION_USER_PEAK_RSS_BUDGET = 24_000_000_000

#: PR 6's measured retained floor at 100k users: the chunked (but eager)
#: round's transient working set was ~1.12 GB, dominated by the decoded
#: submission batch every chain holds through mixing and blame.  The
#: streamed-mix acceptance criterion (ISSUE 9) is to land *below* this —
#: the wire-resident EncodedBatch replaces the decoded objects.
EAGER_100K_ROUND_DELTA_FLOOR = 1_120_000_000


def run_round_at_scale(
    num_users: int,
    population: str = "batched",
    precompute: bool = True,
    chunk_size: int | None = None,
    build_workers: int = 0,
    stream_mix: bool = False,
    crypto_kernel: str | None = None,
):
    """One full round at ``num_users`` (modp group, 4 chains, covers off).

    Covers are disabled so a point measures exactly one round's submissions
    (with covers every round also builds round ``r+1``'s batch, doubling
    the build work without changing the scaling shape).  The per-user
    assignment caches are reset first so every point pays (and therefore
    measures) its own population's assignment work, and retired epochs do
    not inflate the next point's RSS.

    Memory is metered in two windows.  ``peak_rss`` spans deployment
    construction *and* the round (the standing population — users, keys,
    assignments — is part of a round's footprint, and it is what the README
    scale table has always reported).  ``round_delta_rss`` is the round
    window's own high-water mark minus the standing RSS right before it:
    the transient working set of building, mixing, and delivering one
    round, which is the quantity the streaming pipeline bounds at O(chunk)
    — the standing population is O(users) under any pipeline.
    """
    reset_assignment_caches()
    reset_window_table_caches()
    kernels.reset_kernel_for_tests()
    if crypto_kernel is not None:
        # The native request degrades (with one warning) on a box without
        # the extension, so the sweep still runs — on the lower tier.
        kernels.set_active_kernel(crypto_kernel)
    config = DeploymentConfig(
        num_servers=4,
        num_users=num_users,
        num_chains=4,
        chain_length=2,
        seed=4,
        group_kind="modp",
        use_cover_messages=False,
        population=population,
        precompute=precompute,
        population_chunk_size=chunk_size,
        population_build_workers=build_workers,
        stream_mix=stream_mix,
    )
    with PeakRssMeter() as create_meter:
        deployment = Deployment.create(config)
    standing = current_rss_bytes()
    with PeakRssMeter() as round_meter:
        started = time.perf_counter()
        report = deployment.run_round()
        elapsed = time.perf_counter() - started
        assert report.all_chains_delivered()
        assert report.total_submissions == num_users * deployment.ell()
        per_chain = report.total_submissions / deployment.num_chains
        assert per_chain == pytest.approx(
            messages_per_chain(num_users, deployment.num_chains)
        )
        deployment.close()
    return {
        "users": num_users,
        "kernel": kernels.active_kernel().value,
        "seconds": elapsed,
        "peak_rss": max(create_meter.peak_bytes, round_meter.peak_bytes),
        "standing_rss": standing,
        # Forked build workers inherit the standing population copy-on-write,
        # so their absolute peaks sit on the same baseline as the parent's.
        "round_delta_rss": max(0, round_meter.peak_bytes - standing),
        "children_peak_rss": round_meter.children_peak_bytes,
        "online_seconds": report.stage_seconds.get("mix", 0.0),
        "precompute_seconds": report.stage_seconds.get("precompute", 0.0),
    }


def _sweep_rows(points):
    return [
        [
            f"{point['users']:,}",
            point["kernel"],
            f"{point['seconds']:.1f}",
            f"{point['online_seconds']:.1f}",
            f"{point['peak_rss'] / 1e6:.0f}",
            f"{point['round_delta_rss'] / 1e6:.0f}",
        ]
        for point in points
    ]


_SWEEP_HEADER = ["users", "kernel", "round s", "online s", "peak RSS MB", "round Δ MB"]


def test_scale_users_sweep(benchmark):
    """The committed fig4-companion sweep: 1k → 10k users, one round each."""

    def sweep():
        return [run_round_at_scale(users) for users in (1_000, 5_000, 10_000)]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "scale_users",
        "Measured round latency vs. users (batched population, modp group, 4 chains;\n"
        "'online s' is the mix stage with the public-key work precomputed off-path;\n"
        "'round Δ' is the round's transient working set over the standing population)\n"
        + render_table(_SWEEP_HEADER, _sweep_rows(points)),
    )
    # Latency grows roughly linearly in users (the fig4 shape): going 1k→10k
    # must cost well under the 100× of quadratic per-user behaviour.
    assert points[-1]["seconds"] < 25 * points[0]["seconds"]


def test_scale_users_chunked_sweep(benchmark):
    """The streaming-pipeline companion sweep (ISSUE 6): the same 1k → 10k
    points built in 1k-user chunks by a forked worker pool, committed to the
    benchmark baseline so a regression in the chunked path gates CI."""

    def sweep():
        return [
            run_round_at_scale(users, chunk_size=1_000, build_workers=BUILD_WORKERS)
            for users in (1_000, 5_000, 10_000)
        ]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "scale_users_chunked",
        "Measured round latency vs. users, streaming pipeline (1k-user chunks,\n"
        f"{BUILD_WORKERS} forked build workers; same deployment as the monolithic sweep)\n"
        + render_table(_SWEEP_HEADER, _sweep_rows(points)),
    )
    assert points[-1]["seconds"] < 25 * points[0]["seconds"]


def test_batched_population_beats_object_path(benchmark):
    """The tentpole's speedup claim at equal size, measured end to end."""

    def compare():
        batched = run_round_at_scale(1_000, population="batched")
        object_path = run_round_at_scale(1_000, population="object")
        return batched, object_path

    batched, object_path = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = object_path["seconds"] / batched["seconds"]
    save_result(
        "scale_population_speedup",
        f"1k-user round: object path {object_path['seconds']:.1f}s, "
        f"batched population {batched['seconds']:.1f}s ({speedup:.1f}x)",
    )
    # The measured gap is ~9x; demand a comfortable floor so CI noise never
    # flakes while a disabled fast path still fails loudly.
    assert speedup > 2.0


def test_slots_removes_instance_dicts():
    """The ``slots=True`` satellite, measured per object.

    A 100k-user round keeps ~300k ``ClientSubmission`` (plus their proofs
    and mailbox messages) alive at once; the per-instance ``__dict__`` of a
    plain dataclass costs more than the slot storage itself.  This pins the
    hot classes as slotted and quantifies the saving against dict-backed
    clones of the same classes.
    """
    hot_classes = (Envelope, ClientSubmission, BatchEntry, MailboxMessage, SchnorrProof)
    proof = SchnorrProof(commitment=b"\x01" * 32, response=7)
    instances = {
        Envelope: Envelope(kind="submission", source="u", destination="s",
                           round_number=1, payload=None, chain_id=0),
        ClientSubmission: ClientSubmission(chain_id=0, sender="u", dh_public=b"\x02" * 32,
                                           ciphertext=b"c" * 64, proof=proof),
        BatchEntry: BatchEntry(dh_public=object(), ciphertext=b"c" * 64),
        MailboxMessage: MailboxMessage(recipient=b"\x03" * 32, sealed_body=b"s" * 272),
        SchnorrProof: proof,
    }
    savings = []
    for cls in hot_classes:
        instance = instances[cls]
        assert not hasattr(instance, "__dict__"), f"{cls.__name__} is not slotted"
        fields = dataclasses.fields(cls)
        slotted = sys.getsizeof(instance)
        # A dict-backed instance pays the object header plus its __dict__.
        dict_backed = object.__sizeof__(instance) + sys.getsizeof(
            {field.name: getattr(instance, field.name) for field in fields}
        )
        savings.append((cls.__name__, slotted, dict_backed))
        assert slotted < dict_backed
    save_result(
        "scale_slots_memory",
        "Per-instance memory, slots=True vs dict-backed equivalent\n"
        + render_table(
            ["class", "slotted B", "dict-backed B"],
            [[name, s, d] for name, s, d in savings],
        ),
    )


@pytest.mark.skipif(SCALE not in ("smoke", "full"), reason="set XRD_SCALE=smoke for the 50k round")
def test_scale_smoke_50k_users():
    """The CI scale-smoke acceptance point: a 50k-user round through the
    streaming pipeline (10k-user chunks, forked build pool), under a
    peak-RSS budget.

    Runs with the precompute stage enabled (the default), so the smoke job
    also proves the precompute subsystem holds at 50k users and records the
    online/precompute phase split at that scale (ISSUE 5).
    """
    point = run_round_at_scale(
        50_000, precompute=True, chunk_size=CHUNK_SIZE, build_workers=BUILD_WORKERS,
        stream_mix=True, crypto_kernel="native",
    )
    assert point["precompute_seconds"] > 0.0
    assert point["online_seconds"] > 0.0
    assert point["peak_rss"] < SMOKE_PEAK_RSS_CEILING
    save_result(
        "scale_users_50k",
        f"50,000-user streamed round ({CHUNK_SIZE // 1000}k chunks, "
        f"{BUILD_WORKERS} build workers, {point['kernel']} kernels, "
        f"streamed mix): {point['seconds']:.1f}s "
        f"(online mix phase {point['online_seconds']:.1f}s, "
        f"precomputed off-path {point['precompute_seconds']:.1f}s), "
        f"peak RSS {point['peak_rss'] / 1e6:.0f} MB "
        f"(budget {SMOKE_PEAK_RSS_CEILING / 1e6:.0f} MB)",
    )


@pytest.mark.skipif(SCALE != "full", reason="set XRD_SCALE=full for the 100k rounds")
def test_scale_full_100k_users():
    """The headline comparison: 100k users, monolithic build vs the
    streaming pipeline, same deployment otherwise.

    The streamed round must beat the monolithic one on whole-process peak
    RSS *and* on the round's transient working set, at equal-or-better
    wall-clock (the 15% band absorbs run-to-run noise; measured, the
    chunked round is slightly faster).  The drop is bounded: the round's
    retained batch — every submission, held for mixing and for blame — is
    O(users) under any pipeline (a batch mixnet's servers hold their whole
    chain batch), so chunking removes the build-stage transient on top of
    that floor, not the floor itself.
    """
    mono = run_round_at_scale(100_000)
    chunked = run_round_at_scale(
        100_000, chunk_size=CHUNK_SIZE, build_workers=BUILD_WORKERS
    )
    assert chunked["seconds"] < mono["seconds"] * 1.15
    assert chunked["peak_rss"] < mono["peak_rss"]
    assert chunked["round_delta_rss"] < mono["round_delta_rss"]
    rows = [
        ["monolithic", f"{mono['seconds']:.1f}", f"{mono['peak_rss'] / 1e6:.0f}",
         f"{mono['round_delta_rss'] / 1e6:.0f}"],
        [f"chunked {CHUNK_SIZE // 1000}k x{BUILD_WORKERS}",
         f"{chunked['seconds']:.1f}", f"{chunked['peak_rss'] / 1e6:.0f}",
         f"{chunked['round_delta_rss'] / 1e6:.0f}"],
    ]
    save_result(
        "scale_users_100k",
        "100,000-user round, monolithic vs streaming pipeline\n"
        + render_table(["build path", "round s", "peak RSS MB", "round Δ MB"], rows),
    )


@pytest.mark.skipif(SCALE != "full", reason="set XRD_SCALE=full for the 100k rounds")
def test_scale_full_100k_streamed_mix():
    """The retained-memory attack, measured (ISSUE 9): the same 100k
    chunked round with the mix stage's batches kept wire-resident
    (``stream_mix=True``) and the native kernels doing the arithmetic.

    The gate is the acceptance criterion itself: the streamed round's
    transient working set (``round_delta_rss``) must land below PR 6's
    measured eager floor, and below the eager twin measured in the same
    process — the engine releases its decoded submission lists after
    acceptance and every chain holds an ``EncodedBatch`` blob plus sender
    stubs instead of decoded entries through mixing, blame, and history.
    """
    eager = run_round_at_scale(
        100_000, chunk_size=CHUNK_SIZE, build_workers=BUILD_WORKERS,
        crypto_kernel="native",
    )
    streamed = run_round_at_scale(
        100_000, chunk_size=CHUNK_SIZE, build_workers=BUILD_WORKERS,
        stream_mix=True, crypto_kernel="native",
    )
    assert streamed["round_delta_rss"] < EAGER_100K_ROUND_DELTA_FLOOR
    assert streamed["round_delta_rss"] < eager["round_delta_rss"]
    # The residency change must not cost wall clock (same band as the
    # mono-vs-chunked comparison).
    assert streamed["seconds"] < eager["seconds"] * 1.15
    rows = [
        ["eager", f"{eager['seconds']:.1f}", f"{eager['online_seconds']:.1f}",
         f"{eager['peak_rss'] / 1e6:.0f}",
         f"{eager['round_delta_rss'] / 1e6:.0f}"],
        ["streamed mix", f"{streamed['seconds']:.1f}",
         f"{streamed['online_seconds']:.1f}",
         f"{streamed['peak_rss'] / 1e6:.0f}",
         f"{streamed['round_delta_rss'] / 1e6:.0f}"],
    ]
    save_result(
        "scale_users_100k_streamed",
        f"100,000-user chunked round, eager vs streamed mix "
        f"({eager['kernel']} kernels; eager floor "
        f"{EAGER_100K_ROUND_DELTA_FLOOR / 1e6:.0f} MB)\n"
        + render_table(
            ["mix intake", "round s", "online s", "peak RSS MB", "round Δ MB"], rows
        ),
    )


@pytest.mark.skipif(SCALE != "full", reason="set XRD_SCALE=full for the million-user round")
def test_scale_full_1m_users():
    """The million-user point (ISSUE 6): one round, streaming pipeline only
    (the monolithic build at this scale is exactly what the pipeline
    retires), under the whole-process peak-RSS budget."""
    point = run_round_at_scale(
        1_000_000, chunk_size=CHUNK_SIZE, build_workers=BUILD_WORKERS,
        stream_mix=True, crypto_kernel="native",
    )
    assert point["peak_rss"] < MILLION_USER_PEAK_RSS_BUDGET
    save_result(
        "scale_users_1m",
        f"1,000,000-user streamed round ({CHUNK_SIZE // 1000}k chunks, "
        f"{BUILD_WORKERS} build workers, {point['kernel']} kernels, "
        f"streamed mix): {point['seconds']:.1f}s "
        f"(online mix phase {point['online_seconds']:.1f}s, "
        f"precomputed off-path {point['precompute_seconds']:.1f}s), "
        f"peak RSS {point['peak_rss'] / 1e6:.0f} MB of "
        f"{MILLION_USER_PEAK_RSS_BUDGET / 1e6:.0f} MB budget "
        f"(standing population {point['standing_rss'] / 1e6:.0f} MB, "
        f"round transient {point['round_delta_rss'] / 1e6:.0f} MB)",
    )
