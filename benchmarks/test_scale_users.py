"""Figure 4 extension: measured rounds at 10k/50k/100k users (ISSUE 4).

The analytic Figure 4 curve prices XRD at millions of users; before the
population layer the *measured* companion points stopped at a few hundred,
because the per-user Python overhead of the object path dominated wall
clock.  This module runs whole rounds through the batched population path
(``DeploymentConfig.population="batched"``) at four orders of magnitude and
records users vs. round latency vs. peak RSS — the scale table README
cites.

The default run sweeps up to 10k users (kept CI-sized).  The larger points
are opt-in via ``XRD_SCALE``:

* ``XRD_SCALE=smoke`` adds the 50k-user round — the CI ``scale-smoke`` job
  runs exactly this under a hard timeout (acceptance criterion);
* ``XRD_SCALE=full`` adds 100k users as well.

Memory accounting: rounds are timed *without* tracemalloc (its allocation
hooks slow this workload by an order of magnitude); the table reports the
process's peak RSS instead, and the ``slots=True`` satellite is verified
per object in :func:`test_slots_removes_instance_dicts`.
"""

from __future__ import annotations

import dataclasses
import os
import resource
import sys
import time

import pytest

from repro.analysis import render_table
from repro.client.chain_selection import reset_assignment_caches
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.nizk import SchnorrProof
from repro.mixnet.messages import BatchEntry, ClientSubmission, MailboxMessage
from repro.simulation.latency import messages_per_chain
from repro.transport.envelope import Envelope

from benchmarks.conftest import save_result

SCALE = os.environ.get("XRD_SCALE", "")


def peak_rss_bytes() -> int:
    """The process's peak resident set size.

    ``ru_maxrss`` is KiB on Linux but bytes on macOS.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform == "darwin" else rss * 1024


def run_round_at_scale(num_users: int, population: str = "batched", precompute: bool = True):
    """One full round at ``num_users`` (modp group, 4 chains, covers off).

    Covers are disabled so a point measures exactly one round's submissions
    (with covers every round also builds round ``r+1``'s batch, doubling
    the build work without changing the scaling shape).  The per-user
    assignment caches are reset first so every point pays (and therefore
    measures) its own population's assignment work, and retired epochs do
    not inflate the next point's RSS.
    """
    reset_assignment_caches()
    config = DeploymentConfig(
        num_servers=4,
        num_users=num_users,
        num_chains=4,
        chain_length=2,
        seed=4,
        group_kind="modp",
        use_cover_messages=False,
        population=population,
        precompute=precompute,
    )
    deployment = Deployment.create(config)
    started = time.perf_counter()
    report = deployment.run_round()
    elapsed = time.perf_counter() - started
    assert report.all_chains_delivered()
    assert report.total_submissions == num_users * deployment.ell()
    per_chain = report.total_submissions / deployment.num_chains
    assert per_chain == pytest.approx(messages_per_chain(num_users, deployment.num_chains))
    deployment.close()
    return {
        "users": num_users,
        "seconds": elapsed,
        "peak_rss": peak_rss_bytes(),
        "online_seconds": report.stage_seconds.get("mix", 0.0),
        "precompute_seconds": report.stage_seconds.get("precompute", 0.0),
    }


def test_scale_users_sweep(benchmark):
    """The committed fig4-companion sweep: 1k → 10k users, one round each."""

    def sweep():
        return [run_round_at_scale(users) for users in (1_000, 5_000, 10_000)]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{point['users']:,}",
            f"{point['seconds']:.1f}",
            f"{point['online_seconds']:.1f}",
            f"{point['peak_rss'] / 1e6:.0f}",
        ]
        for point in points
    ]
    save_result(
        "scale_users",
        "Measured round latency vs. users (batched population, modp group, 4 chains;\n"
        "'online s' is the mix stage with the public-key work precomputed off-path)\n"
        + render_table(["users", "round s", "online s", "peak RSS MB"], rows),
    )
    # Latency grows roughly linearly in users (the fig4 shape): going 1k→10k
    # must cost well under the 100× of quadratic per-user behaviour.
    assert points[-1]["seconds"] < 25 * points[0]["seconds"]


def test_batched_population_beats_object_path(benchmark):
    """The tentpole's speedup claim at equal size, measured end to end."""

    def compare():
        batched = run_round_at_scale(1_000, population="batched")
        object_path = run_round_at_scale(1_000, population="object")
        return batched, object_path

    batched, object_path = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = object_path["seconds"] / batched["seconds"]
    save_result(
        "scale_population_speedup",
        f"1k-user round: object path {object_path['seconds']:.1f}s, "
        f"batched population {batched['seconds']:.1f}s ({speedup:.1f}x)",
    )
    # The measured gap is ~9x; demand a comfortable floor so CI noise never
    # flakes while a disabled fast path still fails loudly.
    assert speedup > 2.0


def test_slots_removes_instance_dicts():
    """The ``slots=True`` satellite, measured per object.

    A 100k-user round keeps ~300k ``ClientSubmission`` (plus their proofs
    and mailbox messages) alive at once; the per-instance ``__dict__`` of a
    plain dataclass costs more than the slot storage itself.  This pins the
    hot classes as slotted and quantifies the saving against dict-backed
    clones of the same classes.
    """
    hot_classes = (Envelope, ClientSubmission, BatchEntry, MailboxMessage, SchnorrProof)
    proof = SchnorrProof(commitment=b"\x01" * 32, response=7)
    instances = {
        Envelope: Envelope(kind="submission", source="u", destination="s",
                           round_number=1, payload=None, chain_id=0),
        ClientSubmission: ClientSubmission(chain_id=0, sender="u", dh_public=b"\x02" * 32,
                                           ciphertext=b"c" * 64, proof=proof),
        BatchEntry: BatchEntry(dh_public=object(), ciphertext=b"c" * 64),
        MailboxMessage: MailboxMessage(recipient=b"\x03" * 32, sealed_body=b"s" * 272),
        SchnorrProof: proof,
    }
    savings = []
    for cls in hot_classes:
        instance = instances[cls]
        assert not hasattr(instance, "__dict__"), f"{cls.__name__} is not slotted"
        fields = dataclasses.fields(cls)
        slotted = sys.getsizeof(instance)
        # A dict-backed instance pays the object header plus its __dict__.
        dict_backed = object.__sizeof__(instance) + sys.getsizeof(
            {field.name: getattr(instance, field.name) for field in fields}
        )
        savings.append((cls.__name__, slotted, dict_backed))
        assert slotted < dict_backed
    save_result(
        "scale_slots_memory",
        "Per-instance memory, slots=True vs dict-backed equivalent\n"
        + render_table(
            ["class", "slotted B", "dict-backed B"],
            [[name, s, d] for name, s, d in savings],
        ),
    )


@pytest.mark.skipif(SCALE not in ("smoke", "full"), reason="set XRD_SCALE=smoke for the 50k round")
def test_scale_smoke_50k_users():
    """The CI scale-smoke acceptance point: a 50k-user round completes.

    Runs with the precompute stage enabled (the default), so the smoke job
    also proves the precompute subsystem holds at 50k users and records the
    online/precompute phase split at that scale (ISSUE 5).
    """
    point = run_round_at_scale(50_000, precompute=True)
    assert point["precompute_seconds"] > 0.0
    assert point["online_seconds"] > 0.0
    save_result(
        "scale_users_50k",
        f"50,000-user round: {point['seconds']:.1f}s "
        f"(online mix phase {point['online_seconds']:.1f}s, "
        f"precomputed off-path {point['precompute_seconds']:.1f}s), "
        f"peak RSS {point['peak_rss'] / 1e6:.0f} MB",
    )


@pytest.mark.skipif(SCALE != "full", reason="set XRD_SCALE=full for the 100k round")
def test_scale_full_100k_users():
    """The headline point: 100k users in one measured round (≥20× the
    object path's practical ceiling of a few hundred)."""
    point = run_round_at_scale(100_000)
    save_result(
        "scale_users_100k",
        f"100,000-user round: {point['seconds']:.1f}s "
        f"(online mix phase {point['online_seconds']:.1f}s, "
        f"precomputed off-path {point['precompute_seconds']:.1f}s), "
        f"peak RSS {point['peak_rss'] / 1e6:.0f} MB",
    )
