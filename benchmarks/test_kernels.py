"""Microbenchmark sweep for the native crypto kernels (DESIGN.md §11).

Each proven hot kernel is timed per tier at the batch sizes the protocol
actually runs (a chain's round batch: hundreds to tens of thousands of
entries), and the tentpole's speedup floors are asserted directly:

* batched ChaCha20 blocks — native ≥ 2.5× the numpy tier;
* modp ``scalar_mult_batch`` — native ≥ 2.5× the CPython ``pow`` loop.

The remaining kernels (AEAD seal/open cascade, fixed-point batch, fused
multi-scalar accumulate) are swept and recorded without a floor: their win
rides the same arithmetic, and one representative gate per substrate keeps
the assertion surface small while the table in ``results/kernel_speedups``
documents the rest.  The whole module skips when the extension is absent —
a box without a C compiler still runs every other benchmark.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.crypto import kernels
from repro.crypto.aead import adec_batch, aenc_batch
from repro.crypto.chacha20 import chacha20_blocks_batch
from repro.crypto.group import ModPGroup

from benchmarks.conftest import save_result

pytestmark = pytest.mark.skipif(
    not kernels.native_available(),
    reason="_xrdkernels extension not built (no C compiler?)",
)

#: Entries per batch: one mid-size chain batch.  Large enough that per-call
#: dispatch overhead is amortised out of the per-op figures, small enough
#: that the sweep stays CI-sized.
BATCH = 2048

#: Measured speedup floors (see ISSUE 9 acceptance).  The reference box
#: measures ~4.5× (chacha vs numpy) and ~9× (modp vs pow); 2.5× leaves
#: room for slower CI arithmetic without letting a disabled kernel pass.
CHACHA_FLOOR = 2.5
MODP_FLOOR = 2.5


@pytest.fixture(autouse=True)
def _kernel_state():
    kernels.reset_kernel_for_tests()
    yield
    kernels.reset_kernel_for_tests()


def _time_per_op(func, ops: int, repeats: int = 3, inner: int = 1) -> float:
    """Best-of-``repeats`` per-op time, ``inner`` calls per timed window.

    The floored comparisons pass ``inner > 1``: one native batch call is
    well under a millisecond, short enough for scheduler jitter to swing
    a single-call measurement ~40% on a busy box — several calls per
    window amortise that out of the minimum.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            func()
        best = min(best, (time.perf_counter() - started) / (ops * inner))
    return best


def _chacha_inputs(count: int):
    keys = [i.to_bytes(4, "big") * 8 for i in range(count)]
    nonces = [i.to_bytes(4, "big") * 3 for i in range(count)]
    counters = list(range(count))
    return keys, nonces, counters


def test_chacha20_blocks_native_vs_numpy(benchmark):
    """The headline symmetric gate: native blocks ≥ 2.5× the numpy tier."""
    keys, nonces, counters = _chacha_inputs(BATCH)

    def run_tier(tier):
        kernels.set_active_kernel(tier)
        return _time_per_op(
            lambda: chacha20_blocks_batch(keys, nonces, counters),
            BATCH,
            repeats=7,
            inner=4,
        )

    numpy_per_op = run_tier("numpy")
    kernels.set_active_kernel("native")
    benchmark(chacha20_blocks_batch, keys, nonces, counters)
    native_per_op = run_tier("native")
    speedup = numpy_per_op / native_per_op
    save_result(
        "kernel_chacha_speedup",
        f"ChaCha20 blocks x{BATCH}: numpy {numpy_per_op * 1e6:.2f} us/block, "
        f"native {native_per_op * 1e6:.2f} us/block ({speedup:.1f}x)",
    )
    assert speedup >= CHACHA_FLOOR


def test_modp_scalar_mult_batch_native_vs_pow(benchmark):
    """The headline group gate: native Montgomery ≥ 2.5× CPython ``pow``."""
    group = ModPGroup(bits=96)
    elements = [pow(group.generator, 3 + i, group.prime) for i in range(BATCH)]
    exponent = group.order // 3

    def python_loop():
        return [pow(e, exponent, group.prime) for e in elements]

    python_per_op = _time_per_op(python_loop, BATCH)
    kernels.set_active_kernel("native")
    benchmark(group.scalar_mult_batch, elements, exponent)
    native_per_op = _time_per_op(
        lambda: group.scalar_mult_batch(elements, exponent), BATCH, repeats=5, inner=2
    )
    assert group.scalar_mult_batch(elements, exponent) == python_loop()
    speedup = python_per_op / native_per_op
    save_result(
        "kernel_modp_speedup",
        f"modp scalar_mult_batch x{BATCH} ({group.prime.bit_length()}-bit "
        f"modulus): pow {python_per_op * 1e6:.2f} us/op, native "
        f"{native_per_op * 1e6:.2f} us/op ({speedup:.1f}x)",
    )
    assert speedup >= MODP_FLOOR


def test_kernel_sweep_table(benchmark):
    """Per-kernel per-tier sweep; recorded, not floored (see module docstring)."""
    group = ModPGroup(bits=96)
    keys, nonces, counters = _chacha_inputs(BATCH)
    aead_keys = keys
    plaintexts = [i.to_bytes(4, "big") * 50 for i in range(BATCH)]
    elements = [pow(group.generator, 3 + i, group.prime) for i in range(BATCH)]
    exponents = [(group.order // 7 + i) % group.order for i in range(BATCH)]
    sealed = aenc_batch(aead_keys, 1, plaintexts)

    def accumulate_python():
        value = 1
        for element, exponent in zip(elements, exponents):
            value = value * pow(element, exponent, group.prime) % group.prime
        return value

    cases = [
        ("chacha20 blocks", lambda: chacha20_blocks_batch(keys, nonces, counters)),
        ("aead seal", lambda: aenc_batch(aead_keys, 1, plaintexts)),
        ("aead open", lambda: adec_batch(aead_keys, 1, sealed)),
        ("modp scalar_mult", lambda: group.scalar_mult_batch(elements, exponents[0])),
        ("modp fixed_mult", lambda: group.fixed_point_mult_batch(elements[0], exponents)),
        ("modp accumulate", lambda: group.multi_scalar_accumulate(elements, exponents)),
    ]
    rows = []
    for name, func in cases:
        row = [name]
        for tier in ("python", "native"):
            kernels.set_active_kernel(tier)
            if tier == "python" and name == "modp accumulate":
                per_op = _time_per_op(accumulate_python, BATCH, repeats=1)
            else:
                repeats = 1 if tier == "python" else 3
                per_op = _time_per_op(func, BATCH, repeats=repeats)
            row.append(f"{per_op * 1e6:.2f}")
        rows.append(row)

    def whole_sweep():
        kernels.set_active_kernel("native")
        for _, func in cases:
            func()

    benchmark.pedantic(whole_sweep, rounds=1, iterations=1)
    save_result(
        "kernel_speedups",
        f"Native kernel sweep, {BATCH}-entry batches "
        f"({group.prime.bit_length()}-bit modp group)\n"
        + render_table(["kernel", "python us/op", "native us/op"], rows),
    )
