"""Measured transport traffic vs. the analytic bandwidth model (fig2 companion).

Runs a real deployment on the instrumented transport — every envelope is
serialised to its actual wire encoding — and compares the bytes each user
*measurably* uploaded/downloaded per round against the Figure 2 analytic
prediction (:mod:`repro.simulation.bandwidth`) anchored to the same chain
parameters.  The acceptance bar is agreement within 5%; uploads in fact
match to the byte (``ClientSubmission.to_bytes`` is exactly the layout the
model prices), while downloads carry ~2% codec framing (batch counts and
per-message length prefixes).

A second table reports the measured-from-traffic round latency companion to
the Figure 4/5 analytic curves: the modelled time of the critical path
through the recorded links next to the same path predicted from the
configuration's uniform-load assumption.
"""

import pytest

from repro.analysis import (
    measured_vs_model_bandwidth,
    measured_vs_model_latency,
    render_table,
)
from repro.coordinator.network import Deployment, DeploymentConfig

from benchmarks.conftest import save_result

#: Tolerance from the acceptance criteria: measured within 5% of the model.
TOLERANCE = 0.05

ROUNDS = 3


def make_deployment():
    # The fig2 configuration at in-process scale: f = 0.2 with the security
    # parameter chosen so the anytrust chain length (8) is not capped by the
    # server count, 256-byte payloads, covers on.
    config = DeploymentConfig(
        num_servers=8,
        num_users=10,
        num_chains=4,
        malicious_fraction=0.2,
        security_bits=16,
        seed=1702,
        group_kind="modp",
        transport="instrumented",
    )
    return Deployment.create(config)


@pytest.fixture(scope="module")
def traffic_run():
    deployment = make_deployment()
    a, b = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(a, b)
    for index in range(ROUNDS):
        deployment.run_round(payloads={a: b"ping-%d" % index, b: b"pong-%d" % index})
    yield deployment
    deployment.close()


def test_measured_bandwidth_matches_model(benchmark, traffic_run):
    deployment = traffic_run
    comparison = benchmark(measured_vs_model_bandwidth, deployment, 1)
    rows = [
        ["upload", comparison["measured_upload_bytes"], comparison["model_upload_bytes"],
         f"{100 * (comparison['upload_ratio'] - 1):+.2f}%"],
        ["download", comparison["measured_download_bytes"], comparison["model_download_bytes"],
         f"{100 * (comparison['download_ratio'] - 1):+.2f}%"],
    ]
    save_result(
        "transport_measured_vs_model_bandwidth",
        "Per-user bytes per round: measured from traffic vs. Figure 2 model\n"
        + render_table(["direction", "measured B", "model B", "delta"], rows),
    )
    assert comparison["users_measured"] == deployment.config.num_users
    assert abs(comparison["upload_ratio"] - 1) <= TOLERANCE
    assert abs(comparison["download_ratio"] - 1) <= TOLERANCE
    # Uploads are byte-exact: the wire layout is the priced layout.
    assert comparison["measured_upload_bytes"] == comparison["model_upload_bytes"]


def test_measured_bandwidth_stable_across_rounds(traffic_run):
    """Cover traffic makes every full round cost the same bytes (§5.3.3)."""
    comparisons = [
        measured_vs_model_bandwidth(traffic_run, round_number)
        for round_number in range(1, ROUNDS + 1)
    ]
    uploads = {comparison["measured_upload_bytes"] for comparison in comparisons}
    downloads = {comparison["measured_download_bytes"] for comparison in comparisons}
    assert len(uploads) == 1
    assert len(downloads) == 1


def test_measured_bandwidth_batched_population(benchmark):
    """The fig2 companion on the batched population path.

    One framed upload per chain and one framed download per mailbox shard
    replace the per-user envelopes; the per-user split is reconstructed
    from the population's rosters.  Uploads stay within the 5% bar (the
    batch adds a 4-byte length prefix per submission); downloads carry the
    owner key explicitly on the wire (+32 B/user/round), so the batched
    download bar is a documented 8%.
    """
    config = DeploymentConfig(
        num_servers=8,
        num_users=10,
        num_chains=4,
        malicious_fraction=0.2,
        security_bits=16,
        seed=1702,
        group_kind="modp",
        transport="instrumented",
        population="batched",
    )
    deployment = Deployment.create(config)
    a, b = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(a, b)
    deployment.run_round(payloads={a: b"ping", b: b"pong"})
    comparison = benchmark.pedantic(
        lambda: measured_vs_model_bandwidth(deployment, 1), rounds=1, iterations=1
    )
    save_result(
        "transport_measured_vs_model_bandwidth_batched",
        "Per-user bytes per round reconstructed from population batch frames\n"
        + render_table(
            ["direction", "measured B", "model B", "delta"],
            [
                ["upload", f"{comparison['measured_upload_bytes']:.0f}",
                 comparison["model_upload_bytes"],
                 f"{100 * (comparison['upload_ratio'] - 1):+.2f}%"],
                ["download", f"{comparison['measured_download_bytes']:.0f}",
                 comparison["model_download_bytes"],
                 f"{100 * (comparison['download_ratio'] - 1):+.2f}%"],
            ],
        ),
    )
    assert comparison["users_measured"] == config.num_users
    assert abs(comparison["upload_ratio"] - 1) <= TOLERANCE
    assert abs(comparison["download_ratio"] - 1) <= 0.08
    deployment.close()


def test_measured_latency_companion(benchmark, traffic_run):
    deployment = traffic_run
    comparison = benchmark(measured_vs_model_latency, deployment, 1)
    measured = comparison["measured_seconds"]
    modelled = comparison["modelled_network_seconds"]
    save_result(
        "transport_measured_vs_model_latency",
        "Round network latency: measured critical path vs. uniform-load model\n"
        + render_table(
            ["round", "measured s", "modelled s"],
            [[1, f"{measured:.4f}", f"{modelled:.4f}"]],
        ),
    )
    assert measured > 0
    # The uniform-load prediction and the measured critical path may diverge
    # by the chain-assignment imbalance, which is small at this scale.
    assert measured == pytest.approx(modelled, rel=0.25)
