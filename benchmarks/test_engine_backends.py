"""Round-engine backends: serial vs. parallel vs. multiprocess vs. staggered.

Times the *real* protocol stack (on the fast test group, so batches are
non-trivial without taking minutes) under each execution strategy, verifies
the strategies deliver bit-identical reports, and records the measured
round throughputs.  In this pure-Python build the GIL bounds the thread
pool's speedup and CI machines may expose a single core, so the
benchmark's job is to exercise the engine's concurrency paths — including
the fork/encode/merge cycle of the multiprocess backend — and catch
regressions in their overheads, not to demonstrate multicore scaling (see
DESIGN.md §2.2).
"""

import time

from repro.coordinator.network import Deployment, DeploymentConfig

from benchmarks.conftest import save_result

ROUNDS = 4


def make_deployment(backend="serial"):
    config = DeploymentConfig(
        num_servers=6,
        num_users=12,
        num_chains=4,
        chain_length=2,
        seed=77,
        group_kind="modp",
        execution_backend=backend,
    )
    return Deployment.create(config)


def script(deployment):
    a, b = deployment.users[0].name, deployment.users[1].name
    deployment.start_conversation(a, b)
    return [
        deployment.round_spec(payloads={a: b"m%d" % index, b: b"r%d" % index})
        for index in range(ROUNDS)
    ]


def run_mode(mode):
    if mode in ("parallel", "staggered+parallel"):
        backend = "parallel"
    elif mode == "multiprocess":
        backend = "multiprocess"
    else:
        backend = "serial"
    deployment = make_deployment(backend)
    specs = script(deployment)
    start = time.perf_counter()
    reports = deployment.run_rounds(specs, staggered=mode.startswith("staggered"))
    elapsed = time.perf_counter() - start
    deployment.close()
    return reports, elapsed


def test_engine_backends(benchmark):
    timings = {}
    fingerprints = {}
    for mode in ("serial", "parallel", "multiprocess", "staggered", "staggered+parallel"):
        reports, elapsed = run_mode(mode)
        assert all(report.all_chains_delivered() for report in reports)
        timings[mode] = elapsed
        fingerprints[mode] = [report.canonical_bytes() for report in reports]

    # All strategies are observationally identical under the fixed seed.
    assert len(set(map(tuple, fingerprints.values()))) == 1

    benchmark.pedantic(lambda: run_mode("staggered+parallel"), rounds=1, iterations=1)

    lines = ["Round-engine backends (%d rounds, 4 chains, 12 users, modp group):" % ROUNDS]
    for mode, elapsed in timings.items():
        lines.append(
            f"  {mode:20s} {elapsed:6.2f} s total, {ROUNDS / elapsed:6.2f} rounds/s"
        )
    lines.append("  (all five strategies byte-identical under seed 77)")
    save_result("engine_backends", "\n".join(lines))
