"""Figure 6: XRD latency vs. the assumed fraction of malicious servers f.

Paper reference: with 2M users and 100 servers, latency grows as
``-1/log(f)`` because the chain length k does (≈ 251 s at f = 0.2, growing
steeply beyond f ≈ 0.4).  Stadium's chains also lengthen with f but its
verifiable shuffles make the effect super-linear; Pung is unaffected because
it already assumes f = 1.
"""

import pytest

from repro.analysis import figures, render_figure
from repro.baselines import PungModel, StadiumModel
from repro.mixnet.chain import required_chain_length

from benchmarks.conftest import save_result


def test_fig6_latency_vs_f(benchmark):
    figure = benchmark(figures.figure6)
    save_result("fig6_latency_vs_f", render_figure(figure))
    fractions = figure["x"]
    latencies = dict(zip(fractions, figure["series"]["XRD latency"]))
    chain_lengths = dict(zip(fractions, figure["series"]["chain length k"]))

    assert latencies[0.2] == pytest.approx(251, rel=0.10)
    # Latency is monotone in f and tracks the chain length.
    assert [latencies[f] for f in fractions] == sorted(latencies[f] for f in fractions)
    assert [chain_lengths[f] for f in fractions] == sorted(chain_lengths[f] for f in fractions)
    # The -1/log(f) shape: latency roughly doubles from f=0.1 to f=0.4.
    assert 2.0 < latencies[0.45] / latencies[0.05] < 4.5


def test_fig6_comparisons_with_other_systems(benchmark):
    def run():
        stadium = StadiumModel()
        pung = PungModel("xpir")
        return {
            "stadium_ratio": stadium.latency_vs_f(2_000_000, 100, 0.4)
            / stadium.latency_vs_f(2_000_000, 100, 0.2),
            "pung_ratio": pung.latency(2_000_000, 100) / pung.latency(2_000_000, 100),
            "k_ratio": required_chain_length(0.4, 100) / required_chain_length(0.2, 100),
        }

    ratios = benchmark(run)
    # Stadium suffers super-linearly in the chain-length increase; Pung not at all.
    assert ratios["stadium_ratio"] > ratios["k_ratio"]
    assert ratios["pung_ratio"] == 1.0
