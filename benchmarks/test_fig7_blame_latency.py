"""Figure 7: worst-case blame-protocol latency vs. malicious users in a chain.

Paper reference: ~13 s for 5,000 malicious users, growing linearly to ~150 s
for 100,000 (f = 0.2, 100 servers).  Our analytic model reproduces the linear
slope at the same order of magnitude (about 2-3× lower absolute numbers; see
EXPERIMENTS.md).  A micro-scale run of the *real* blame protocol is also
benchmarked so the measured per-ciphertext cost backs the model.
"""

import pytest

from repro.analysis import figures, render_figure
from repro.coordinator.adversary import forge_misauthenticated_submission
from repro.crypto.group import ModPGroup
from repro.crypto.keys import KeyPair

from benchmarks.conftest import save_result
from tests.test_ahs_protocol import build_chain, make_submission


def test_fig7_blame_latency_model(benchmark):
    figure = benchmark(figures.figure7)
    save_result("fig7_blame_latency", render_figure(figure))
    counts = figure["x"]
    latencies = dict(zip(counts, figure["series"]["blame latency"]))
    # Linear growth, same order of magnitude as the paper's 13 s / 150 s.
    assert 1 < latencies[5_000] < 40
    assert 30 < latencies[100_000] < 400
    slope_low = (latencies[50_000] - latencies[20_000]) / 30_000
    slope_high = (latencies[100_000] - latencies[80_000]) / 20_000
    assert slope_low == pytest.approx(slope_high, rel=0.05)


def test_blame_protocol_execution_microscale(benchmark):
    """Run the real blame protocol (8 honest + 4 malicious users, 3-server chain)."""
    group = ModPGroup(bits=96)

    def run():
        chain = build_chain(group, length=3, seed=77)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        from repro.client.user import ChainKeysView

        view = ChainKeysView(
            chain_id=chain.chain_id,
            mixing_publics=chain.public_keys.mixing_publics,
            aggregate_inner_public=chain.aggregate_inner_public(1),
        )
        submissions = [
            make_submission(group, chain, 1, f"user-{i}", recipient.public_bytes, b"\x01" * 32)
            for i in range(8)
        ]
        submissions += [
            forge_misauthenticated_submission(group, view, 1, f"mallory-{i}") for i in range(4)
        ]
        chain.accept_submissions(1, submissions)
        return chain.run_round(1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.delivered
    assert sorted(result.blame_verdict.malicious_users) == [f"mallory-{i}" for i in range(4)]
    assert len(result.mailbox_messages) == 8
