"""Ablation: staggered vs. aligned server positions across chains (§5.2.1).

The paper staggers each server's position across the chains it belongs to so
no server idles while upstream chains work.  The discrete-event pipeline
simulator quantifies the effect: with aligned placements the makespan grows
because every chain contends for the same server at the same stage.
"""

from repro.crypto.randomness import PublicRandomnessBeacon
from repro.mixnet.chain import form_chains, stagger_positions
from repro.simulation.events import simulate_chain_pipeline

from benchmarks.conftest import save_result

NUM_SERVERS = 20
NUM_CHAINS = 20
CHAIN_LENGTH = 6
STAGE_TIME = 1.0


def _topologies(stagger):
    beacon = PublicRandomnessBeacon(seed=b"stagger-ablation")
    chains = form_chains(
        [f"server-{i}" for i in range(NUM_SERVERS)],
        NUM_CHAINS,
        CHAIN_LENGTH,
        beacon=beacon,
        stagger=False,
    )
    if stagger:
        chains = stagger_positions(chains)
    return [chain.servers for chain in chains]


def test_ablation_stagger_pipeline(benchmark):
    def run():
        staggered = simulate_chain_pipeline(_topologies(True), STAGE_TIME, cores_per_server=1)
        aligned = simulate_chain_pipeline(_topologies(False), STAGE_TIME, cores_per_server=1)
        return staggered, aligned

    staggered, aligned = benchmark(run)
    save_result(
        "ablation_stagger",
        "\n".join(
            [
                f"Staggering ablation ({NUM_CHAINS} chains x {CHAIN_LENGTH} stages on {NUM_SERVERS} servers):",
                f"  staggered makespan: {staggered.makespan:6.1f} (min utilisation {staggered.min_utilisation():.2f})",
                f"  aligned makespan:   {aligned.makespan:6.1f} (min utilisation {aligned.min_utilisation():.2f})",
            ]
        ),
    )
    # Staggering should never hurt, and usually helps utilisation/makespan.
    assert staggered.makespan <= aligned.makespan * 1.05
