"""Ablation: the paper's √2-approximation chain selection vs. alternatives.

DESIGN.md §5 calls out the chain-selection design choice: the paper's scheme
uses ℓ ≈ √(2n) chains per user against a √n lower bound (§4.2, §9).  This
bench quantifies what the alternatives cost:

* **everyone-on-chain-1** — trivially satisfies the intersection property but
  concentrates the entire load on one chain (no horizontal scaling at all);
* **paper scheme** — ℓ ≈ √(2n), load spread evenly across chains;
* **ideal √n** — the lower bound the paper says a better construction might
  approach, worth up to √2× speed-up.
"""

import hashlib
import math

from repro.analysis import render_table
from repro.client import chain_selection as cs
from repro.simulation.latency import xrd_latency

from benchmarks.conftest import save_result

NUM_CHAINS = 100
NUM_USERS = 5000


def _synthetic_keys(count):
    return [hashlib.sha256(b"ablation-user-%d" % index).digest() for index in range(count)]


def _per_chain_load_paper(keys):
    load = [0] * NUM_CHAINS
    for key in keys:
        for chain in cs.chains_for_user(key, NUM_CHAINS):
            load[chain] += 1
    return load


def test_ablation_chain_selection_load(benchmark):
    keys = _synthetic_keys(NUM_USERS)
    load = benchmark(_per_chain_load_paper, keys)
    ell = cs.ell_for_chains(NUM_CHAINS)
    expected = NUM_USERS * ell / NUM_CHAINS

    trivial_max_load = NUM_USERS  # everyone sends to chain 1
    ideal_per_user = math.isqrt(NUM_CHAINS)
    ideal_load = NUM_USERS * ideal_per_user / NUM_CHAINS

    rows = [
        ["everyone-on-chain-1", 1, trivial_max_load],
        ["paper (sqrt(2n))", ell, max(load)],
        ["ideal lower bound (sqrt(n))", ideal_per_user, round(ideal_load)],
    ]
    save_result(
        "ablation_chain_selection",
        "Chain-selection ablation (100 chains, 5000 users)\n"
        + render_table(["scheme", "messages per user", "max chain load"], rows),
    )
    # The paper's scheme keeps the maximum chain load within ~2x of the mean
    # (the factor-2 slack comes from wrapping the ℓ(ℓ+1)/2 logical chains onto
    # n physical chains)...
    assert max(load) < 2 * expected
    # ...and well below the trivial scheme's single hot chain, even though the
    # paper scheme sends ℓ times more messages in total.
    assert max(load) * 2.5 < trivial_max_load
    # The ideal scheme would save at most the sqrt(2) factor in user cost.
    assert ell <= math.ceil(math.sqrt(2) * ideal_per_user) + 1


def test_ablation_ell_effect_on_latency(benchmark):
    """End-to-end effect of ℓ: the √2-approximation costs ≤ √2 over the ideal."""

    def run():
        paper = xrd_latency(2_000_000, NUM_CHAINS)
        # An idealised scheme with ℓ = √n would reduce per-chain load by √2.
        return paper, paper / math.sqrt(2)

    paper_latency, ideal_latency = benchmark(run)
    assert paper_latency / ideal_latency < 1.5
