"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure or table from the paper's
evaluation.  Besides the pytest-benchmark timing, every run writes the
rendered data table to ``results/<figure>.txt`` so the numbers that back
EXPERIMENTS.md can be re-inspected without re-running anything.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered figure/table under results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def paper_cost_model():
    from repro.simulation.costmodel import CostModel

    return CostModel.paper_testbed()
