"""Reproduction scorecard: every paper-reported quantity vs. this repository.

This is the machine-checkable summary behind EXPERIMENTS.md — regenerating it
is cheap, and the assertion that every entry is within its tolerance is the
repository's headline reproduction claim in one place.
"""

from repro.analysis.scorecard import build_scorecard, render_scorecard

from benchmarks.conftest import save_result


def test_reproduction_scorecard(benchmark):
    entries = benchmark(build_scorecard)
    save_result("scorecard", render_scorecard(entries))
    off_target = [entry for entry in entries if not entry.within_tolerance]
    assert not off_target, [
        (entry.figure, entry.quantity, entry.ratio) for entry in off_target
    ]
    assert len(entries) >= 15
