"""Real-socket transport overhead: TCP loopback vs. the in-process transport.

The distributed runtime's parity tests prove the TCP transport changes
*nothing observable*; this companion measures what it costs.  A loopback
reflector (one live listener, real length-prefixed frames, full encode →
socket → decode → encode → socket → decode round trip per delivery) is
timed against the function-call transport on identical envelopes, and the
pipelined ``deliver_many`` path is compared against the same envelopes
delivered one blocking request at a time — the reason the engine's batch
fan-outs go through ``request_batch`` rather than a loop.
"""

import time

from repro.crypto.group import ModPGroup
from repro.transport import InProcTransport
from repro.transport.envelope import SUBMISSION, Envelope
from repro.transport.tcp import TcpTransport

from benchmarks.conftest import save_result
from tests.test_transport import make_submission

BATCH = 32


def submission_envelopes(group, count):
    envelopes = []
    for index in range(count):
        submission = make_submission(group, chain_id=1, sender=f"user-{index}")
        envelopes.append(
            Envelope(
                kind=SUBMISSION,
                source=f"user-{index}",
                destination="server-0",
                round_number=1,
                payload=submission,
            )
        )
    return envelopes


def test_tcp_loopback_roundtrip(benchmark):
    group = ModPGroup(bits=96)
    transport = TcpTransport(group, node_name="bench")
    [envelope] = submission_envelopes(group, 1)
    try:
        reply = benchmark(transport.deliver, envelope)
        assert reply == envelope.payload
    finally:
        transport.close()


def test_pipelined_batch_vs_sequential_requests():
    group = ModPGroup(bits=96)
    envelopes = submission_envelopes(group, BATCH)
    inproc = InProcTransport()
    tcp = TcpTransport(group, node_name="bench-batch")
    try:
        expected = [inproc.deliver(envelope) for envelope in envelopes]

        started = time.perf_counter()
        sequential = [tcp.deliver(envelope) for envelope in envelopes]
        sequential_seconds = time.perf_counter() - started

        started = time.perf_counter()
        pipelined = tcp.deliver_many(envelopes)
        pipelined_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for envelope in envelopes:
            inproc.deliver(envelope)
        inproc_seconds = time.perf_counter() - started
    finally:
        tcp.close()
        inproc.close()

    assert sequential == expected
    assert pipelined == expected
    # The hard bar is correctness-parity, measured elsewhere; here we only
    # require pipelining not to regress sequential delivery (it is usually
    # several times faster, but CI timing noise gets a wide allowance).
    assert pipelined_seconds < sequential_seconds * 1.25

    lines = [
        "TCP loopback transport overhead "
        f"({BATCH} submission envelopes, one connection)",
        f"  in-process function call : {inproc_seconds * 1e3:8.2f} ms total",
        f"  tcp, sequential requests : {sequential_seconds * 1e3:8.2f} ms total "
        f"({sequential_seconds / BATCH * 1e6:7.0f} us/envelope)",
        f"  tcp, pipelined batch     : {pipelined_seconds * 1e3:8.2f} ms total "
        f"({pipelined_seconds / BATCH * 1e6:7.0f} us/envelope, "
        f"{sequential_seconds / max(pipelined_seconds, 1e-9):.1f}x vs sequential)",
    ]
    save_result("tcp_loopback_roundtrip", "\n".join(lines))
