"""Microbenchmarks of the primitives this library actually executes.

These numbers calibrate :meth:`CostModel.from_primitive_costs` and quantify
the Python-vs-Go substrate gap documented in DESIGN.md §3: the protocol logic
is identical to the paper's prototype, but each primitive is orders of
magnitude slower in pure Python, which is why the figure benchmarks use the
paper-calibrated cost model rather than wall-clock measurements at scale.
"""

from repro.crypto.aead import adec, aenc
from repro.crypto.group import Ed25519Group, ModPGroup
from repro.crypto.nizk import prove_dleq, prove_dlog, verify_dleq, verify_dlog
from repro.crypto.onion import encrypt_inner, encrypt_outer_layers
from repro.simulation.microbench import measured_cost_model

from benchmarks.conftest import save_result

ED = Ed25519Group()
MODP = ModPGroup(bits=96)
KEY = b"\x07" * 32


def test_ed25519_scalar_mult(benchmark):
    point = ED.base_mult(ED.random_scalar())
    scalar = ED.random_scalar()
    benchmark(ED.scalar_mult, point, scalar)


def test_modp_exponentiation(benchmark):
    element = MODP.base_mult(MODP.random_scalar())
    scalar = MODP.random_scalar()
    benchmark(MODP.scalar_mult, element, scalar)


def test_aead_encrypt_payload(benchmark):
    benchmark(aenc, KEY, 1, b"x" * 304)


def test_aead_decrypt_payload(benchmark):
    ciphertext = aenc(KEY, 1, b"x" * 304)
    benchmark(adec, KEY, 1, ciphertext)


def test_schnorr_prove(benchmark):
    secret = ED.random_scalar()
    benchmark(prove_dlog, ED, ED.base(), secret)


def test_schnorr_verify(benchmark):
    secret = ED.random_scalar()
    proof = prove_dlog(ED, ED.base(), secret)
    public = ED.base_mult(secret)
    benchmark(verify_dlog, ED, ED.base(), public, proof)


def test_dleq_prove(benchmark):
    secret = ED.random_scalar()
    base2 = ED.base_mult(ED.random_scalar())
    benchmark(prove_dleq, ED, ED.base(), base2, secret)


def test_dleq_verify(benchmark):
    secret = ED.random_scalar()
    base2 = ED.base_mult(ED.random_scalar())
    proof = prove_dleq(ED, ED.base(), base2, secret)
    benchmark(
        verify_dleq,
        ED,
        ED.base(),
        ED.base_mult(secret),
        base2,
        ED.scalar_mult(base2, secret),
        proof,
    )


def test_client_builds_one_submission(benchmark):
    """One full AHS onion (inner envelope + 4 outer layers) on the real curve."""
    mixing_publics = [ED.base_mult(ED.random_scalar()) for _ in range(4)]
    aggregate_inner = ED.base_mult(ED.random_scalar())

    def build():
        envelope = encrypt_inner(ED, aggregate_inner, 1, b"m" * 304)
        ephemeral = ED.random_scalar()
        return encrypt_outer_layers(ED, mixing_publics, 1, envelope.to_bytes(), ephemeral)

    benchmark(build)


def test_measured_cost_model_summary(benchmark):
    model = benchmark.pedantic(measured_cost_model, kwargs={"iterations": 5}, rounds=1, iterations=1)
    lines = [
        "Measured (pure-Python) primitive costs vs. paper-calibrated testbed costs:",
        f"  scalar multiplication: {model.scalar_mult * 1e3:8.3f} ms   (paper testbed ~0.08 ms)",
        f"  AEAD (fixed):          {model.aead_fixed * 1e3:8.3f} ms",
        f"  NIZK verify:           {model.nizk_verify * 1e3:8.3f} ms",
        f"  mix cost per msg/hop:  {model.mix_per_message_per_hop * 1e3:8.3f} ms   (paper-calibrated ~0.028 ms)",
    ]
    save_result("microbench_cost_model", "\n".join(lines))
    assert model.scalar_mult > 0
