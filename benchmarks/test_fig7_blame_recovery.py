"""Figure 7 companion: blame + recovery latency vs. chain length.

The paper's Figure 7 prices the blame protocol for malicious users; the
recovery half it assumes after a *server* conviction (§6.4: the convicted
server is removed) is modelled by
:func:`repro.simulation.latency.recovery_latency` and executed for real by
the fault-injection scenario engine: tamper → blame → evict → re-form →
resume.  This benchmark runs the real path at micro scale on the test group
for growing chain lengths and renders the analytic model alongside, so the
measured per-length growth backs the model's linear-in-k shape.
"""

import time

import pytest

from repro.analysis import figures, render_figure
from repro.coordinator.network import Deployment, DeploymentConfig
from repro.faults import ScenarioRunner
from repro.faults.scenarios import tamper_and_recover
from repro.simulation.latency import recovery_latency

from benchmarks.conftest import save_result


def run_recovery_scenario(chain_length: int):
    """Tamper at round 2 on a chain of ``chain_length``; recover; resume."""
    deployment = Deployment.create(
        DeploymentConfig(
            num_servers=chain_length + 1,
            num_users=6,
            num_chains=3,
            chain_length=chain_length,
            seed=42,
            group_kind="modp",
        )
    )
    report = ScenarioRunner(deployment, tamper_and_recover()).run()
    deployment.close()
    return report


def test_fig7_recovery_latency_model(benchmark):
    figure = benchmark(figures.figure7_recovery)
    lengths = figure["x"]
    latencies = dict(zip(lengths, figure["series"]["blame + recovery latency"]))
    # Linear in k: the ordered ceremony dominates, so doubling the chain
    # roughly doubles the cost once past the fixed announcement RTT.
    slope_low = (latencies[8] - latencies[4]) / 4
    slope_high = (latencies[32] - latencies[16]) / 16
    assert slope_low == pytest.approx(slope_high, rel=0.05)
    assert all(latencies[a] < latencies[b] for a, b in zip(lengths, lengths[1:]))

    # Measure the *real* detect → blame → evict → re-form → resume path at
    # micro scale and render it next to the model.
    measured = []
    for chain_length in (2, 3, 4):
        start = time.perf_counter()
        report = run_recovery_scenario(chain_length)
        measured.append(time.perf_counter() - start)
        assert report.evicted_servers == ["server-0"] or report.evicted_servers
        assert report.outcome_for(3).all_delivered
        assert report.outcome_for(4).all_delivered
    rendered = render_figure(figure) + "\n\n" + "\n".join(
        f"measured scenario (modp micro-scale), k={k}: {seconds:.3f} s wall"
        for k, seconds in zip((2, 3, 4), measured)
    )
    save_result("fig7_blame_recovery", rendered)


def test_blame_recovery_execution_microscale(benchmark):
    """Benchmark the real tamper → recover → resume scenario (k = 3)."""
    report = benchmark.pedantic(run_recovery_scenario, args=(3,), rounds=1, iterations=1)
    fault = report.outcome_for(2)
    assert fault.verdicts[0].malicious_servers == ["server-0"]
    assert report.recoveries and report.recoveries[0].chain_id == 0
    assert report.outcome_for(3).all_delivered
    assert report.outcome_for(4).all_delivered


def test_recovery_latency_scales_with_flagged_ciphertexts():
    """More flagged ciphertexts lengthen the walk, not the ceremony."""
    base = recovery_latency(8, flagged_ciphertexts=1)
    many = recovery_latency(8, flagged_ciphertexts=101)
    assert many > base
    # The ceremony term is unchanged: the difference is pure blame work,
    # so equal increments in flagged count give equal increments in latency.
    assert many - base == pytest.approx(
        recovery_latency(8, flagged_ciphertexts=201) - many, rel=1e-9
    )
