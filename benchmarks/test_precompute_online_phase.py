"""AHS precompute companion (ISSUE 5): the measured online-phase latency drop.

Figures 4 and 5 price XRD's *online* critical path — what a round costs
between the batch closing and the mailboxes filling.  The precompute stage
(§5.2.1 / DESIGN.md §8) moves the chains' public-key work (DH blinding,
outer-layer key derivation) off that path: it runs ahead of the round — and
under the staggered scheduler, hidden behind the previous round's mixing —
so the online mix phase is left with symmetric crypto plus the aggregate
proofs.

This module measures exactly that claim on the real stack:
``report.stage_seconds["mix"]`` (the online phase) with precomputation
enabled must be measurably below the online-only reference path at equal
configuration, and the win is regression-gated via
``benchmarks/baselines/baseline.json``.
"""

from __future__ import annotations

import statistics

from repro.coordinator.network import Deployment, DeploymentConfig

from benchmarks.conftest import save_result

#: Floor for the measured online-phase speedup.  The modp reference box
#: measures ~2x (the blinding + shared-secret passes are roughly half the
#: online public-key work; NIZK intake verification and the aggregate
#: proofs remain online); the gate sits far enough below to absorb CI noise
#: while still failing loudly if the precompute stage stops feeding the
#: online path.
MIN_SPEEDUP = 1.15


def measure_phases(precompute: bool, num_users: int = 600, rounds: int = 2):
    """Mean per-round phase timings for a deployment with/without precompute."""
    deployment = Deployment.create(
        DeploymentConfig(
            num_servers=4,
            num_users=num_users,
            num_chains=4,
            chain_length=2,
            seed=7,
            group_kind="modp",
            use_cover_messages=False,
            population="batched",
            precompute=precompute,
        )
    )
    reports = deployment.run_rounds([deployment.round_spec() for _ in range(rounds)])
    deployment.close()
    assert all(report.all_chains_delivered() for report in reports)
    return {
        "online": statistics.mean(r.stage_seconds["mix"] for r in reports),
        "precompute": statistics.mean(
            r.stage_seconds.get("precompute", 0.0) for r in reports
        ),
    }


def test_precompute_online_phase_drop(benchmark):
    """The acceptance measurement: online mix phase, precompute vs. reference."""

    def compare():
        return measure_phases(precompute=True), measure_phases(precompute=False)

    with_precompute, reference = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = reference["online"] / with_precompute["online"]
    save_result(
        "precompute_online_phase",
        "Online mix phase, 600 users (modp, 4 chains of length 2, batched population):\n"
        f"  online-only reference : {reference['online'] * 1e3:8.1f} ms/round\n"
        f"  with precompute stage : {with_precompute['online'] * 1e3:8.1f} ms/round "
        f"(+{with_precompute['precompute'] * 1e3:.1f} ms precomputed off-path)\n"
        f"  online-phase speedup  : {speedup:.2f}x",
    )
    # The precompute deployment really did run the stage, and the online
    # phase got measurably faster — the ISSUE 5 acceptance criterion.
    assert with_precompute["precompute"] > 0.0
    assert speedup > MIN_SPEEDUP


def test_precompute_hides_behind_stagger(benchmark):
    """Under the staggered scheduler the precompute runs in the overlap
    window (while the previous round mixes), so enabling it must not grow
    the end-to-end schedule by anything like the precompute's own cost."""

    def run(precompute: bool) -> float:
        import time

        deployment = Deployment.create(
            DeploymentConfig(
                num_servers=4,
                num_users=300,
                num_chains=4,
                chain_length=2,
                seed=11,
                group_kind="modp",
                use_cover_messages=False,
                population="batched",
                precompute=precompute,
            )
        )
        specs = [deployment.round_spec() for _ in range(3)]
        started = time.perf_counter()
        reports = deployment.run_rounds(specs, staggered=True)
        elapsed = time.perf_counter() - started
        deployment.close()
        assert all(report.all_chains_delivered() for report in reports)
        # Every staggered round served its online phase from the tables.
        if precompute:
            assert all(r.stage_seconds.get("precompute", 0.0) > 0.0 for r in reports)
        return elapsed

    def compare():
        run(True)  # warm the process-wide caches so neither side pays cold-start
        run(False)
        return run(True), run(False)

    with_precompute, reference = benchmark.pedantic(compare, rounds=1, iterations=1)
    save_result(
        "precompute_stagger_overlap",
        "Three staggered rounds, 300 users: "
        f"precompute {with_precompute:.2f}s vs online-only {reference:.2f}s "
        "(public-key work hidden in the overlap window)",
    )
    # Moving work off the online path must not balloon the pipelined wall
    # clock (in this single-process build the overlap is concurrency under
    # the GIL, so ~parity is the expectation, not a wall-clock win);
    # generous bound because both runs share one noisy CI box.
    assert with_precompute < reference * 1.5
