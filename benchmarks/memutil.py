"""Peak-RSS measurement shared by the scale benchmarks (ISSUE 6).

``resource.getrusage(...).ru_maxrss`` is a *whole-process high-water mark*:
monotonic, never reset by the kernel, so in a multi-point benchmark every
point after the largest one silently inherits its predecessor's peak and
per-point numbers are not attributable.  Linux exposes a reset knob —
writing ``5`` to ``/proc/self/clear_refs`` zeroes the ``VmHWM`` field of
``/proc/self/status`` down to the current RSS — which :class:`PeakRssMeter`
uses to give each measured window its own peak:

* ``__enter__`` collects garbage, asks glibc to return freed arenas to the
  kernel (``malloc_trim``), and resets ``VmHWM``;
* ``__exit__`` reads the window's own ``VmHWM`` and, for workloads that
  fork (the streaming population build pool, the multiprocess mix
  backend), folds in ``RUSAGE_CHILDREN``'s high-water mark when some child
  reaped during the window exceeded every child before it (that counter is
  itself a monotonic max and cannot be reset — the caveat is surfaced via
  :attr:`PeakRssMeter.children_attributable`).

On platforms without ``/proc`` the meter degrades to the monotonic
``ru_maxrss`` (normalised to bytes — Linux reports KiB, macOS bytes), which
is still correct for single-point runs.
"""

from __future__ import annotations

import ctypes
import gc
import resource
import sys

__all__ = [
    "peak_rss_bytes",
    "children_peak_rss_bytes",
    "current_rss_bytes",
    "resettable_peak_rss_bytes",
    "reset_peak_rss",
    "PeakRssMeter",
]

_CLEAR_REFS = "/proc/self/clear_refs"
_STATUS = "/proc/self/status"


def _maxrss_to_bytes(rss: int) -> int:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def peak_rss_bytes() -> int:
    """This process's peak resident set size (monotonic high-water mark)."""
    return _maxrss_to_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def children_peak_rss_bytes() -> int:
    """The largest peak RSS among *reaped* child processes (monotonic)."""
    return _maxrss_to_bytes(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)


def _read_status_field(field: str) -> int | None:
    try:
        with open(_STATUS) as status:
            for line in status:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024  # kB
    except OSError:
        return None
    return None


def current_rss_bytes() -> int:
    """The process's current resident set size."""
    value = _read_status_field("VmRSS")
    return value if value is not None else peak_rss_bytes()


def resettable_peak_rss_bytes() -> int:
    """``VmHWM``: like :func:`peak_rss_bytes` but resettable on Linux."""
    value = _read_status_field("VmHWM")
    return value if value is not None else peak_rss_bytes()


def _malloc_trim() -> None:
    """Ask glibc to return freed arena memory to the kernel.

    Without this, pages freed by a previous benchmark point linger in
    malloc's arenas, stay resident, and become the floor the next point's
    reset lands on.  Best-effort: silently a no-op off glibc.
    """
    try:
        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except Exception:
        pass


def reset_peak_rss() -> bool:
    """Reset ``VmHWM`` to the current RSS (Linux).  Returns success."""
    try:
        with open(_CLEAR_REFS, "w") as clear_refs:
            clear_refs.write("5")
        return True
    except OSError:
        return False


class PeakRssMeter:
    """Attribute a peak-RSS figure to one measured window.

    >>> with PeakRssMeter() as meter:
    ...     run_round()
    >>> meter.peak_bytes  # this window's own high-water mark

    Attributes after exit:

    * ``self_peak_bytes`` — the parent process's peak during the window
      (per-window on Linux; the monotonic whole-process peak elsewhere,
      see ``attributable``);
    * ``children_peak_bytes`` — the largest child peak, when a child reaped
      during this window set a new children high-water mark (0 when no
      child did — ``children_attributable`` distinguishes "no forked work"
      from "bounded by an earlier window's child");
    * ``peak_bytes`` — max of the two: the figure the scale tables report.
    """

    def __init__(self) -> None:
        self.attributable = False
        self.children_attributable = False
        self.baseline_bytes = 0
        self.self_peak_bytes = 0
        self.children_peak_bytes = 0
        self.peak_bytes = 0
        self._children_before = 0

    def __enter__(self) -> "PeakRssMeter":
        gc.collect()
        _malloc_trim()
        self.attributable = reset_peak_rss()
        self.baseline_bytes = current_rss_bytes()
        self._children_before = children_peak_rss_bytes()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.self_peak_bytes = (
            resettable_peak_rss_bytes() if self.attributable else peak_rss_bytes()
        )
        children_after = children_peak_rss_bytes()
        if children_after > self._children_before:
            # A monotonic max that moved: some child reaped inside this
            # window reached exactly this peak.
            self.children_peak_bytes = children_after
            self.children_attributable = True
        self.peak_bytes = max(self.self_peak_bytes, self.children_peak_bytes)
