"""Figure 8: conversation failure rate vs. server churn rate.

Paper reference: with chains of ~32 servers, 1% server churn already breaks
~27% of conversations and 4% churn breaks ~70%, nearly independent of the
network size (100 / 500 / 1000 servers).  Both the analytic curve and a
Monte-Carlo simulation over the real chain-formation/selection code are
generated.
"""

import pytest

from repro.analysis import figures, render_figure
from repro.simulation.churn import simulate_failure_rate

from benchmarks.conftest import save_result


def test_fig8_churn_analytic(benchmark):
    figure = benchmark(figures.figure8)
    save_result("fig8_churn", render_figure(figure))
    series_100 = dict(zip(figure["x"], figure["series"]["XRD (100 servers)"]))
    series_1000 = dict(zip(figure["x"], figure["series"]["XRD (1000 servers)"]))
    assert series_100[0.01] == pytest.approx(0.27, abs=0.03)
    assert series_100[0.04] == pytest.approx(0.72, abs=0.05)
    # Nearly independent of network size (k only grows logarithmically).
    assert abs(series_1000[0.01] - series_100[0.01]) < 0.05


def test_fig8_monte_carlo_agrees_with_analytic(benchmark):
    def run():
        return simulate_failure_rate(
            num_servers=60,
            churn_rate=0.02,
            security_bits=20,
            trials=8,
            conversations_per_trial=150,
            seed=5,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "fig8_monte_carlo",
        "Monte-Carlo churn check (60 servers, 2% churn): "
        f"simulated={result.failure_rate:.3f} analytic={result.analytic_rate:.3f} "
        f"(chain length k={result.chain_length})",
    )
    assert result.failure_rate == pytest.approx(result.analytic_rate, abs=0.12)
