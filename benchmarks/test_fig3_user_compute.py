"""Figure 3: per-user single-core computation per round vs. number of servers.

Paper reference: XRD client computation stays below ~0.5 s up to 2000 servers
(and parallelises across cores); Pung/XPIR client costs are flat in the number
of servers but grow with the user count; Stadium and Atom are negligible.
"""

from repro.analysis import figures, render_figure

from benchmarks.conftest import save_result


def test_fig3_user_compute(benchmark):
    figure = benchmark(figures.figure3)
    save_result("fig3_user_compute", render_figure(figure))
    xrd = figure["series"]["XRD"]
    stadium = figure["series"]["Stadium"]
    atom = figure["series"]["Atom"]
    pung_1m = figure["series"]["Pung (XPIR; 1M users)"]
    pung_4m = figure["series"]["Pung (XPIR; 4M users)"]
    # XRD grows as sqrt(N) but stays under ~0.5 s at 2000 servers.
    assert xrd == sorted(xrd)
    assert xrd[-1] < 0.6
    # Pung does not depend on N; more users means more client work.
    assert pung_1m[0] == pung_1m[-1]
    assert pung_4m[0] > pung_1m[0]
    # Stadium and Atom are cheap and flat.
    assert max(stadium) < 0.01
    assert max(atom) < 0.05
