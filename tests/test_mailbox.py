"""Tests for mailboxes, mailbox servers, and the sharded hub."""

import pytest

from repro.errors import MailboxError
from repro.mailbox import Mailbox, MailboxHub, MailboxServer
from repro.mixnet.messages import MailboxMessage, MessageBody

OWNER = b"\x01" * 32
OTHER = b"\x02" * 32
KEY = b"\x09" * 32


def sealed(recipient=OWNER, round_number=1, content=b"hello"):
    return MailboxMessage.seal(recipient, KEY, round_number, MessageBody.data(content))


class TestMailbox:
    def test_put_get(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert len(mailbox.get(1)) == 1
        assert mailbox.message_count(1) == 1

    def test_wrong_owner_rejected(self):
        mailbox = Mailbox(owner=OWNER)
        with pytest.raises(MailboxError):
            mailbox.put(1, sealed(recipient=OTHER))

    def test_rounds_isolated(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert mailbox.get(2) == []

    def test_drain_removes(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert len(mailbox.drain(1)) == 1
        assert mailbox.get(1) == []

    def test_get_returns_copy(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        listing = mailbox.get(1)
        listing.clear()
        assert mailbox.message_count(1) == 1


class TestMailboxServer:
    def test_create_and_put(self):
        server = MailboxServer("mb-0")
        server.create_mailbox(OWNER)
        server.put(1, sealed())
        assert len(server.get(1, OWNER)) == 1
        assert OWNER in server
        assert server.owners() == [OWNER]

    def test_unknown_recipient_rejected(self):
        server = MailboxServer("mb-0")
        with pytest.raises(MailboxError):
            server.put(1, sealed())
        with pytest.raises(MailboxError):
            server.get(1, OWNER)

    def test_create_idempotent(self):
        server = MailboxServer("mb-0")
        first = server.create_mailbox(OWNER)
        second = server.create_mailbox(OWNER)
        assert first is second


class TestMailboxHub:
    def test_sharding_is_stable(self):
        hub = MailboxHub(num_servers=4)
        hub.create_mailbox(OWNER)
        hub.put(1, sealed())
        assert len(hub.get(1, OWNER)) == 1

    def test_all_shards_used(self):
        hub = MailboxHub(num_servers=4)
        owners = [bytes([index]) * 32 for index in range(1, 60)]
        for owner in owners:
            hub.create_mailbox(owner)
        populated = [server for server in hub.servers if server.owners()]
        assert len(populated) == 4

    def test_deliver_batch_counts_unknown(self):
        hub = MailboxHub(num_servers=2)
        hub.create_mailbox(OWNER)
        dropped = hub.deliver_batch(1, [sealed(), sealed(recipient=OTHER)])
        assert dropped == 1
        assert len(hub.get(1, OWNER)) == 1

    def test_message_counts(self):
        hub = MailboxHub()
        hub.create_mailbox(OWNER)
        hub.create_mailbox(OTHER)
        hub.put(1, sealed())
        counts = hub.message_counts(1, [OWNER, OTHER])
        assert counts == {OWNER: 1, OTHER: 0}

    def test_invalid_server_count(self):
        with pytest.raises(MailboxError):
            MailboxHub(num_servers=0)
