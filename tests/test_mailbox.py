"""Tests for mailboxes, mailbox servers, and the sharded hub."""

import pytest

from repro.errors import MailboxError
from repro.mailbox import Mailbox, MailboxHub, MailboxServer, ShardedMailboxHub
from repro.mixnet.messages import MailboxMessage, MessageBody

OWNER = b"\x01" * 32
OTHER = b"\x02" * 32
KEY = b"\x09" * 32


def sealed(recipient=OWNER, round_number=1, content=b"hello"):
    return MailboxMessage.seal(recipient, KEY, round_number, MessageBody.data(content))


class TestMailbox:
    def test_put_get(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert len(mailbox.get(1)) == 1
        assert mailbox.message_count(1) == 1

    def test_wrong_owner_rejected(self):
        mailbox = Mailbox(owner=OWNER)
        with pytest.raises(MailboxError):
            mailbox.put(1, sealed(recipient=OTHER))

    def test_rounds_isolated(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert mailbox.get(2) == []

    def test_drain_removes(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        assert len(mailbox.drain(1)) == 1
        assert mailbox.get(1) == []

    def test_get_returns_copy(self):
        mailbox = Mailbox(owner=OWNER)
        mailbox.put(1, sealed())
        listing = mailbox.get(1)
        listing.clear()
        assert mailbox.message_count(1) == 1


class TestMailboxServer:
    def test_create_and_put(self):
        server = MailboxServer("mb-0")
        server.create_mailbox(OWNER)
        server.put(1, sealed())
        assert len(server.get(1, OWNER)) == 1
        assert OWNER in server
        assert server.owners() == [OWNER]

    def test_unknown_recipient_rejected(self):
        server = MailboxServer("mb-0")
        with pytest.raises(MailboxError):
            server.put(1, sealed())
        with pytest.raises(MailboxError):
            server.get(1, OWNER)

    def test_create_idempotent(self):
        server = MailboxServer("mb-0")
        first = server.create_mailbox(OWNER)
        second = server.create_mailbox(OWNER)
        assert first is second


class TestMailboxHub:
    def test_sharding_is_stable(self):
        hub = MailboxHub(num_servers=4)
        hub.create_mailbox(OWNER)
        hub.put(1, sealed())
        assert len(hub.get(1, OWNER)) == 1

    def test_all_shards_used(self):
        hub = MailboxHub(num_servers=4)
        owners = [bytes([index]) * 32 for index in range(1, 60)]
        for owner in owners:
            hub.create_mailbox(owner)
        populated = [server for server in hub.servers if server.owners()]
        assert len(populated) == 4

    def test_deliver_batch_counts_unknown(self):
        hub = MailboxHub(num_servers=2)
        hub.create_mailbox(OWNER)
        dropped = hub.deliver_batch(1, [sealed(), sealed(recipient=OTHER)])
        assert dropped == 1
        assert len(hub.get(1, OWNER)) == 1

    def test_message_counts(self):
        hub = MailboxHub()
        hub.create_mailbox(OWNER)
        hub.create_mailbox(OTHER)
        hub.put(1, sealed())
        counts = hub.message_counts(1, [OWNER, OTHER])
        assert counts == {OWNER: 1, OTHER: 0}

    def test_invalid_server_count(self):
        with pytest.raises(MailboxError):
            MailboxHub(num_servers=0)


class TestConsistentHashing:
    """The consistent-hash shard map and the batched delivery/fetch flows."""

    @staticmethod
    def owners(count):
        return [index.to_bytes(2, "big") * 16 for index in range(1, count + 1)]

    def test_hub_alias_is_sharded_hub(self):
        assert MailboxHub is ShardedMailboxHub

    def test_mapping_is_deterministic_across_instances(self):
        first = ShardedMailboxHub(num_servers=5)
        second = ShardedMailboxHub(num_servers=5)
        for owner in self.owners(50):
            assert first.server_name_for(owner) == second.server_name_for(owner)

    def test_owner_cache_matches_ring_walk(self):
        hub = ShardedMailboxHub(num_servers=4)
        for owner in self.owners(40):
            before = hub.server_name_for(owner)  # ring walk (uncached)
            hub.create_mailbox(owner)            # fills the cache
            assert hub.server_name_for(owner) == before

    def test_adding_a_shard_moves_few_owners(self):
        """The consistent-hashing property: growing n → n+1 shards remaps
        roughly 1/(n+1) of the owners, not almost all of them."""
        owners = self.owners(400)
        small = ShardedMailboxHub(num_servers=4)
        grown = ShardedMailboxHub(num_servers=5)
        moved = sum(
            small.server_name_for(owner) != grown.server_name_for(owner)
            for owner in owners
        )
        # Expectation is 1/5 of 400 = 80; allow generous slack, but far
        # below the near-total reshuffle of modulo hashing.
        assert moved < len(owners) // 2

    def test_shard_loads_are_roughly_balanced(self):
        hub = ShardedMailboxHub(num_servers=4)
        for owner in self.owners(400):
            hub.create_mailbox(owner)
        loads = sorted(len(server.owners()) for server in hub.servers)
        assert loads[0] > 0
        assert loads[-1] < 3 * (400 // 4)

    def test_batched_delivery_matches_sequential_puts(self):
        owners = self.owners(12)
        batched = ShardedMailboxHub(num_servers=3)
        sequential = ShardedMailboxHub(num_servers=3)
        for owner in owners:
            batched.create_mailbox(owner)
            sequential.create_mailbox(owner)
        messages = [sealed(recipient=owner) for owner in owners for _ in range(2)]
        messages.append(sealed(recipient=b"\xfe" * 32))  # unknown recipient
        dropped = batched.deliver_batch(1, messages)
        sequential_dropped = 0
        for message in messages:
            try:
                sequential.put(1, message)
            except MailboxError:
                sequential_dropped += 1
        assert dropped == sequential_dropped == 1
        for owner in owners:
            assert batched.get(1, owner) == sequential.get(1, owner)

    def test_fetch_batch_matches_gets(self):
        hub = ShardedMailboxHub(num_servers=2)
        owners = self.owners(6)
        for owner in owners:
            hub.create_mailbox(owner)
        hub.deliver_batch(2, [sealed(recipient=owners[0], round_number=2)])
        pairs = hub.fetch_batch(2, owners)
        assert [owner for owner, _ in pairs] == owners
        for owner, messages in pairs:
            assert messages == hub.get(2, owner)

    def test_shard_owners_partitions_and_preserves_order(self):
        hub = ShardedMailboxHub(num_servers=3)
        owners = self.owners(30)
        for owner in owners:
            hub.create_mailbox(owner)
        groups = hub.shard_owners(owners)
        flattened = [owner for _, group in groups for owner in group]
        assert sorted(flattened) == sorted(owners)
        for server, group in groups:
            for owner in group:
                assert hub.server_name_for(owner) == server.name
            assert group == [o for o in owners if hub.server_name_for(o) == server.name]

    def test_put_batch_rejects_foreign_recipient(self):
        mailbox = Mailbox(owner=OWNER)
        with pytest.raises(MailboxError):
            mailbox.put_batch(1, [sealed(), sealed(recipient=OTHER)])
        mailbox.put_batch(1, [sealed(), sealed()])
        assert mailbox.message_count(1) == 2
