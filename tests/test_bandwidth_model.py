"""Tests of the user bandwidth/computation models (Figures 2 and 3, §8.1)."""

import math

import pytest

from repro.crypto.onion import onion_size
from repro.errors import SimulationError
from repro.simulation.bandwidth import (
    submission_wire_size,
    xrd_user_bandwidth,
    xrd_user_compute,
)


class TestBandwidth:
    def test_grows_with_servers(self):
        costs = [xrd_user_bandwidth(n).total_bytes for n in (100, 500, 1000, 2000)]
        assert costs == sorted(costs)
        assert costs[-1] > 3 * costs[0]

    def test_sqrt_scaling_in_servers(self):
        """Upload grows roughly as √(2N) because ℓ does (§8.1)."""
        at_100 = xrd_user_bandwidth(100).upload_bytes
        at_1600 = xrd_user_bandwidth(1600).upload_bytes
        assert at_1600 / at_100 == pytest.approx(math.sqrt(16), rel=0.25)

    def test_same_order_as_paper(self):
        """Paper: ~54 KB at 100 servers, ~238 KB at 2000 (our leaner format is ~half)."""
        at_100 = xrd_user_bandwidth(100).upload_bytes
        at_2000 = xrd_user_bandwidth(2000).upload_bytes
        assert 15_000 < at_100 < 80_000
        assert 80_000 < at_2000 < 300_000

    def test_bandwidth_rate_reasonable(self):
        """Paper: ≲40 Kbps with 1-minute rounds at 2000 servers."""
        assert xrd_user_bandwidth(2000).bandwidth_kbps() < 60
        assert xrd_user_bandwidth(100).bandwidth_kbps() < 10

    def test_cover_messages_double_upload(self):
        with_cover = xrd_user_bandwidth(100, cover_messages=True)
        without = xrd_user_bandwidth(100, cover_messages=False)
        assert with_cover.upload_bytes == 2 * without.upload_bytes
        assert with_cover.download_bytes == without.download_bytes

    def test_invalid_round_duration(self):
        with pytest.raises(SimulationError):
            xrd_user_bandwidth(100).bandwidth_kbps(round_duration=0)

    def test_submission_wire_size_matches_onion(self):
        assert submission_wire_size(31) > onion_size(31)
        assert submission_wire_size(31) - onion_size(31) == submission_wire_size(5) - onion_size(5)


class TestCompute:
    def test_grows_with_servers(self):
        costs = [xrd_user_compute(n).compute_seconds for n in (100, 500, 2000)]
        assert costs == sorted(costs)

    def test_under_half_second_at_2000_servers(self):
        """Paper: client computation stays below ~0.5 s up to 2000 servers."""
        assert xrd_user_compute(2000).compute_seconds < 0.6

    def test_cover_messages_double_compute(self):
        with_cover = xrd_user_compute(100, cover_messages=True).compute_seconds
        without = xrd_user_compute(100, cover_messages=False).compute_seconds
        assert with_cover == pytest.approx(2 * without, rel=0.05)

    def test_includes_bandwidth_fields(self):
        cost = xrd_user_compute(100)
        assert cost.upload_bytes == xrd_user_bandwidth(100).upload_bytes
        assert cost.ell == 14
