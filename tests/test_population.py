"""The vectorized user-population layer (DESIGN.md §7).

Three properties are enforced here, below the end-to-end engine parity
matrix of ``test_engine_parity.py``:

1. the batched crypto primitives (ChaCha20 block batches, AEAD batches,
   fixed-point scalar batches) are bit-identical to their scalar
   references, under hypothesis-generated inputs;
2. the population's whole-chain build produces the *same submission
   objects* (field for field) as the per-user path given identical RNG
   state, and its fetch cascade classifies mailboxes identically;
3. the new batch wire codecs round-trip losslessly and reject malformed
   frames with :class:`DecodingError` (framing fuzz).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.crypto.aead import adec, adec_batch, aenc, aenc_batch
from repro.crypto.chacha20 import (
    chacha20_block,
    chacha20_blocks_batch,
    chacha20_keystream,
    chacha20_keystreams,
)
from repro.crypto.group import ModPGroup, fixed_point_mult_batch
from repro.crypto.nizk import prove_dlog
from repro.errors import DecodingError
from repro.mixnet.messages import ClientSubmission, MailboxMessage, MessageBody
from repro.transport import (
    COVER_SUBMISSION_BATCH,
    MAILBOX_FETCH_BATCH,
    SUBMISSION_BATCH,
    Envelope,
)
from repro.transport.codec import decode_payload, encode_payload
from repro.transport.envelope import submission_batch_envelope

MODP = ModPGroup(bits=64)


def deployment_pair(**kwargs):
    """Two identically-seeded deployments: per-user reference and batched."""
    base = dict(
        num_servers=4, num_users=6, num_chains=3, chain_length=2,
        seed=77, group_kind="modp",
    )
    base.update(kwargs)
    reference = Deployment.create(DeploymentConfig(**base, population="object"))
    batched = Deployment.create(DeploymentConfig(**base, population="batched"))
    return reference, batched


# ---------------------------------------------------------------------------
# 1. batched crypto primitives == scalar references
# ---------------------------------------------------------------------------


class TestBatchedPrimitives:
    @given(st.lists(st.tuples(st.binary(min_size=32, max_size=32),
                              st.binary(min_size=12, max_size=12),
                              st.integers(min_value=0, max_value=2**32 - 1)),
                    min_size=0, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_block_batch_matches_scalar(self, triples):
        keys = [t[0] for t in triples]
        nonces = [t[1] for t in triples]
        counters = [t[2] for t in triples]
        flat = chacha20_blocks_batch(keys, nonces, counters)
        expected = b"".join(
            chacha20_block(key, counter, nonce)
            for key, nonce, counter in triples
        )
        assert flat == expected

    @given(st.lists(st.tuples(st.binary(min_size=32, max_size=32),
                              st.binary(min_size=12, max_size=12),
                              st.integers(min_value=0, max_value=300)),
                    min_size=0, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_keystreams_match_scalar(self, triples):
        keys = [t[0] for t in triples]
        nonces = [t[1] for t in triples]
        lengths = [t[2] for t in triples]
        streams = chacha20_keystreams(keys, nonces, lengths, initial_counter=1)
        for key, nonce, length, stream in zip(keys, nonces, lengths, streams):
            assert stream == chacha20_keystream(key, nonce, length, 1)

    @given(st.lists(st.tuples(st.binary(min_size=32, max_size=32),
                              st.binary(min_size=0, max_size=400)),
                    min_size=0, max_size=30),
           st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=25, deadline=None)
    def test_aead_batches_match_scalar(self, pairs, round_number):
        keys = [p[0] for p in pairs]
        plaintexts = [p[1] for p in pairs]
        sealed = aenc_batch(keys, round_number, plaintexts)
        assert sealed == [aenc(k, round_number, m) for k, m in zip(keys, plaintexts)]
        # Tamper with a few ciphertexts so both failure and success paths run.
        datas = [
            data if index % 3 else (b"\x00" * len(data))
            for index, data in enumerate(sealed)
        ]
        opened = adec_batch(keys, round_number, datas)
        assert opened == [adec(k, round_number, d) for k, d in zip(keys, datas)]

    @given(st.lists(st.integers(min_value=0, max_value=2**64), min_size=0, max_size=20),
           st.integers(min_value=2, max_value=2**60))
    @settings(max_examples=25, deadline=None)
    def test_fixed_point_batch_matches_scalar_modp(self, scalars, element_seed):
        point = MODP.scalar_mult(MODP.base(), element_seed)
        assert fixed_point_mult_batch(MODP, point, scalars) == [
            MODP.scalar_mult(point, scalar) for scalar in scalars
        ]

    def test_fixed_point_batch_matches_scalar_ed25519(self, ed_group):
        group = ed_group
        point = group.scalar_mult(group.base(), 987654321)
        scalars = [0, 1, 5, group.order - 1, 2**200 + 17]
        assert fixed_point_mult_batch(group, point, scalars) == [
            group.scalar_mult(point, scalar) for scalar in scalars
        ]
        assert fixed_point_mult_batch(group, group.identity(), scalars) == [
            group.scalar_mult(group.identity(), scalar) for scalar in scalars
        ]
        assert fixed_point_mult_batch(group, group.base(), scalars) == [
            group.scalar_mult(group.base(), scalar) for scalar in scalars
        ]


# ---------------------------------------------------------------------------
# 2. population build/fetch == per-user path at the object level
# ---------------------------------------------------------------------------


class TestPopulationSemantics:
    def test_batched_build_produces_identical_submissions(self):
        reference, batched = deployment_pair()
        a, b = reference.users[0].name, reference.users[1].name
        reference.start_conversation(a, b)
        batched.start_conversation(a, b)
        spec = {"payloads": {a: b"hello"}}
        ref_report = reference.run_round(**spec)
        bat_report = batched.run_round(**spec)
        assert bat_report.canonical_bytes() == ref_report.canonical_bytes()
        for chain_ref, chain_bat in zip(reference.chains, batched.chains):
            assert (
                chain_bat.submissions_for_round(1) == chain_ref.submissions_for_round(1)
            )

    def test_population_rosters_cover_every_user_slot(self):
        _, batched = deployment_pair()
        population = batched.population
        total = sum(len(roster) for roster in population.chain_rosters.values())
        assert total == sum(
            len(assignment) for assignment in population.chain_assignments.values()
        )
        for name, assignment in population.chain_assignments.items():
            assert len(assignment) == batched.ell()
            for chain_id in assignment:
                assert name in population.chain_rosters[chain_id]

    def test_population_does_not_own_foreign_wrappers(self):
        _, batched = deployment_pair()
        population = batched.population
        real = batched.users[0]

        class Wrapper:
            def __init__(self, inner):
                self.name = inner.name

        assert population.owns(real)
        assert not population.owns(Wrapper(real))

    def test_fetch_cascade_matches_per_user_decrypt(self):
        reference, batched = deployment_pair(seed=123)
        a, b = reference.users[0].name, reference.users[1].name
        reference.start_conversation(a, b)
        batched.start_conversation(a, b)
        specs = [
            {"payloads": {a: b"ping", b: b"pong"}},
            {"payloads": {}, "offline_users": {b}},  # offline notice lands at a
            {"payloads": {}},
        ]
        for spec in specs:
            ref_report = reference.run_round(**spec)
            bat_report = batched.run_round(**spec)
            assert bat_report.delivered == ref_report.delivered
            assert bat_report.mailbox_counts == ref_report.mailbox_counts
        # The §5.3.3 side effect happened on both sides.
        assert reference.user(a).conversation.partner_offline
        assert batched.user(a).conversation.partner_offline

    def test_link_faults_on_batch_frames(self):
        """Drop and duplicate faults compose with the batch frames: a
        dropped frame loses the whole chain's uploads (the engine skips the
        missing submissions), and a duplicated element re-enters sender-keyed
        scatter without corrupting other users' lists."""
        from repro.transport import SUBMISSION_BATCH
        from repro.transport.faulty import FaultyTransport, LinkFault

        _, batched = deployment_pair(seed=31)
        victim_chain = 0
        batched.use_transport(
            FaultyTransport(
                batched.transport,
                [LinkFault(behaviour="drop", kind=SUBMISSION_BATCH, chain_id=victim_chain)],
            ),
            close_previous=False,
        )
        report = batched.run_round()
        assert not report.chain_results[victim_chain].mailbox_messages
        expected = sum(
            1
            for user in batched.users
            for chain_id in batched.population.chain_assignments[user.name]
            if chain_id != victim_chain
        )
        assert report.total_submissions == expected

        _, duplicated = deployment_pair(seed=31)
        duplicated.use_transport(
            FaultyTransport(
                duplicated.transport,
                [LinkFault(behaviour="duplicate", kind=SUBMISSION_BATCH, chain_id=victim_chain)],
            ),
            close_previous=False,
        )
        report = duplicated.run_round()
        baseline = sum(
            len(assignment)
            for assignment in duplicated.population.chain_assignments.values()
        )
        assert report.total_submissions == baseline + 1
        assert report.all_chains_delivered()

    def test_recovery_keeps_population_consistent(self):
        """Chain re-formation never invalidates the columnar views."""
        from repro.faults.scenarios import tamper_and_recover
        from tests.test_faults import run_scenario

        object_report = run_scenario(tamper_and_recover(), "serial", False)
        batched_report = run_scenario(
            tamper_and_recover(), "serial", False, population="batched"
        )
        assert batched_report.canonical_bytes() == object_report.canonical_bytes()


# ---------------------------------------------------------------------------
# 3. batch codec round-trips and framing fuzz
# ---------------------------------------------------------------------------


def make_submission(group, chain_id, sender, ciphertext):
    secret = group.random_scalar()
    return ClientSubmission(
        chain_id=chain_id,
        sender=sender,
        dh_public=group.encode(group.base_mult(secret)),
        ciphertext=ciphertext,
        proof=prove_dlog(group, group.base(), secret),
    )


def envelope(kind, payload, **kwargs):
    defaults = dict(source="src", destination="dst", round_number=1)
    defaults.update(kwargs)
    return Envelope(kind=kind, payload=payload, **defaults)


class TestSubmissionBatchCodec:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10),
                              st.text(alphabet="abcdefuser-0123456789", min_size=1, max_size=16),
                              st.binary(min_size=0, max_size=120)),
                    min_size=0, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, specs):
        submissions = [
            make_submission(MODP, chain_id, sender, ciphertext)
            for chain_id, sender, ciphertext in specs
        ]
        for kind in (SUBMISSION_BATCH, COVER_SUBMISSION_BATCH):
            wire = encode_payload(MODP, envelope(kind, submissions))
            decoded = decode_payload(MODP, kind, wire)
            # The cover flag is client-side metadata, not on the wire.
            assert decoded == [
                ClientSubmission(
                    chain_id=s.chain_id, sender=s.sender, dh_public=s.dh_public,
                    ciphertext=s.ciphertext, proof=s.proof,
                )
                for s in submissions
            ]

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_framing_fuzz_truncation(self, data):
        submissions = [
            make_submission(MODP, index, f"user-{index}", b"ct" * index)
            for index in range(3)
        ]
        wire = encode_payload(MODP, envelope(SUBMISSION_BATCH, submissions))
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        mutated = wire[:cut]
        with pytest.raises(DecodingError):
            decode_payload(MODP, SUBMISSION_BATCH, mutated)

    def test_trailing_bytes_rejected(self):
        wire = encode_payload(
            MODP, envelope(SUBMISSION_BATCH, [make_submission(MODP, 1, "u", b"c")])
        )
        with pytest.raises(DecodingError):
            decode_payload(MODP, SUBMISSION_BATCH, wire + b"\x00")

    def test_envelope_builder_labels_the_link(self):
        submissions = [make_submission(MODP, 2, "user-1", b"c")]
        built = submission_batch_envelope(2, submissions, {2: "server-7"}, 9, cover=True)
        assert built.kind == COVER_SUBMISSION_BATCH
        assert built.destination == "server-7"
        assert built.chain_id == 2
        assert built.round_number == 9


class TestFetchBatchCodec:
    @given(st.lists(st.tuples(st.binary(min_size=32, max_size=32),
                              st.lists(st.binary(min_size=0, max_size=60), max_size=4)),
                    min_size=0, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, owner_specs):
        pairs = [
            (
                owner,
                [
                    MailboxMessage.seal(owner, b"\x07" * 32, 3, MessageBody.data(content))
                    for content in contents
                ],
            )
            for owner, contents in owner_specs
        ]
        wire = encode_payload(MODP, envelope(MAILBOX_FETCH_BATCH, pairs))
        assert decode_payload(MODP, MAILBOX_FETCH_BATCH, wire) == pairs

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_framing_fuzz_truncation(self, data):
        owner = b"\x05" * 32
        pairs = [
            (owner, [MailboxMessage.seal(owner, b"\x07" * 32, 1, MessageBody.loopback())])
        ]
        wire = encode_payload(MODP, envelope(MAILBOX_FETCH_BATCH, pairs))
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        with pytest.raises(DecodingError):
            decode_payload(MODP, MAILBOX_FETCH_BATCH, wire[:cut])

    def test_trailing_bytes_rejected(self):
        wire = encode_payload(MODP, envelope(MAILBOX_FETCH_BATCH, []))
        with pytest.raises(DecodingError):
            decode_payload(MODP, MAILBOX_FETCH_BATCH, wire + b"\xff")
