"""Tests for the blame protocol (§6.4): convict the guilty, never the honest."""

import pytest

from repro.crypto.keys import KeyPair
from repro.errors import BlameError
from repro.mixnet.ahs import ChainRoundResult
from repro.mixnet.blame import BlameVerdict, run_blame_protocol
from repro.coordinator.adversary import (
    MODE_PRESERVE_AGGREGATE,
    MODE_TAMPER_CIPHERTEXT,
    TamperingMember,
    forge_misauthenticated_submission,
)
from repro.client.user import ChainKeysView

from tests.test_ahs_protocol import build_chain, make_submission


def keys_view(chain, round_number):
    return ChainKeysView(
        chain_id=chain.chain_id,
        mixing_publics=chain.public_keys.mixing_publics,
        aggregate_inner_public=chain.aggregate_inner_public(round_number),
    )


class TestMaliciousUserConviction:
    def test_user_failing_at_last_server_is_convicted(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        honest = [
            make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x01" * 32)
            for index in range(3)
        ]
        bad = forge_misauthenticated_submission(group, keys_view(chain, 1), 1, "mallory")
        chain.accept_submissions(1, honest + [bad])
        result = chain.run_round(1, retry_after_blame=True)
        assert result.delivered
        assert "mallory" in result.rejected_senders
        assert result.blame_verdict is not None
        assert result.blame_verdict.malicious_users == ["mallory"]
        assert result.blame_verdict.malicious_servers == []
        # Honest traffic still goes through after the retry.
        assert len(result.mailbox_messages) == 3

    def test_user_failing_mid_chain_is_convicted(self, group):
        chain = build_chain(group, length=4)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        honest = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x02" * 32)
        bad = forge_misauthenticated_submission(
            group, keys_view(chain, 1), 1, "mallory", fail_at_position=2
        )
        chain.accept_submissions(1, [honest, bad])
        result = chain.run_round(1)
        assert result.delivered
        assert result.blame_verdict.malicious_users == ["mallory"]

    def test_user_failing_at_first_server_is_convicted(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        honest = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x03" * 32)
        bad = forge_misauthenticated_submission(
            group, keys_view(chain, 1), 1, "mallory", fail_at_position=0
        )
        chain.accept_submissions(1, [honest, bad])
        result = chain.run_round(1)
        assert result.delivered
        assert result.blame_verdict.malicious_users == ["mallory"]

    def test_multiple_malicious_users_all_convicted(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        honest = [
            make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x04" * 32)
            for index in range(2)
        ]
        bad = [
            forge_misauthenticated_submission(group, keys_view(chain, 1), 1, f"mallory-{index}")
            for index in range(3)
        ]
        chain.accept_submissions(1, honest + bad)
        result = chain.run_round(1)
        assert result.delivered
        assert sorted(result.blame_verdict.malicious_users) == [
            "mallory-0",
            "mallory-1",
            "mallory-2",
        ]
        assert len(result.mailbox_messages) == 2

    def test_no_retry_halts_round(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        bad = forge_misauthenticated_submission(group, keys_view(chain, 1), 1, "mallory")
        chain.accept_submissions(1, [bad])
        result = chain.run_round(1, retry_after_blame=False)
        assert result.status == ChainRoundResult.STATUS_HALTED_BLAME
        assert result.blame_verdict.malicious_users == ["mallory"]


class TestMaliciousServerConviction:
    def _tampered_chain(self, group, mode, position=0, length=3, seed=21):
        chain = build_chain(group, length=length, seed=seed)
        chain.members[position] = TamperingMember(chain.members[position], mode)
        return chain

    def test_ciphertext_tampering_convicts_server(self, group):
        chain = self._tampered_chain(group, MODE_TAMPER_CIPHERTEXT, position=0)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x05" * 32)
            for index in range(3)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        assert result.status == ChainRoundResult.STATUS_HALTED_BLAME
        assert result.blame_verdict.malicious_servers == ["server-0"]
        assert result.blame_verdict.malicious_users == []

    def test_aggregate_preserving_tampering_convicts_server(self, group):
        """Fixing the aggregate does not help: per-message DLEQs in blame catch it."""
        chain = self._tampered_chain(group, MODE_PRESERVE_AGGREGATE, position=0)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x06" * 32)
            for index in range(4)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        assert result.status == ChainRoundResult.STATUS_HALTED_BLAME
        assert result.blame_verdict.malicious_servers == ["server-0"]
        assert result.blame_verdict.malicious_users == []

    def test_middle_server_tampering_convicted(self, group):
        chain = self._tampered_chain(group, MODE_TAMPER_CIPHERTEXT, position=1, length=4)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submissions = [
            make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x07" * 32)
            for index in range(3)
        ]
        chain.accept_submissions(1, submissions)
        result = chain.run_round(1)
        assert result.status == ChainRoundResult.STATUS_HALTED_BLAME
        assert result.blame_verdict.malicious_servers == ["server-1"]

    def test_honest_users_never_convicted_by_tampering_server(self, group):
        """Whatever a tampering server does, no honest user ends up convicted."""
        for mode in (MODE_TAMPER_CIPHERTEXT, MODE_PRESERVE_AGGREGATE):
            chain = self._tampered_chain(group, mode, position=0)
            chain.begin_round(1)
            recipient = KeyPair.generate(group)
            submissions = [
                make_submission(group, chain, 1, f"user-{index}", recipient.public_bytes, b"\x08" * 32)
                for index in range(3)
            ]
            chain.accept_submissions(1, submissions)
            result = chain.run_round(1)
            assert result.blame_verdict is not None
            assert result.blame_verdict.malicious_users == []


class TestBlameProtocolDirect:
    def test_invalid_accusing_position(self, group):
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        chain.accept_submissions(1, [])
        with pytest.raises(BlameError):
            run_blame_protocol(chain, 1, accusing_position=5, flagged_input_indices=[0], history=[[]])

    def test_history_must_cover_accuser(self, group):
        chain = build_chain(group, length=3)
        chain.begin_round(1)
        chain.accept_submissions(1, [])
        with pytest.raises(BlameError):
            run_blame_protocol(chain, 1, accusing_position=2, flagged_input_indices=[0], history=[[]])

    def test_flagged_index_out_of_range(self, group):
        chain = build_chain(group, length=1)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        entries, _ = chain.accept_submissions(1, [submission])
        with pytest.raises(BlameError):
            run_blame_protocol(chain, 1, 0, [5], [entries])

    def test_false_accusation_convicts_accuser_not_user(self, group):
        """An honest user's ciphertext decrypts fine, so accusing her backfires (§6.4)."""
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        entries, _ = chain.accept_submissions(1, [submission])
        # Server 0 processes the batch normally, then falsely accuses Alice's
        # (perfectly valid) submission anyway.
        chain.members[0].process_round(1, entries)
        verdict = run_blame_protocol(
            chain, 1, accusing_position=0, flagged_input_indices=[0], history=[entries]
        )
        assert verdict.malicious_users == []
        assert verdict.malicious_servers == ["server-0"]
        assert verdict.false_accusations == 1

    def test_accusation_without_processing_also_backfires(self, group):
        """A server that accuses without even revealing a consistent key is convicted."""
        chain = build_chain(group, length=2)
        chain.begin_round(1)
        recipient = KeyPair.generate(group)
        submission = make_submission(group, chain, 1, "alice", recipient.public_bytes, b"\x01" * 32)
        entries, _ = chain.accept_submissions(1, [submission])
        verdict = run_blame_protocol(
            chain, 1, accusing_position=0, flagged_input_indices=[0], history=[entries]
        )
        assert verdict.malicious_users == []
        assert verdict.malicious_servers == ["server-0"]

    def test_verdict_dataclass(self):
        verdict = BlameVerdict(chain_id=0, round_number=1)
        assert not verdict.identified
        verdict.malicious_users.append("mallory")
        assert verdict.identified
