"""Tests for the AEAD construction (AEnc / ADec of §3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import AEAD_TAG_SIZE
from repro.crypto.aead import AuthenticatedCiphertext, adec, aenc, ciphertext_overhead
from repro.errors import CryptoError

KEY = b"\x11" * 32
OTHER_KEY = b"\x22" * 32


class TestRoundtrip:
    def test_basic_roundtrip(self):
        ciphertext = aenc(KEY, 7, b"hello bob")
        ok, plaintext = adec(KEY, 7, ciphertext)
        assert ok and plaintext == b"hello bob"

    def test_round_number_as_nonce(self):
        ciphertext = aenc(KEY, 3, b"payload")
        assert adec(KEY, 4, ciphertext) == (False, None)

    def test_explicit_nonce_bytes(self):
        nonce = b"\x00" * 11 + b"\x09"
        ciphertext = aenc(KEY, nonce, b"data")
        ok, plaintext = adec(KEY, nonce, ciphertext)
        assert ok and plaintext == b"data"
        # An integer round number encoding to the same 12 bytes is equivalent.
        assert adec(KEY, 9, ciphertext) == (True, b"data")

    def test_associated_data_is_bound(self):
        ciphertext = aenc(KEY, 1, b"data", aad=b"chain-3")
        assert adec(KEY, 1, ciphertext, aad=b"chain-3") == (True, b"data")
        assert adec(KEY, 1, ciphertext, aad=b"chain-4") == (False, None)

    def test_overhead_is_one_tag(self):
        ciphertext = aenc(KEY, 1, b"x" * 100)
        assert len(ciphertext) == 100 + AEAD_TAG_SIZE

    def test_empty_plaintext(self):
        ciphertext = aenc(KEY, 1, b"")
        assert adec(KEY, 1, ciphertext) == (True, b"")

    @given(st.binary(min_size=0, max_size=400), st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=40)
    def test_roundtrip_property(self, plaintext, round_number):
        ciphertext = aenc(KEY, round_number, plaintext)
        assert adec(KEY, round_number, ciphertext) == (True, plaintext)


class TestAuthenticationFailures:
    """The two properties §3.1 requires of authenticated encryption."""

    def test_wrong_key_rejected(self):
        ciphertext = aenc(KEY, 1, b"secret")
        assert adec(OTHER_KEY, 1, ciphertext) == (False, None)

    def test_cannot_forge_without_key(self):
        # A random blob of the right shape does not authenticate.
        assert adec(KEY, 1, b"\x00" * 48) == (False, None)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=40)
    def test_single_byte_tampering_detected(self, position):
        plaintext = b"m" * 185
        ciphertext = bytearray(aenc(KEY, 1, plaintext))
        position %= len(ciphertext)
        ciphertext[position] ^= 0x01
        assert adec(KEY, 1, bytes(ciphertext)) == (False, None)

    def test_truncated_ciphertext_rejected(self):
        ciphertext = aenc(KEY, 1, b"hello")
        assert adec(KEY, 1, ciphertext[: AEAD_TAG_SIZE - 1]) == (False, None)

    def test_same_ciphertext_does_not_authenticate_under_two_keys(self):
        # Empirical check of §3.1 property (2) over many keys.
        ciphertext = aenc(KEY, 1, b"message")
        for index in range(50):
            other = bytes([index + 1]) * 32
            if other == KEY:
                continue
            assert adec(other, 1, ciphertext) == (False, None)


class TestInputValidation:
    def test_key_length_enforced_on_encrypt(self):
        with pytest.raises(CryptoError):
            aenc(b"short", 1, b"data")

    def test_key_length_enforced_on_decrypt(self):
        with pytest.raises(CryptoError):
            adec(b"short", 1, b"data" * 10)

    def test_negative_round_rejected(self):
        with pytest.raises(CryptoError):
            aenc(KEY, -1, b"data")

    def test_bad_nonce_type_on_decrypt_fails_closed(self):
        ciphertext = aenc(KEY, 1, b"data")
        assert adec(KEY, b"wrong-length-nonce", ciphertext) == (False, None)

    def test_overhead_helper(self):
        assert ciphertext_overhead(3) == 3 * AEAD_TAG_SIZE


class TestAuthenticatedCiphertextContainer:
    def test_roundtrip(self):
        container = AuthenticatedCiphertext.from_bytes(aenc(KEY, 1, b"abc"))
        assert len(container.tag) == AEAD_TAG_SIZE
        restored = AuthenticatedCiphertext.from_bytes(container.to_bytes())
        assert restored == container
        assert len(container) == len(container.to_bytes())

    def test_too_short_rejected(self):
        with pytest.raises(CryptoError):
            AuthenticatedCiphertext.from_bytes(b"short")
