"""RFC 8439 test vector and behaviour tests for Poly1305."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.poly1305 import poly1305_mac, poly1305_verify
from repro.errors import CryptoError

RFC_KEY = bytes.fromhex(
    "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
)
RFC_MESSAGE = b"Cryptographic Forum Research Group"
RFC_TAG = bytes.fromhex("a8061dc1305136c6c22b8baf0c0127a9")


class TestPoly1305:
    def test_rfc8439_vector(self):
        assert poly1305_mac(RFC_MESSAGE, RFC_KEY) == RFC_TAG

    def test_verify_accepts_valid_tag(self):
        assert poly1305_verify(RFC_MESSAGE, RFC_KEY, RFC_TAG)

    def test_verify_rejects_modified_message(self):
        assert not poly1305_verify(RFC_MESSAGE + b"!", RFC_KEY, RFC_TAG)

    def test_verify_rejects_modified_tag(self):
        bad_tag = bytes([RFC_TAG[0] ^ 1]) + RFC_TAG[1:]
        assert not poly1305_verify(RFC_MESSAGE, RFC_KEY, bad_tag)

    def test_verify_rejects_wrong_length_tag(self):
        assert not poly1305_verify(RFC_MESSAGE, RFC_KEY, RFC_TAG[:8])

    def test_tag_is_16_bytes(self):
        assert len(poly1305_mac(b"", RFC_KEY)) == 16

    def test_key_must_be_32_bytes(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"message", b"short key")

    def test_different_keys_give_different_tags(self):
        other_key = bytes(32)[:31] + b"\x01"
        assert poly1305_mac(RFC_MESSAGE, RFC_KEY) != poly1305_mac(RFC_MESSAGE, other_key)

    @given(st.binary(min_size=0, max_size=200), st.binary(min_size=32, max_size=32))
    @settings(max_examples=30)
    def test_verify_roundtrip_property(self, message, key):
        tag = poly1305_mac(message, key)
        assert poly1305_verify(message, key, tag)
