"""Fault-injection scenario engine: adversarial rounds end to end.

The acceptance property of the faults subsystem (ISSUE 3): a scenario
injecting ``MODE_TAMPER_CIPHERTEXT`` at round *r* is detected and blamed,
the convicted server is evicted, the chain is re-formed from the remaining
pool, and rounds *r+1…* deliver correctly — with the whole scenario
bit-identical across {serial, parallel, multiprocess} × {sequential,
staggered} × {inproc, instrumented}.
"""

import pytest

from repro.coordinator.network import Deployment, DeploymentConfig
from repro.errors import ConfigurationError
from repro.faults import (
    CANNED_SCENARIOS,
    FaultPlan,
    LinkFault,
    ScenarioRunner,
    ServerFault,
    UserFault,
)
from repro.faults.plan import USER_INVALID_PROOF
from repro.faults.scenarios import (
    aggregate_attack_and_recover,
    delayed_chain_batch,
    duplicated_chain_batch,
    flaky_uplink,
    lossy_mailbox_fetch,
    misauthenticating_user,
    reordered_mailbox_delivery,
    tamper_and_recover,
)
from repro.mixnet.ahs import ChainRoundResult
from repro.mixnet.blame import BlameVerdict
from repro.transport import envelope as ev
from repro.transport.faulty import DELAY, DROP, DUPLICATE, REORDER, FaultyTransport

BACKENDS = ("serial", "parallel", "multiprocess")


def build(backend="serial", transport="inproc", seed=42, **kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("num_servers", 4)
    kwargs.setdefault("num_users", 6)
    kwargs.setdefault("num_chains", 3)
    kwargs.setdefault("chain_length", 3)
    config = DeploymentConfig(
        seed=seed,
        group_kind="modp",
        execution_backend=backend,
        transport=transport,
        **kwargs,
    )
    return Deployment.create(config)


def run_scenario(plan, backend="serial", staggered=False, transport="inproc", **kwargs):
    deployment = build(backend, transport, **kwargs)
    report = ScenarioRunner(deployment, plan, staggered=staggered).run()
    deployment.close()
    return report


class TestTamperAndRecoverAcceptance:
    """The ISSUE 3 acceptance scenario, across the full execution matrix."""

    @pytest.fixture(scope="class")
    def reference(self):
        return run_scenario(tamper_and_recover())

    def test_detect_blame_evict_reform_resume(self, reference):
        fault = reference.outcome_for(2)
        assert fault.statuses[0] == ChainRoundResult.STATUS_HALTED_BLAME
        assert fault.verdicts[0].malicious_servers == ["server-0"]
        assert fault.verdicts[0].malicious_users == []
        # Other chains kept serving traffic through the fault round.
        assert fault.statuses[1] == fault.statuses[2] == "delivered"
        # Eviction and re-formation happened, excluding the convicted server.
        assert reference.evicted_servers == ["server-0"]
        primary = reference.recoveries[0]
        assert primary.chain_id == 0 and primary.evicted == ["server-0"]
        # §6.4 removes the server from the *system*: every re-formed chain
        # (the convicting one plus any other it sat in) excludes it.
        for action in reference.recoveries:
            assert "server-0" not in action.new_servers
        # Rounds r+1..r+2 complete with correct delivery on the new chains.
        for round_number in (3, 4):
            assert reference.outcome_for(round_number).all_delivered

    def test_conversation_rides_the_reformed_chain(self, reference):
        """The chatters' payloads flow again in rounds r+1.. after recovery."""
        third = reference.outcome_for(3).report
        pair = [name for name in third.delivered if third.conversation_payloads(name)]
        assert len(pair) == 2
        for name in pair:
            (payload,) = third.conversation_payloads(name)
            partner = [other for other in pair if other != name][0]
            assert payload == f"r3-{partner}".encode()

    @pytest.mark.parametrize("staggered", (False, True))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_across_backends_and_schedulers(self, reference, backend, staggered):
        report = run_scenario(tamper_and_recover(), backend, staggered)
        assert report.canonical_bytes() == reference.canonical_bytes()

    @pytest.mark.parametrize("backend", ("serial", "multiprocess"))
    def test_bit_identical_on_instrumented_transport(self, reference, backend):
        report = run_scenario(tamper_and_recover(), backend, staggered=True,
                              transport="instrumented")
        assert report.canonical_bytes() == reference.canonical_bytes()

    def test_deployment_state_after_recovery(self):
        deployment = build()
        ScenarioRunner(deployment, tamper_and_recover()).run()
        chain = deployment.chain(0)
        names = [member.server_name for member in chain.members]
        assert "server-0" not in names
        assert deployment.entry_servers[0] == names[0]
        assert deployment.topologies[0].servers == names
        # The evicted server is out of the whole system, not just chain 0:
        # no chain lists it, and its node holds no member state at all.
        for other in deployment.chains:
            assert "server-0" not in [member.server_name for member in other.members]
        evicted_node = deployment._nodes_by_name["server-0"]
        assert evicted_node.chain_members == {}
        # Nothing is left pending once recovery has been applied.
        assert deployment.pending_recoveries == []
        deployment.close()


class TestRecoveryMechanics:
    def test_aggregate_attack_convicts_via_proof_failure(self):
        report = run_scenario(aggregate_attack_and_recover())
        fault = report.outcome_for(2)
        assert fault.statuses[0] == ChainRoundResult.STATUS_HALTED_SERVER
        assert fault.report.chain_results[0].misbehaving_server == "server-0"
        assert report.evicted_servers == ["server-0"]
        assert report.outcome_for(3).all_delivered

    def test_recover_without_convictions_is_a_noop(self):
        deployment = build()
        deployment.run_round()
        assert deployment.pending_recoveries == []
        assert deployment.recover() == []
        deployment.close()

    def test_reform_unknown_chain_rejected(self):
        deployment = build()
        with pytest.raises(ConfigurationError):
            deployment.reform_chain(99)
        deployment.close()

    def test_eviction_shrinks_chain_when_pool_is_short(self):
        """With pool < chain length, the re-formed chain uses what is left —
        loudly: shrinking weakens the anytrust bound, so it warns."""
        deployment = build()
        deployment.evicted_servers.update({"server-0", "server-1"})
        with pytest.warns(RuntimeWarning, match="anytrust"):
            topology = deployment.reform_chain(0)
        assert set(topology.servers) <= {"server-2", "server-3"}
        assert len(topology.servers) == 2
        report = deployment.run_round()
        assert report.all_chains_delivered()
        deployment.close()

    def test_empty_pool_raises(self):
        deployment = build()
        deployment.evicted_servers.update(
            node.name for node in deployment.server_nodes
        )
        with pytest.raises(ConfigurationError):
            deployment.reform_chain(0)
        deployment.close()

    def test_reform_drops_stale_covers_for_that_chain_only(self):
        deployment = build()
        deployment.run_round()
        assert deployment._cover_store  # covers banked for round 2
        affected = {
            name
            for name, covers in deployment._cover_store.items()
            if any(sub.chain_id == 0 for sub in covers)
        }
        unaffected = set(deployment._cover_store) - affected
        deployment.reform_chain(0)
        assert affected.isdisjoint(deployment._cover_store)
        assert unaffected <= set(deployment._cover_store)
        deployment.close()

    def test_simultaneous_convictions_purge_every_culprit(self):
        """Two chains convict in one batch: evictions apply before re-forms.

        A chain re-formed early in the batch must not re-sample a server a
        later pending conviction evicts.
        """
        from repro.coordinator.adversary import MODE_TAMPER_CIPHERTEXT

        deployment = build(seed=0, num_servers=5)
        culprits = {
            deployment.chain(chain_id).members[0].server_name for chain_id in (0, 1)
        }
        plan = FaultPlan(
            name="double-tamper",
            num_rounds=3,
            server_faults=(
                ServerFault(round_number=2, chain_id=0, position=0,
                            mode=MODE_TAMPER_CIPHERTEXT),
                ServerFault(round_number=2, chain_id=1, position=0,
                            mode=MODE_TAMPER_CIPHERTEXT),
            ),
        )
        report = ScenarioRunner(deployment, plan).run()
        assert set(report.evicted_servers) == culprits
        for chain in deployment.chains:
            members = {member.server_name for member in chain.members}
            assert members.isdisjoint(culprits)
        assert report.outcome_for(3).all_delivered
        deployment.close()

    def test_recover_purges_evicted_server_from_every_chain(self):
        """A conviction on one chain removes the server from all its chains."""
        deployment = build()
        # server-0 sits in more than one chain in this topology.
        host_chains = [
            chain.chain_id
            for chain in deployment.chains
            if "server-0" in [member.server_name for member in chain.members]
        ]
        assert len(host_chains) > 1
        deployment.note_convictions(1, host_chains[0], ["server-0"])
        actions = deployment.recover()
        assert {action.chain_id for action in actions} == set(host_chains)
        for chain in deployment.chains:
            assert "server-0" not in [member.server_name for member in chain.members]
        report = deployment.run_round()
        assert report.all_chains_delivered()
        deployment.close()

    def test_multi_round_conviction_reports_latest_round(self):
        """A chain convicted in several rounds reports the *latest* one.

        Regression (ISSUE 5): the primary recovery action used to pin the
        *first* convicting round while the secondary re-formations of other
        chains used the last — so a two-round conviction produced an
        internally inconsistent action sequence.
        """
        deployment = build(num_servers=6)
        chain = deployment.chains[0]
        first, second = (member.server_name for member in chain.members[:2])
        deployment.note_convictions(2, chain.chain_id, [first])
        deployment.note_convictions(5, chain.chain_id, [second])
        actions = deployment.recover()
        primary = next(action for action in actions if action.chain_id == chain.chain_id)
        assert primary.round_number == 5
        assert primary.evicted == [first, second]
        # Secondary re-formations (other chains hosting the evicted servers)
        # already used the latest round; the whole sequence now agrees.
        assert {action.round_number for action in actions} == {5}
        report = deployment.run_round()
        assert report.all_chains_delivered()
        deployment.close()


class TestBlameVerdictWire:
    def test_verdict_round_trips(self):
        verdict = BlameVerdict(
            chain_id=3,
            round_number=7,
            malicious_users=["mallory", "trudy"],
            malicious_servers=["server-9"],
            false_accusations=1,
            examined_ciphertexts=4,
        )
        assert BlameVerdict.from_bytes(verdict.to_bytes()) == verdict

    def test_chain_outcome_with_verdict_round_trips(self):
        from repro.transport.codec import decode_chain_outcome, encode_chain_outcome

        verdict = BlameVerdict(chain_id=0, round_number=2, malicious_servers=["server-0"])
        result = ChainRoundResult(
            chain_id=0,
            round_number=2,
            status=ChainRoundResult.STATUS_HALTED_BLAME,
            blame_verdict=verdict,
            input_digest=b"\x01" * 32,
        )
        chain_id, rejected, decoded = decode_chain_outcome(
            encode_chain_outcome(0, ["bob"], result)
        )
        assert (chain_id, rejected) == (0, ["bob"])
        assert decoded.blame_verdict == verdict
        assert decoded.status == result.status

    def test_verdict_summary_mentions_convictions(self):
        verdict = BlameVerdict(chain_id=0, round_number=2, malicious_servers=["server-0"])
        assert "server-0" in verdict.summary()
        empty = BlameVerdict(chain_id=0, round_number=2)
        assert "nobody convicted" in empty.summary()


class TestUserFaultScenarios:
    def test_misauthenticating_user_convicted_and_traffic_unaffected(self):
        report = run_scenario(misauthenticating_user())
        assert report.convicted_users() == ["mallory"]
        assert report.evicted_servers == []
        # The round still delivered after removing her ciphertext (§6.4).
        assert report.outcome_for(2).all_delivered
        assert "mallory" in report.outcome_for(2).rejected_senders

    def test_misauth_verdict_identical_across_backends(self):
        """Blame-protocol parity for the user walk-back (all three backends)."""
        blobs = set()
        for backend in BACKENDS:
            report = run_scenario(misauthenticating_user(), backend)
            (verdict,) = report.outcome_for(2).verdicts.values()
            blobs.add(verdict.to_bytes())
        assert len(blobs) == 1

    def test_invalid_proof_rejected_without_blame(self):
        report = run_scenario(
            FaultPlan(
                name="intake",
                num_rounds=1,
                user_faults=(
                    UserFault(round_number=1, chain_id=0, sender="mallory",
                              kind=USER_INVALID_PROOF),
                ),
            )
        )
        outcome = report.outcome_for(1)
        assert "mallory" in outcome.rejected_senders
        assert outcome.verdicts == {}
        assert outcome.all_delivered


class TestLinkFaultScenarios:
    def test_flaky_uplink_loses_one_users_round(self):
        clean = run_scenario(FaultPlan(name="clean", num_rounds=3))
        faulty = run_scenario(flaky_uplink(user_name="user-0", fault_round=2))
        # user-0's submissions never arrived: nothing addressed to her and
        # her loopbacks are gone, but everyone else is untouched.
        assert faulty.outcome_for(2).report.mailbox_counts["user-0"] == 0
        assert clean.outcome_for(2).report.mailbox_counts["user-0"] > 0
        for user, count in clean.outcome_for(2).report.mailbox_counts.items():
            if user != "user-0":
                assert faulty.outcome_for(2).report.mailbox_counts[user] == count
        # The loss is round-scoped: round 3 is back to normal.
        assert (
            faulty.outcome_for(3).report.mailbox_counts
            == clean.outcome_for(3).report.mailbox_counts
        )

    def test_lossy_mailbox_fetch_empties_one_download(self):
        report = run_scenario(lossy_mailbox_fetch(user_name="user-1", fault_round=1))
        assert report.outcome_for(1).report.mailbox_counts["user-1"] == 0

    def test_duplicated_batch_delivers_extra_copies(self):
        clean = run_scenario(FaultPlan(name="clean", num_rounds=2))
        faulty = run_scenario(duplicated_chain_batch(chain_id=0, fault_round=1))
        # The fault matches every transported hop of the chain (length 3 →
        # two server→server links), so one entry is replayed per hop.
        assert (
            faulty.outcome_for(1).delivered_messages
            == clean.outcome_for(1).delivered_messages + 2
        )
        assert faulty.outcome_for(2).delivered_messages == clean.outcome_for(2).delivered_messages

    def test_reordered_delivery_preserves_the_message_set(self):
        clean = run_scenario(FaultPlan(name="clean", num_rounds=2))
        faulty = run_scenario(reordered_mailbox_delivery(chain_id=0, fault_round=1))
        assert (
            faulty.outcome_for(1).report.mailbox_counts
            == clean.outcome_for(1).report.mailbox_counts
        )

    def test_delayed_batch_charges_the_measured_critical_path(self):
        deployment = build(transport="instrumented")
        baseline_dep = build(transport="instrumented")
        ScenarioRunner(baseline_dep, FaultPlan(name="clean", num_rounds=1)).run()
        baseline = baseline_dep.traffic_ledger.round_latency_seconds(1)
        baseline_dep.close()
        ScenarioRunner(
            deployment, delayed_chain_batch(chain_id=0, fault_round=1,
                                            num_rounds=1, delay_seconds=2.0)
        ).run()
        delayed = deployment.traffic_ledger.round_latency_seconds(1)
        deployment.close()
        assert delayed >= baseline + 2.0

    def test_link_fault_rounds_are_scenario_relative(self):
        """Link faults fire even when the deployment has already run rounds."""
        deployment = build()
        deployment.run_round()  # absolute round 1 happens before the scenario
        plan = lossy_mailbox_fetch(user_name="user-1", fault_round=1, num_rounds=1)
        report = ScenarioRunner(deployment, plan).run()
        # Scenario round 1 is absolute round 2; the drop must still apply.
        assert report.outcome_for(2).report.mailbox_counts["user-1"] == 0
        deployment.close()

    def test_second_scenario_replaces_previous_link_faults(self):
        deployment = build()
        ScenarioRunner(
            deployment, flaky_uplink(user_name="user-0", fault_round=1, num_rounds=1)
        ).run()
        plan = lossy_mailbox_fetch(user_name="user-1", fault_round=1, num_rounds=1)
        report = ScenarioRunner(deployment, plan).run()
        # The new plan's fault fires and the old plan's drop no longer does.
        assert report.outcome_for(2).report.mailbox_counts["user-1"] == 0
        assert report.outcome_for(2).report.mailbox_counts["user-0"] > 0
        deployment.close()

    def test_link_faults_are_cleared_when_the_scenario_ends(self):
        """An always-on (rounds=None) fault must not outlive its scenario."""
        deployment = build()
        plan = FaultPlan(
            name="always-drop",
            num_rounds=1,
            link_faults=(
                LinkFault(behaviour=DROP, kind=ev.SUBMISSION, source="user-0"),
            ),
        )
        report = ScenarioRunner(deployment, plan).run()
        assert report.outcome_for(1).report.mailbox_counts["user-0"] == 0
        # Plain rounds after the scenario run fault-free.
        follow_up = deployment.run_round()
        assert follow_up.mailbox_counts["user-0"] > 0
        deployment.close()

    def test_faulty_transport_logs_applied_faults(self):
        deployment = build()
        plan = flaky_uplink(user_name="user-0", fault_round=1, num_rounds=1)
        ScenarioRunner(deployment, plan).run()
        transport = deployment.transport
        assert isinstance(transport, FaultyTransport)
        assert all(entry.behaviour == DROP for entry in transport.applied)
        assert {entry.source for entry in transport.applied} == {"user-0"}
        deployment.close()


class TestLinkFaultValidation:
    def test_unknown_behaviour_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkFault(behaviour="corrupt")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkFault(behaviour=DROP, kind="telepathy")

    def test_duplicate_requires_list_payload_kind(self):
        with pytest.raises(ConfigurationError):
            LinkFault(behaviour=DUPLICATE, kind=ev.SUBMISSION)
        with pytest.raises(ConfigurationError):
            LinkFault(behaviour=REORDER)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkFault(behaviour=DELAY, delay_seconds=-1.0)


class TestFaultPlanValidation:
    def test_fault_past_the_last_round_rejected(self):
        plan = FaultPlan(
            name="late",
            num_rounds=2,
            server_faults=(
                ServerFault(round_number=3, chain_id=0, position=0,
                            mode="tamper-ciphertext"),
            ),
        )
        with pytest.raises(ConfigurationError):
            plan.validate()

    def test_segments_split_at_blame_rounds(self):
        plan = tamper_and_recover(fault_round=2, num_rounds=4)
        assert plan.segments() == ((1, 2), (3, 4))
        quiet = FaultPlan(name="quiet", num_rounds=3)
        assert quiet.segments() == ((1, 3),)
        final = tamper_and_recover(fault_round=4, num_rounds=4)
        assert final.segments() == ((1, 4),)

    def test_link_fault_round_past_the_plan_rejected(self):
        plan = FaultPlan(
            name="never-fires",
            num_rounds=2,
            link_faults=(
                LinkFault(behaviour=DROP, kind=ev.SUBMISSION,
                          rounds=frozenset({5})),
            ),
        )
        with pytest.raises(ConfigurationError):
            plan.validate()

    def test_unknown_server_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerFault(round_number=1, chain_id=0, position=0, mode="lie")

    def test_unknown_user_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            UserFault(round_number=1, chain_id=0, sender="m", kind="gossip")


class TestScenarioReproducibility:
    def test_same_plan_same_seeded_deployment_is_bit_identical(self):
        first = run_scenario(misauthenticating_user(seed=5))
        second = run_scenario(misauthenticating_user(seed=5))
        assert first.canonical_bytes() == second.canonical_bytes()

    def test_canned_scenarios_all_execute(self):
        for factory in CANNED_SCENARIOS.values():
            report = run_scenario(factory())
            assert report.plan_name == factory().name
            assert len(report.rounds) == factory().num_rounds
