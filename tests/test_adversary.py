"""Tests for adversarial behaviours at the deployment level."""

import random

import pytest

from repro.coordinator.adversary import (
    MODE_BREAK_AGGREGATE,
    MODE_DROP_MESSAGE,
    MODE_PRESERVE_AGGREGATE,
    MODE_TAMPER_CIPHERTEXT,
    TamperingMember,
    forge_invalid_proof_submission,
    forge_misauthenticated_submission,
    install_tampering_server,
)
from repro.errors import ConfigurationError
from repro.mixnet.ahs import ChainRoundResult

from tests.conftest import make_deployment


class TestTamperingServerAtDeploymentLevel:
    @pytest.mark.parametrize(
        "mode,expected_status",
        [
            (MODE_TAMPER_CIPHERTEXT, ChainRoundResult.STATUS_HALTED_BLAME),
            (MODE_PRESERVE_AGGREGATE, ChainRoundResult.STATUS_HALTED_BLAME),
            (MODE_BREAK_AGGREGATE, ChainRoundResult.STATUS_HALTED_SERVER),
            (MODE_DROP_MESSAGE, ChainRoundResult.STATUS_HALTED_SERVER),
        ],
    )
    def test_every_tampering_mode_is_detected(self, mode, expected_status):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7
        )
        install_tampering_server(deployment, chain_id=0, position=0, mode=mode)
        report = deployment.run_round()
        result = report.chain_results[0]
        assert result.status == expected_status
        # The affected chain released nothing; other chains were unaffected.
        assert result.mailbox_messages == []
        assert report.chain_results[1].delivered
        assert report.chain_results[2].delivered

    def test_tampering_identifies_correct_server(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7
        )
        chain = deployment.chain(0)
        guilty_name = chain.members[0].server_name
        install_tampering_server(deployment, chain_id=0, position=0, mode=MODE_TAMPER_CIPHERTEXT)
        report = deployment.run_round()
        verdict = report.chain_results[0].blame_verdict
        assert verdict.malicious_servers == [guilty_name]
        assert verdict.malicious_users == []

    def test_other_chains_unaffected_conversations_succeed(self):
        from repro.client.chain_selection import intersection_chain

        deployment = make_deployment(
            num_servers=4, num_users=12, num_chains=3, chain_length=3, seed=11
        )
        # Find a conversation whose intersection chain is NOT the tampered one.
        alice, bob = None, None
        for first in deployment.users:
            for second in deployment.users:
                if first is second:
                    continue
                chain_id = intersection_chain(
                    first.public_bytes, second.public_bytes, deployment.num_chains
                )
                if chain_id != 0:
                    alice, bob = first, second
                    break
            if alice:
                break
        assert alice is not None, "test setup: no pair avoids chain 0"
        deployment.start_conversation(alice.name, bob.name)
        install_tampering_server(deployment, chain_id=0, position=0, mode=MODE_TAMPER_CIPHERTEXT)
        report = deployment.run_round(payloads={alice.name: b"safe?", bob.name: b"yes"})
        assert report.conversation_payloads(bob.name) == [b"safe?"]

    def test_invalid_mode_rejected(self, deployment):
        with pytest.raises(ConfigurationError):
            TamperingMember(deployment.chain(0).members[0], "unknown-mode")

    def test_install_position_out_of_range(self, deployment):
        with pytest.raises(ConfigurationError):
            install_tampering_server(deployment, 0, 99, MODE_TAMPER_CIPHERTEXT)

    def test_wrapper_delegates_attributes(self, deployment):
        member = deployment.chain(0).members[0]
        wrapper = TamperingMember(member, MODE_TAMPER_CIPHERTEXT)
        assert wrapper.server_name == member.server_name
        assert wrapper.position == member.position
        assert wrapper.blinding_public == member.blinding_public


class TestAdversarialReproducibility:
    """Seeded adversaries are exactly as reproducible as honest members.

    The wrapper draws from a per-(wrapper, round) stream derived from the
    supplied RNG — matching PR 1's per-(member, round) determinism — so
    adversarial rounds are bit-identical under every backend and scheduler.
    """

    def test_preserve_aggregate_tampering_reproducible(self):
        def tampered_batch():
            deployment = make_deployment(
                num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7
            )
            install_tampering_server(
                deployment, 0, 0, MODE_PRESERVE_AGGREGATE, rng=random.Random(99)
            )
            deployment.run_round()
            # What the (honest) second member received is the tampered output.
            record = deployment.chain(0).members[1].round_record(1)
            return [(entry.dh_public, entry.ciphertext) for entry in record.inputs]

        assert tampered_batch() == tampered_batch()

    def test_round_rng_streams_are_independent_per_round(self):
        deployment = make_deployment()
        member = deployment.chain(0).members[0]
        first = TamperingMember(member, MODE_BREAK_AGGREGATE, rng=random.Random(5))
        second = TamperingMember(member, MODE_BREAK_AGGREGATE, rng=random.Random(5))
        # Same stream per round regardless of the order rounds are touched.
        assert second._round_rng(9).random() == first._round_rng(9).random()
        assert second._round_rng(2).random() == first._round_rng(2).random()

    def test_round_scoped_tampering_fires_only_in_its_rounds(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7
        )
        install_tampering_server(
            deployment, 0, 0, MODE_TAMPER_CIPHERTEXT, rounds={2}
        )
        assert deployment.run_round().chain_results[0].delivered
        second = deployment.run_round()
        assert second.chain_results[0].status == ChainRoundResult.STATUS_HALTED_BLAME
        assert deployment.run_round().chain_results[0].delivered

    def test_forged_submissions_reproducible_with_rng(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=8
        )
        views = deployment.chain_keys_view(1)

        def forge(kind):
            rng = random.Random(17)
            if kind == "misauth":
                return forge_misauthenticated_submission(
                    deployment.group, views[0], 1, "mallory", rng=rng
                )
            return forge_invalid_proof_submission(
                deployment.group, views[0], 1, "mallory", rng=rng
            )

        assert forge("misauth").to_bytes() == forge("misauth").to_bytes()
        assert forge("proof").to_bytes() == forge("proof").to_bytes()


class TestDerivedAdversarialDeterminism:
    """``rng=None`` adversaries derive their stream from the call context.

    Regression for the xrdlint determinism findings: the forge helpers used
    to fall back to ``os.urandom`` (and ``group.random_scalar(None)`` to the
    OS CSPRNG) when no RNG was supplied, so an adversarial round on a fully
    seeded deployment still produced different bytes on every run — breaking
    the "adversarial rounds are exactly as reproducible as honest ones"
    contract the parity matrix and blame rely on.
    """

    @staticmethod
    def _adversarial_round_bytes() -> bytes:
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=7
        )
        # No rng anywhere: every adversarial draw must be derived, not fresh.
        install_tampering_server(
            deployment, chain_id=0, position=1, mode=MODE_PRESERVE_AGGREGATE
        )
        views = deployment.chain_keys_view(1)
        bad = [
            forge_misauthenticated_submission(deployment.group, views[1], 1, "mallory"),
            forge_invalid_proof_submission(deployment.group, views[2], 1, "eve"),
        ]
        return deployment.run_round(extra_submissions=bad).canonical_bytes()

    def test_unseeded_adversarial_round_bit_identical_across_runs(self):
        assert self._adversarial_round_bytes() == self._adversarial_round_bytes()

    def test_forged_submissions_without_rng_are_deterministic(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=8
        )
        views = deployment.chain_keys_view(1)
        def forge():
            return forge_misauthenticated_submission(
                deployment.group, views[0], 1, "mallory"
            )

        def proof():
            return forge_invalid_proof_submission(deployment.group, views[0], 1, "eve")

        assert forge().to_bytes() == forge().to_bytes()
        assert proof().to_bytes() == proof().to_bytes()

    def test_unseeded_tampering_wrapper_draws_are_deterministic(self):
        deployment = make_deployment()
        member = deployment.chain(0).members[0]
        first = TamperingMember(member, MODE_BREAK_AGGREGATE)
        second = TamperingMember(member, MODE_BREAK_AGGREGATE)
        assert first._round_rng(3).random() == second._round_rng(3).random()


class TestMaliciousUsers:
    def test_misauthenticated_submission_convicted_and_removed(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=8
        )
        views = deployment.chain_keys_view(1)
        bad = forge_misauthenticated_submission(deployment.group, views[0], 1, "mallory")
        report = deployment.run_round(extra_submissions=[bad])
        assert "mallory" in report.rejected_senders
        assert report.chain_results[0].delivered
        # Honest users' messages were unaffected.
        assert set(report.mailbox_counts.values()) == {deployment.ell()}

    def test_invalid_proof_rejected_at_intake(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=9
        )
        views = deployment.chain_keys_view(1)
        bad = forge_invalid_proof_submission(deployment.group, views[0], 1, "mallory")
        report = deployment.run_round(extra_submissions=[bad])
        assert "mallory" in report.rejected_senders
        assert report.chain_results[0].delivered
        # Intake rejection means no blame protocol was needed.
        assert report.chain_results[0].blame_verdict is None

    def test_forge_fail_position_out_of_range(self, deployment):
        views = deployment.chain_keys_view(1)
        with pytest.raises(ConfigurationError):
            forge_misauthenticated_submission(
                deployment.group, views[0], 1, "mallory", fail_at_position=99
            )

    def test_multiple_malicious_users_different_chains(self):
        deployment = make_deployment(
            num_servers=4, num_users=4, num_chains=3, chain_length=3, seed=10
        )
        views = deployment.chain_keys_view(1)
        bad = [
            forge_misauthenticated_submission(deployment.group, views[chain_id], 1, f"mallory-{chain_id}")
            for chain_id in range(3)
        ]
        report = deployment.run_round(extra_submissions=bad)
        assert sorted(report.rejected_senders) == ["mallory-0", "mallory-1", "mallory-2"]
        assert report.all_chains_delivered()
