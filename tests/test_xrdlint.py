"""Tests for the xrdlint static-analysis suite (DESIGN.md §12).

Each rule family gets a golden *good* fixture (must produce no findings)
and a *bad* fixture (must trigger the rule), written to a tmp tree that
mimics the ``src/repro`` layout so the scope globs apply.  On top of the
per-rule corpus: pragma behaviour, baseline round-trips, the CLI exit
codes, and a self-run over the real repository that must be clean — the
same gate CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.xrdlint.baseline import load_baseline, write_baseline
from tools.xrdlint.config import LintConfig
from tools.xrdlint.core import Finding, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_lint(tree, tests_dir=None, select=None, baseline=None):
    config = LintConfig(tests_dir=tests_dir)
    return lint_paths([tree], config=config, baseline=baseline, select=select)


def codes(result):
    return sorted({finding.rule for finding in result.findings})


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A tmp source tree rooted like the real repo, with cwd pinned to it
    so display paths (which the scope globs match) are repo-relative."""
    monkeypatch.chdir(tmp_path)
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    return root


def write(root: Path, relative: str, source: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


# -- XRD1xx: determinism -------------------------------------------------------

class TestDeterminismRules:
    def test_unseeded_entropy_is_flagged(self, tree):
        write(tree, "engine/draws.py", (
            "import os\n"
            "import random\n"
            "import secrets\n"
            "from os import urandom as u\n"
            "def bad():\n"
            "    a = os.urandom(8)\n"
            "    b = u(8)\n"
            "    c = secrets.token_bytes(4)\n"
            "    d = random.random()\n"
            "    e = random.Random()\n"
            "    return a, b, c, d, e\n"
        ))
        result = run_lint(tree)
        flagged = [f for f in result.findings if f.rule == "XRD101"]
        assert len(flagged) == 5  # both urandom spellings resolve via aliases

    def test_seeded_rng_is_clean(self, tree):
        write(tree, "engine/draws.py", (
            "import random\n"
            "def good(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.randbytes(8), rng.randrange(10)\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_entropy_allowlist_exempts_keygen(self, tree):
        write(tree, "crypto/keys.py", (
            "import secrets\n"
            "def keygen():\n"
            "    return secrets.randbelow(2**252)\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_wall_clock_is_flagged(self, tree):
        write(tree, "engine/timing.py", (
            "import time\n"
            "from datetime import datetime\n"
            "def bad():\n"
            "    return time.time(), time.perf_counter(), datetime.now()\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD102"] * 3

    def test_non_protocol_paths_are_out_of_scope(self, tree):
        write(tree, "benchmarks/perf.py", (
            "import time\n"
            "import os\n"
            "def bench():\n"
            "    return time.perf_counter(), os.urandom(8)\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_set_iteration_feeding_output_is_flagged(self, tree):
        write(tree, "transport/enc.py", (
            "def bad(names):\n"
            "    pending = set(names)\n"
            "    wire = []\n"
            "    for name in pending:\n"
            "        wire.append(name)\n"
            "    return b''.join(wire) + bytes(list({1, 2}))\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD103"] * 2

    def test_sorted_set_and_safe_consumers_are_clean(self, tree):
        write(tree, "transport/enc.py", (
            "def good(names):\n"
            "    pending = set(names)\n"
            "    total = len(pending) + sum({1, 2})\n"
            "    wire = [name for name in sorted(pending)]\n"
            "    return wire, total, max({3, 4})\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_reassignment_to_sorted_cleanses_the_name(self, tree):
        write(tree, "transport/enc.py", (
            "def good(names):\n"
            "    chains = set(names)\n"
            "    chains = sorted(chains)\n"
            "    return [c for c in chains]\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_set_annotated_attribute_is_tracked_across_files(self, tree):
        write(tree, "engine/state.py", (
            "from dataclasses import dataclass, field\n"
            "from typing import Set\n"
            "@dataclass\n"
            "class Ctx:\n"
            "    offline: Set[str] = field(default_factory=set)\n"
        ))
        write(tree, "engine/use.py", (
            "def bad(ctx):\n"
            "    return [u for u in ctx.offline]\n"
        ))
        result = run_lint(tree)
        assert codes(result) == ["XRD103"]

    def test_ambiguous_attribute_name_is_not_flagged(self, tree):
        # Same attribute name annotated Set on one class and List on
        # another: name matching would be guessing, so stay silent.
        write(tree, "engine/state.py", (
            "from typing import List, Set\n"
            "class A:\n"
            "    users: Set[str]\n"
            "class B:\n"
            "    users: List[str]\n"
        ))
        write(tree, "engine/use.py", (
            "def maybe(obj):\n"
            "    return [u for u in obj.users]\n"
        ))
        assert codes(run_lint(tree)) == []


# -- XRD2xx: secret hygiene ----------------------------------------------------

class TestSecretHygieneRules:
    def test_secret_reaching_fstring_and_log_is_flagged(self, tree):
        write(tree, "crypto/leaky.py", (
            "import logging\n"
            "log = logging.getLogger(__name__)\n"
            "def bad(group, rng):\n"
            "    sk = group.random_scalar(rng)\n"
            "    masked = sk + 1\n"
            "    log.info('key is %s', masked)\n"
            "    return f'scalar={sk}'\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD201"] * 2

    def test_secret_in_exception_message_is_flagged(self, tree):
        write(tree, "crypto/leaky.py", (
            "from repro.crypto.kdf import derive_key\n"
            "def bad(material):\n"
            "    key = derive_key(material, b'ctx')\n"
            "    raise ValueError(key)\n"
        ))
        assert codes(run_lint(tree)) == ["XRD201"]

    def test_sanitized_uses_are_clean(self, tree):
        write(tree, "crypto/fine.py", (
            "def good(group, rng):\n"
            "    sk = group.random_scalar(rng)\n"
            "    pk = group.base_mult(sk)\n"
            "    size = len(str(len(f'{pk}')))\n"
            "    return f'pk={pk} len={size}'\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_secret_named_parameter_is_tainted(self, tree):
        write(tree, "crypto/leaky.py", (
            "def bad(layer_key):\n"
            "    return str(layer_key)\n"
        ))
        assert codes(run_lint(tree)) == ["XRD201"]

    def test_tag_equality_compare_is_flagged(self, tree):
        write(tree, "crypto/macs.py", (
            "def bad(tag, expected_tag):\n"
            "    return tag == expected_tag\n"
        ))
        assert codes(run_lint(tree)) == ["XRD202"]

    def test_constant_time_compare_and_constants_are_clean(self, tree):
        write(tree, "crypto/macs.py", (
            "import hmac\n"
            "FRAME_TAG = 7\n"
            "def good(tag, expected_tag, frame_tag):\n"
            "    ok = hmac.compare_digest(tag, expected_tag)\n"
            "    return ok and len(tag) == 16 and frame_tag == FRAME_TAG\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_secret_dataclass_field_requires_repr_false(self, tree):
        write(tree, "crypto/pairs.py", (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Bad:\n"
            "    secret: int\n"
            "    public: bytes\n"
            "@dataclass\n"
            "class Good:\n"
            "    secret: int = field(repr=False)\n"
            "@dataclass(repr=False)\n"
            "class AlsoGood:\n"
            "    private_key: bytes\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD203"]
        assert "secret" in result.findings[0].message


# -- XRD3xx: fork safety -------------------------------------------------------

class TestForkSafetyRules:
    def test_fork_unsafe_class_in_fork_context_is_flagged(self, tree):
        write(tree, "transport/sockets.py", (
            "class SocketTransport:\n"
            "    fork_safe = False\n"
        ))
        write(tree, "engine/multiprocess.py", (
            "from repro.transport.sockets import SocketTransport\n"
            "def worker():\n"
            "    return SocketTransport()\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD301"] * 2  # import + use

    def test_fork_safe_class_is_clean(self, tree):
        write(tree, "transport/inproc.py", (
            "class InProcTransport:\n"
            "    fork_safe = True\n"
        ))
        write(tree, "engine/multiprocess.py", (
            "from repro.transport.inproc import InProcTransport\n"
            "def worker():\n"
            "    return InProcTransport()\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_fork_unsafe_class_outside_fork_context_is_clean(self, tree):
        write(tree, "transport/sockets.py", (
            "class SocketTransport:\n"
            "    fork_safe = False\n"
        ))
        write(tree, "coordinator/network.py", (
            "from repro.transport.sockets import SocketTransport\n"
            "def wire():\n"
            "    return SocketTransport()\n"
        ))
        assert codes(run_lint(tree)) == []


# -- XRD4xx: codec exhaustiveness ----------------------------------------------

CODEC_GOOD = (
    "SUBMISSION = 'submission'\n"
    "BATCH = 'batch'\n"
    "ENVELOPE_KINDS = (SUBMISSION, BATCH)\n"
    "def encode_payload(kind, payload):\n"
    "    if kind == SUBMISSION:\n"
    "        return b's'\n"
    "    if kind == BATCH:\n"
    "        return b'b'\n"
    "def decode_payload(kind, data):\n"
    "    if kind == SUBMISSION:\n"
    "        return 's'\n"
    "    if kind == BATCH:\n"
    "        return 'b'\n"
)


class TestCodecRules:
    def test_kind_missing_from_codec_is_flagged(self, tree):
        write(tree, "transport/envelope.py", (
            "SUBMISSION = 'submission'\n"
            "ORPHAN = 'orphan'\n"
            "ENVELOPE_KINDS = (SUBMISSION, ORPHAN)\n"
            "def encode_payload(kind, payload):\n"
            "    if kind == SUBMISSION:\n"
            "        return b's'\n"
            "def decode_payload(kind, data):\n"
            "    if kind == SUBMISSION:\n"
            "        return 's'\n"
        ))
        result = run_lint(tree, select=["XRD401"])
        messages = [f.message for f in result.findings]
        assert len(messages) == 2  # missing from both encoder and decoder
        assert all("ORPHAN" in message for message in messages)

    def test_fully_wired_codec_is_clean(self, tree):
        write(tree, "transport/envelope.py", CODEC_GOOD)
        assert codes(run_lint(tree, select=["XRD401"])) == []

    def test_unhandled_frame_opcode_is_flagged(self, tree):
        write(tree, "transport/frames.py", (
            "FRAME_HELLO = 1\n"
            "FRAME_PING = 2\n"
            "FRAME_TYPES = (FRAME_HELLO, FRAME_PING)\n"
        ))
        write(tree, "transport/tcp.py", (
            "from repro.transport.frames import FRAME_HELLO\n"
            "def handshake():\n"
            "    return FRAME_HELLO\n"
        ))
        result = run_lint(tree, select=["XRD401"])
        assert len(result.findings) == 1
        assert "FRAME_PING" in result.findings[0].message

    def test_kind_without_round_trip_test_is_flagged(self, tree, tmp_path):
        write(tree, "transport/envelope.py", CODEC_GOOD)
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_codec.py").write_text(
            "def test_submission():\n"
            "    assert decode_payload('submission', encode_payload('submission', 1))\n",
            encoding="utf-8",
        )
        result = run_lint(tree, tests_dir=tests, select=["XRD402"])
        assert len(result.findings) == 1
        assert "BATCH" in result.findings[0].message

    def test_covered_kinds_have_no_402(self, tree, tmp_path):
        write(tree, "transport/envelope.py", CODEC_GOOD)
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "test_codec.py").write_text(
            "KINDS = ('submission', 'batch')\n"
            "def test_all():\n"
            "    for kind in KINDS:\n"
            "        assert decode_payload(kind, encode_payload(kind, 1))\n",
            encoding="utf-8",
        )
        assert codes(run_lint(tree, tests_dir=tests, select=["XRD402"])) == []


# -- XRD5xx: native-loader contract --------------------------------------------

class TestNativeLoaderRules:
    def test_module_level_raise_and_unguarded_import_are_flagged(self, tree):
        write(tree, "native/__init__.py", (
            "import cffi\n"
            "if cffi is None:\n"
            "    raise ImportError('no cffi')\n"
        ))
        result = run_lint(tree)
        assert [f.rule for f in result.findings] == ["XRD501"] * 2

    def test_guarded_import_is_clean(self, tree):
        write(tree, "native/__init__.py", (
            "try:\n"
            "    import cffi\n"
            "except ImportError:\n"
            "    cffi = None\n"
        ))
        assert codes(run_lint(tree)) == []

    def test_wrapper_without_none_fallback_is_flagged(self, tree):
        write(tree, "crypto/kernels.py", (
            "def _handle():\n"
            "    return None\n"
            "def bad(data):\n"
            "    ffi, lib = _handle()\n"
            "    return lib.xrd_kernel(data)\n"
            "def good(data):\n"
            "    handle = _handle()\n"
            "    if handle is None:\n"
            "        return None\n"
            "    ffi, lib = handle\n"
            "    return lib.xrd_kernel(data)\n"
        ))
        result = run_lint(tree)
        assert len(result.findings) == 1
        assert result.findings[0].rule == "XRD502"
        assert "bad()" in result.findings[0].message

    def test_loader_scope_only(self, tree):
        # The same shapes outside the loader modules are not this rule's
        # business (module-level raises are normal elsewhere).
        write(tree, "engine/stages.py", (
            "raise_allowed = True\n"
            "def f(lib, data):\n"
            "    return lib.call(data)\n"
        ))
        assert codes(run_lint(tree)) == []


# -- pragmas, baseline, driver -------------------------------------------------

BAD_ENTROPY = (
    "import os\n"
    "def bad():\n"
    "    return os.urandom(8)\n"
)


class TestSuppressionAndBaseline:
    def test_inline_pragma_suppresses_one_line(self, tree):
        write(tree, "engine/draws.py", (
            "import os\n"
            "def bad():\n"
            "    a = os.urandom(8)  # xrdlint: disable=XRD101 - test reason\n"
            "    b = os.urandom(8)\n"
            "    return a, b\n"
        ))
        result = run_lint(tree)
        assert len(result.findings) == 1
        assert result.suppressed == 1

    def test_comment_line_pragma_covers_next_line(self, tree):
        write(tree, "engine/draws.py", (
            "import os\n"
            "def bad():\n"
            "    # xrdlint: disable=XRD101 - justified\n"
            "    return os.urandom(8)\n"
        ))
        result = run_lint(tree)
        assert result.findings == [] and result.suppressed == 1

    def test_file_pragma_and_all_keyword(self, tree):
        write(tree, "engine/draws.py", (
            "# xrdlint: disable-file=all\n" + BAD_ENTROPY
        ))
        result = run_lint(tree)
        assert result.findings == [] and result.suppressed == 1

    def test_pragma_for_other_rule_does_not_suppress(self, tree):
        write(tree, "engine/draws.py", (
            "import os\n"
            "def bad():\n"
            "    return os.urandom(8)  # xrdlint: disable=XRD102\n"
        ))
        result = run_lint(tree)
        assert codes(result) == ["XRD101"] and result.suppressed == 0

    def test_baseline_accepts_then_invalidates_on_edit(self, tree, tmp_path):
        path = write(tree, "engine/draws.py", BAD_ENTROPY)
        first = run_lint(tree)
        assert len(first.fresh) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        accepted = load_baseline(baseline_path)

        # Unrelated edits (line drift) keep the baseline entry valid.
        path.write_text("\n\n" + BAD_ENTROPY, encoding="utf-8")
        drifted = run_lint(tree, baseline=accepted)
        assert drifted.fresh == [] and len(drifted.baselined) == 1

        # Editing the flagged line itself invalidates the fingerprint.
        path.write_text(BAD_ENTROPY.replace("(8)", "(16)"), encoding="utf-8")
        edited = run_lint(tree, baseline=accepted)
        assert len(edited.fresh) == 1 and edited.baselined == []

    def test_baseline_counts_are_multiset(self, tree, tmp_path):
        write(tree, "engine/draws.py", (
            "import os\n"
            "def bad():\n"
            "    return os.urandom(8), os.urandom(8)\n"
        ))
        first = run_lint(tree)
        assert len(first.fresh) == 2
        fingerprints = {f.fingerprint() for f in first.fresh}
        assert len(fingerprints) == 1  # same rule/symbol/snippet → same print

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        accepted = load_baseline(baseline_path)
        assert accepted == {next(iter(fingerprints)): 2}

        again = run_lint(tree, baseline=accepted)
        assert again.fresh == [] and len(again.baselined) == 2

    def test_syntax_error_is_a_parse_error_not_a_crash(self, tree):
        write(tree, "engine/broken.py", "def bad(:\n")
        result = run_lint(tree)
        assert len(result.parse_errors) == 1
        assert result.parse_errors[0].rule == "XRD001"
        assert not result.clean

    def test_select_filters_rule_families(self, tree):
        write(tree, "engine/draws.py", (
            "import os, time\n"
            "def bad():\n"
            "    return os.urandom(8), time.time()\n"
        ))
        assert codes(run_lint(tree, select=["XRD101"])) == ["XRD101"]
        assert codes(run_lint(tree, select=["XRD1"])) == ["XRD101", "XRD102"]


class TestCli:
    def _run(self, *args, cwd):
        return subprocess.run(
            [sys.executable, "-m", "tools.xrdlint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": f"{REPO_ROOT}/src:{REPO_ROOT}", "PATH": "/usr/bin:/bin"},
        )

    def test_exit_codes_and_json_output(self, tmp_path):
        root = tmp_path / "src" / "repro"
        root.mkdir(parents=True)
        write(root, "engine/draws.py", BAD_ENTROPY)

        dirty = self._run("src/repro", "--format", "json", cwd=tmp_path)
        assert dirty.returncode == 1
        payload = json.loads(dirty.stdout)
        assert payload["clean"] is False
        assert payload["fresh"][0]["rule"] == "XRD101"

        write(root, "engine/draws.py", "x = 1\n")
        clean = self._run("src/repro", cwd=tmp_path)
        assert clean.returncode == 0, clean.stdout + clean.stderr

    def test_write_baseline_then_gate_passes(self, tmp_path):
        root = tmp_path / "src" / "repro"
        root.mkdir(parents=True)
        write(root, "engine/draws.py", BAD_ENTROPY)
        baseline = tmp_path / "baseline.json"

        wrote = self._run(
            "src/repro", "--baseline", str(baseline), "--write-baseline", cwd=tmp_path
        )
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr

        gated = self._run("src/repro", "--baseline", str(baseline), cwd=tmp_path)
        assert gated.returncode == 0, gated.stdout + gated.stderr

        ignored = self._run(
            "src/repro", "--baseline", str(baseline), "--no-baseline", cwd=tmp_path
        )
        assert ignored.returncode == 1

    def test_list_rules_names_every_family(self, tmp_path):
        tmp_path.joinpath("src/repro").mkdir(parents=True)
        listed = self._run("--list-rules", cwd=tmp_path)
        assert listed.returncode == 0
        for code in ("XRD101", "XRD102", "XRD103", "XRD201", "XRD202", "XRD203",
                     "XRD301", "XRD401", "XRD402", "XRD501", "XRD502"):
            assert code in listed.stdout

    def test_missing_path_is_a_usage_error(self, tmp_path):
        tmp_path.joinpath("src/repro").mkdir(parents=True)
        result = self._run("no/such/dir", cwd=tmp_path)
        assert result.returncode == 2


class TestSelfRun:
    def test_repository_is_clean(self):
        """The committed tree passes its own linter — the CI gate."""
        config = LintConfig(tests_dir=REPO_ROOT / "tests")
        result = lint_paths(
            [REPO_ROOT / "src" / "repro"],
            config=config,
            baseline=load_baseline(REPO_ROOT / "tools" / "xrdlint" / "baseline.json"),
        )
        assert result.parse_errors == []
        assert result.fresh == [], "\n".join(f.render() for f in result.fresh)


class TestFindingMechanics:
    def test_fingerprint_ignores_line_numbers_but_not_content(self):
        base = dict(rule="XRD101", path="a.py", col=1,
                    message="m", symbol="f", snippet="x = os.urandom(8)")
        a = Finding(line=10, **base)
        b = Finding(line=99, **base)
        assert a.fingerprint() == b.fingerprint()
        c = Finding(line=10, **{**base, "snippet": "x = os.urandom(16)"})
        assert a.fingerprint() != c.fingerprint()

    def test_render_is_path_line_col_rule(self):
        finding = Finding(rule="XRD102", path="p.py", line=3, col=7,
                          message="msg", symbol="f", snippet="s")
        assert finding.render() == "p.py:3:7: XRD102 msg"
