"""Tests for conversation state and the directional key schedule."""

from repro.client.conversation import Conversation
from repro.crypto.keys import KeyPair


class TestConversationKeys:
    def test_both_sides_derive_matching_keys(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        alice_view = Conversation.establish(group, alice, "bob", bob.public_bytes)
        bob_view = Conversation.establish(group, bob, "alice", alice.public_bytes)
        # Alice's "to partner" key must equal Bob's "to me" key and vice versa.
        assert alice_view.key_to_partner() == bob_view.key_to_me()
        assert bob_view.key_to_partner() == alice_view.key_to_me()

    def test_directional_keys_differ(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        conversation = Conversation.establish(group, alice, "bob", bob.public_bytes)
        assert conversation.key_to_partner() != conversation.key_to_me()

    def test_different_partners_different_keys(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        charlie = KeyPair.generate(group)
        with_bob = Conversation.establish(group, alice, "bob", bob.public_bytes)
        with_charlie = Conversation.establish(group, alice, "charlie", charlie.public_bytes)
        assert with_bob.key_to_partner() != with_charlie.key_to_partner()

    def test_shared_secret_symmetric(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        alice_view = Conversation.establish(group, alice, "bob", bob.public_bytes)
        bob_view = Conversation.establish(group, bob, "alice", alice.public_bytes)
        assert alice_view.shared_secret_bytes == bob_view.shared_secret_bytes


class TestConversationState:
    def test_establish_defaults(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        conversation = Conversation.establish(group, alice, "bob", bob.public_bytes, established_round=4)
        assert conversation.active
        assert not conversation.partner_offline
        assert conversation.established_round == 4
        assert conversation.partner_name == "bob"

    def test_mark_partner_offline(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        conversation = Conversation.establish(group, alice, "bob", bob.public_bytes)
        conversation.mark_partner_offline()
        assert conversation.partner_offline
        assert not conversation.active

    def test_end(self, group):
        alice = KeyPair.generate(group)
        bob = KeyPair.generate(group)
        conversation = Conversation.establish(group, alice, "bob", bob.public_bytes)
        conversation.end()
        assert not conversation.active
        assert not conversation.partner_offline
