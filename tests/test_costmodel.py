"""Tests for the cost model and its calibration against the paper's anchors."""

import pytest

from repro.errors import SimulationError
from repro.simulation.costmodel import CostModel


class TestConstruction:
    def test_paper_testbed_constants(self):
        model = CostModel.paper_testbed()
        assert model.mix_per_message_per_hop > 0
        assert model.cores_per_server == 36
        assert "paper" in model.source

    def test_from_primitive_costs(self):
        model = CostModel.from_primitive_costs(
            scalar_mult=1e-3, aead_fixed=1e-5, aead_per_byte=1e-8, cores_per_server=4
        )
        assert model.nizk_prove == pytest.approx(2e-3)
        assert model.nizk_verify == pytest.approx(4e-3)
        assert model.mix_per_message_per_hop > 0
        # More cores → lower effective per-message cost.
        single = CostModel.from_primitive_costs(1e-3, 1e-5, 1e-8, cores_per_server=1)
        assert model.mix_per_message_per_hop < single.mix_per_message_per_hop

    def test_negative_costs_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(
                scalar_mult=-1,
                aead_fixed=0,
                aead_per_byte=0,
                nizk_prove=0,
                nizk_verify=0,
                mix_per_message_per_hop=0,
            )

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            CostModel(
                scalar_mult=0,
                aead_fixed=0,
                aead_per_byte=0,
                nizk_prove=0,
                nizk_verify=0,
                mix_per_message_per_hop=0,
                cores_per_server=0,
            )


class TestDerivedQuantities:
    def test_with_rtt(self):
        model = CostModel.paper_testbed().with_rtt(0.2)
        assert model.network_rtt == 0.2
        assert model.mix_per_message_per_hop == CostModel.paper_testbed().mix_per_message_per_hop

    def test_transmit_time(self):
        model = CostModel.paper_testbed()
        assert model.transmit_time(model.link_bandwidth) == pytest.approx(1.0)

    def test_client_message_cost_grows_with_chain_length(self):
        model = CostModel.paper_testbed()
        assert model.client_message_cost(40) > model.client_message_cost(10)

    def test_blame_step_cost_positive(self):
        assert CostModel.paper_testbed().blame_per_message_per_layer() > 0
